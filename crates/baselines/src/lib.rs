//! # imt-baselines — prior low-power bus encodings for comparison
//!
//! The paper's related-work section (§2) surveys the encodings this crate
//! implements as baselines:
//!
//! * [`BusInvert`] — Stan & Burleson's bus-invert coding \[5\]: invert the
//!   word whenever that halves the Hamming distance to the previous bus
//!   state, at the cost of one extra *invert* line. General-purpose, needs
//!   no application knowledge, and is the natural comparator for the
//!   instruction **data** bus.
//! * [`T0`] — Benini et al.'s asymptotic-zero-transition address encoding
//!   \[2\]: an extra *INC* line tells the memory to compute `previous + 4`
//!   itself, freezing the address lines across sequential fetches. An
//!   **address**-bus technique, included to reproduce the context the
//!   paper positions itself against.
//! * [`GrayAddress`] — Gray-coded addressing, the other classic
//!   address-bus trick: consecutive addresses differ in exactly one bit.
//!
//! All three are streaming monitors compatible with
//! [`imt_sim::FetchSink`], so they can ride the same simulator replay as
//! the paper's technique.
//!
//! ```
//! use imt_baselines::BusInvert;
//!
//! let mut bus = BusInvert::new(32);
//! bus.observe(0x0000_0000);
//! bus.observe(0xFFFF_FFFF); // would be 32 transitions raw...
//! // ...bus-invert sends the complement (0x0000_0000) + invert line: 1.
//! assert_eq!(bus.total_transitions(), 1);
//! assert_eq!(bus.raw_transitions(), 32);
//! ```

use imt_bitcode::lanes::word_transitions;
use imt_sim::cpu::FetchSink;

/// One streaming step of the canonical transition counter over 32 lines:
/// all the address/word monitors below account bus flips through this.
fn step32(last: u32, next: u32) -> u64 {
    word_transitions(&[u64::from(last), u64::from(next)], u64::from(u32::MAX))
}

/// Bus-invert coding on a data bus (Stan & Burleson, 1995).
///
/// Before driving a new word, the sender compares its Hamming distance to
/// the current bus state; if it exceeds half the width, the complemented
/// word is driven instead and the *invert* line is raised. Transitions are
/// counted on the data lines **and** the invert line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusInvert {
    width: usize,
    mask: u64,
    /// Current physical state of the data lines (possibly inverted).
    bus: Option<u64>,
    /// Current state of the invert line.
    invert_line: bool,
    transitions: u64,
    raw_transitions: u64,
    last_raw: Option<u64>,
    words: u64,
}

impl BusInvert {
    /// Creates a monitor for a `width`-line data bus (plus the implicit
    /// invert line).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=63` (one line is reserved for the
    /// invert signal in the 64-bit state).
    pub fn new(width: usize) -> Self {
        assert!(
            (1..=63).contains(&width),
            "bus width {width} outside 1..=63"
        );
        let mask = (1u64 << width) - 1;
        BusInvert {
            width,
            mask,
            bus: None,
            invert_line: false,
            transitions: 0,
            raw_transitions: 0,
            last_raw: None,
            words: 0,
        }
    }

    /// Observes the next word to transfer.
    pub fn observe(&mut self, word: u64) {
        let word = word & self.mask;
        if let Some(bus) = self.bus {
            let plain = word_transitions(&[bus, word], self.mask);
            let inverted = word_transitions(&[bus, !word], self.mask);
            // Tie-break toward not inverting, as in the original paper.
            let (next_bus, next_invert, data_cost) = if inverted < plain {
                (!word & self.mask, true, inverted)
            } else {
                (word, false, plain)
            };
            let invert_cost = (next_invert != self.invert_line) as u64;
            self.transitions += data_cost + invert_cost;
            self.bus = Some(next_bus);
            self.invert_line = next_invert;
        } else {
            self.bus = Some(word);
            self.invert_line = false;
        }
        if let Some(last) = self.last_raw {
            self.raw_transitions += word_transitions(&[last, word], self.mask);
        }
        self.last_raw = Some(word);
        self.words += 1;
    }

    /// Number of data lines (excluding the invert line).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words observed.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Transitions on the coded bus, including the invert line.
    pub fn total_transitions(&self) -> u64 {
        self.transitions
    }

    /// Transitions the raw (uncoded) bus would have had.
    pub fn raw_transitions(&self) -> u64 {
        self.raw_transitions
    }

    /// Percentage of transitions eliminated relative to the raw bus.
    pub fn reduction_percent(&self) -> f64 {
        if self.raw_transitions == 0 {
            return 0.0;
        }
        (self.raw_transitions as i64 - self.transitions as i64) as f64 / self.raw_transitions as f64
            * 100.0
    }
}

impl FetchSink for BusInvert {
    #[inline]
    fn on_fetch(&mut self, _pc: u32, word: u32) {
        self.observe(word as u64);
    }
}

/// Partitioned bus-invert coding: the bus is split into `groups` equal
/// slices, each with its own invert line and its own majority decision.
///
/// Stan & Burleson note that partitioning recovers most of the coding loss
/// on wide buses (a single 32-line majority vote rarely fires); the cost
/// is one extra line per group. Transitions are counted on all data lines
/// plus all invert lines.
///
/// ```
/// use imt_baselines::PartitionedBusInvert;
///
/// let mut bus = PartitionedBusInvert::new(32, 4).expect("4 groups of 8");
/// bus.observe(0x0000_0000);
/// bus.observe(0x0000_00FF); // one byte flips entirely: its group inverts
/// assert_eq!(bus.total_transitions(), 1); // just that group's invert line
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedBusInvert {
    groups: Vec<BusInvert>,
    group_width: usize,
    raw_transitions: u64,
    last_raw: Option<u64>,
    mask: u64,
}

impl PartitionedBusInvert {
    /// Creates a monitor for `width` lines split into `groups` slices.
    ///
    /// # Errors
    ///
    /// Returns a message if `width` is not divisible by `groups`, or
    /// either parameter is out of range.
    pub fn new(width: usize, groups: usize) -> Result<Self, String> {
        if groups == 0 || width == 0 || width > 63 {
            return Err(format!(
                "bad partitioned bus shape: {width} lines, {groups} groups"
            ));
        }
        if !width.is_multiple_of(groups) {
            return Err(format!(
                "{width} lines do not split into {groups} equal groups"
            ));
        }
        let group_width = width / groups;
        Ok(PartitionedBusInvert {
            groups: (0..groups).map(|_| BusInvert::new(group_width)).collect(),
            group_width,
            raw_transitions: 0,
            last_raw: None,
            mask: (1u64 << width) - 1,
        })
    }

    /// Observes the next word.
    pub fn observe(&mut self, word: u64) {
        let word = word & self.mask;
        for (i, group) in self.groups.iter_mut().enumerate() {
            group.observe(word >> (i * self.group_width));
        }
        if let Some(last) = self.last_raw {
            self.raw_transitions += word_transitions(&[last, word], self.mask);
        }
        self.last_raw = Some(word);
    }

    /// Transitions on all coded lines including every invert line.
    pub fn total_transitions(&self) -> u64 {
        self.groups.iter().map(BusInvert::total_transitions).sum()
    }

    /// Transitions the raw bus would have had.
    pub fn raw_transitions(&self) -> u64 {
        self.raw_transitions
    }

    /// Percentage of transitions eliminated relative to the raw bus.
    pub fn reduction_percent(&self) -> f64 {
        if self.raw_transitions == 0 {
            return 0.0;
        }
        (self.raw_transitions as i64 - self.total_transitions() as i64) as f64
            / self.raw_transitions as f64
            * 100.0
    }
}

impl FetchSink for PartitionedBusInvert {
    #[inline]
    fn on_fetch(&mut self, _pc: u32, word: u32) {
        self.observe(word as u64);
    }
}

/// T0 address-bus encoding (Benini et al., 1997).
///
/// A redundant *INC* line signals "address = previous + stride"; when
/// asserted, the address lines are frozen (they keep their previous
/// value), so sequential fetch streams approach zero transitions.
/// Transitions are counted on the 32 address lines and the INC line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T0 {
    stride: u32,
    /// Physical state of the address lines.
    lines: Option<u32>,
    /// Expected next sequential address.
    expected: Option<u32>,
    inc_line: bool,
    transitions: u64,
    raw_transitions: u64,
    last_raw: Option<u32>,
}

impl T0 {
    /// Creates a monitor with the given sequential stride (4 for word
    /// fetches).
    pub fn new(stride: u32) -> Self {
        T0 {
            stride,
            lines: None,
            expected: None,
            inc_line: false,
            transitions: 0,
            raw_transitions: 0,
            last_raw: None,
        }
    }

    /// Observes the next address.
    pub fn observe(&mut self, address: u32) {
        if let (Some(lines), Some(expected)) = (self.lines, self.expected) {
            let sequential = address == expected;
            let (next_lines, next_inc) = if sequential {
                (lines, true) // lines frozen, INC asserted
            } else {
                (address, false)
            };
            self.transitions += step32(lines, next_lines);
            self.transitions += (next_inc != self.inc_line) as u64;
            self.lines = Some(next_lines);
            self.inc_line = next_inc;
        } else {
            self.lines = Some(address);
            self.inc_line = false;
        }
        self.expected = Some(address.wrapping_add(self.stride));
        if let Some(last) = self.last_raw {
            self.raw_transitions += step32(last, address);
        }
        self.last_raw = Some(address);
    }

    /// Transitions on the coded address bus, including the INC line.
    pub fn total_transitions(&self) -> u64 {
        self.transitions
    }

    /// Transitions the raw address bus would have had.
    pub fn raw_transitions(&self) -> u64 {
        self.raw_transitions
    }

    /// Percentage of transitions eliminated relative to the raw bus.
    pub fn reduction_percent(&self) -> f64 {
        if self.raw_transitions == 0 {
            return 0.0;
        }
        (self.raw_transitions as i64 - self.transitions as i64) as f64 / self.raw_transitions as f64
            * 100.0
    }
}

impl FetchSink for T0 {
    #[inline]
    fn on_fetch(&mut self, pc: u32, _word: u32) {
        self.observe(pc);
    }
}

/// A dictionary (frequent-value) bus encoder — the approach family the
/// paper's §3 argues against.
///
/// The `size` most frequent instruction words (from a profiling pass) are
/// loaded into a decoder-side dictionary. On a hit, only a `⌈log₂ size⌉`-bit
/// index is driven (on the low index lines, the rest of the bus frozen)
/// plus a *hit* line; on a miss the full word is driven and the hit line
/// cleared. This captures the power-side cost/benefit of dictionary
/// lookup without modelling its real deal-breakers (the table's lookup
/// latency in the fetch critical path and its storage, which the paper's
/// functional transformations avoid — one gate and 3 control bits).
///
/// ```
/// use imt_baselines::DictionaryBus;
///
/// let mut bus = DictionaryBus::new(vec![0xAAAA_AAAA, 0x5555_5555], 32);
/// bus.observe(0xAAAA_AAAA); // hit: index 0
/// bus.observe(0x5555_5555); // hit: index 1 — one index line flips + nothing else
/// assert!(bus.total_transitions() <= 2);
/// assert_eq!(bus.hits(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictionaryBus {
    dictionary: Vec<u32>,
    index_bits: u32,
    width: usize,
    /// Physical state of the data lines.
    lines: Option<u32>,
    hit_line: bool,
    transitions: u64,
    raw_transitions: u64,
    last_raw: Option<u32>,
    hits: u64,
    misses: u64,
}

impl DictionaryBus {
    /// Creates the encoder with the given dictionary contents (most
    /// frequent first; order defines the index).
    ///
    /// # Panics
    ///
    /// Panics if the dictionary is empty or `width` is outside `1..=32`.
    pub fn new(dictionary: Vec<u32>, width: usize) -> Self {
        assert!(!dictionary.is_empty(), "dictionary cannot be empty");
        assert!((1..=32).contains(&width), "width {width} outside 1..=32");
        let index_bits = usize::BITS - (dictionary.len() - 1).leading_zeros().max(1);
        DictionaryBus {
            dictionary,
            index_bits,
            width,
            lines: None,
            hit_line: false,
            transitions: 0,
            raw_transitions: 0,
            last_raw: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Builds the `size`-entry dictionary of most frequent words from a
    /// profiled text segment (word weighted by its execution count).
    pub fn from_profile(text: &[u32], profile: &[u64], size: usize) -> Self {
        use std::collections::HashMap;
        let mut freq: HashMap<u32, u64> = HashMap::new();
        for (i, &word) in text.iter().enumerate() {
            *freq.entry(word).or_insert(0) += profile.get(i).copied().unwrap_or(0);
        }
        let mut ranked: Vec<(u32, u64)> = freq.into_iter().collect();
        ranked.sort_by_key(|&(word, count)| (std::cmp::Reverse(count), word));
        let dictionary: Vec<u32> = ranked
            .into_iter()
            .take(size.max(1))
            .map(|(word, _)| word)
            .collect();
        DictionaryBus::new(dictionary, 32)
    }

    /// Observes the next fetched word.
    pub fn observe(&mut self, word: u32) {
        let (next_lines, next_hit) = match self.dictionary.iter().position(|&w| w == word) {
            Some(index) => {
                self.hits += 1;
                // Index driven on the low lines, all other lines frozen.
                let keep_mask = u32::MAX << self.index_bits;
                let frozen = self.lines.unwrap_or(0) & keep_mask;
                (frozen | index as u32, true)
            }
            None => {
                self.misses += 1;
                (word, false)
            }
        };
        if let Some(lines) = self.lines {
            self.transitions += step32(lines, next_lines);
            self.transitions += (next_hit != self.hit_line) as u64;
        }
        self.lines = Some(next_lines);
        self.hit_line = next_hit;
        if let Some(last) = self.last_raw {
            self.raw_transitions += step32(last, word);
        }
        self.last_raw = Some(word);
    }

    /// Dictionary hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Dictionary misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Transitions on the coded bus, including the hit line.
    pub fn total_transitions(&self) -> u64 {
        self.transitions
    }

    /// Transitions the raw bus would have had.
    pub fn raw_transitions(&self) -> u64 {
        self.raw_transitions
    }

    /// Percentage of transitions eliminated relative to the raw bus.
    pub fn reduction_percent(&self) -> f64 {
        if self.raw_transitions == 0 {
            return 0.0;
        }
        (self.raw_transitions as i64 - self.transitions as i64) as f64 / self.raw_transitions as f64
            * 100.0
    }
}

impl FetchSink for DictionaryBus {
    #[inline]
    fn on_fetch(&mut self, _pc: u32, word: u32) {
        self.observe(word);
    }
}

/// Gray-coded addressing: the bus carries the Gray code of the address so
/// sequential words differ in exactly one bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrayAddress {
    last_coded: Option<u32>,
    transitions: u64,
    raw_transitions: u64,
    last_raw: Option<u32>,
}

impl GrayAddress {
    /// Creates the monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the next address (word index granularity: the two
    /// alignment zero bits are dropped before Gray coding, as is standard
    /// for instruction buses).
    pub fn observe(&mut self, address: u32) {
        let index = address >> 2;
        let coded = index ^ (index >> 1);
        if let Some(last) = self.last_coded {
            self.transitions += step32(last, coded);
        }
        self.last_coded = Some(coded);
        if let Some(last) = self.last_raw {
            self.raw_transitions += step32(last, address);
        }
        self.last_raw = Some(address);
    }

    /// Transitions on the Gray-coded bus.
    pub fn total_transitions(&self) -> u64 {
        self.transitions
    }

    /// Transitions the raw address bus would have had.
    pub fn raw_transitions(&self) -> u64 {
        self.raw_transitions
    }
}

impl FetchSink for GrayAddress {
    #[inline]
    fn on_fetch(&mut self, pc: u32, _word: u32) {
        self.observe(pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_invert_never_exceeds_half_width_plus_one() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut bus = BusInvert::new(32);
        let mut previous_total = 0;
        bus.observe(rng.gen::<u32>() as u64);
        for _ in 0..1000 {
            bus.observe(rng.gen::<u32>() as u64);
            let step = bus.total_transitions() - previous_total;
            // The defining property: at most N/2 data transitions + 1.
            assert!(step <= 17, "step of {step} transitions");
            previous_total = bus.total_transitions();
        }
        // On random data, bus-invert helps but modestly (a few percent).
        assert!(bus.total_transitions() < bus.raw_transitions());
    }

    #[test]
    fn bus_invert_identity_on_friendly_data() {
        let mut bus = BusInvert::new(8);
        for w in [0b0000_0001u64, 0b0000_0011, 0b0000_0111] {
            bus.observe(w);
        }
        // Hamming distances are small: no inversion ever chosen.
        assert_eq!(bus.total_transitions(), bus.raw_transitions());
        assert_eq!(bus.total_transitions(), 2);
    }

    #[test]
    fn bus_invert_flips_on_hostile_data() {
        let mut bus = BusInvert::new(4);
        bus.observe(0b0000);
        bus.observe(0b1111); // raw 4, inverted 0 + invert line 1
        bus.observe(0b0000); // bus still 0b0000; plain distance 0... but invert line drops
        assert_eq!(bus.raw_transitions(), 8);
        // Step 2: data 0 + invert 1 = 1. Step 3: data lines stay 0000;
        // word 0000 plain vs bus 0000 → no invert → invert line falls: 1.
        assert_eq!(bus.total_transitions(), 2);
    }

    #[test]
    fn partitioned_bus_invert_beats_monolithic_on_byte_flips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut mono = BusInvert::new(32);
        let mut quad = PartitionedBusInvert::new(32, 4).unwrap();
        // Words whose low byte is adversarial but whose upper bytes are
        // calm: the monolithic vote never fires, the partitioned one does.
        let mut word = 0u64;
        for _ in 0..2000 {
            word = (word & !0xFF) | (!(word as u8)) as u64;
            if rng.gen_bool(0.1) {
                word ^= 0x0101_0000;
            }
            mono.observe(word);
            quad.observe(word);
        }
        assert!(quad.total_transitions() < mono.total_transitions());
        assert!(quad.reduction_percent() > mono.reduction_percent());
    }

    #[test]
    fn partitioned_bus_invert_shape_validation() {
        assert!(PartitionedBusInvert::new(32, 5).is_err());
        assert!(PartitionedBusInvert::new(0, 1).is_err());
        assert!(PartitionedBusInvert::new(32, 0).is_err());
        assert!(PartitionedBusInvert::new(32, 8).is_ok());
    }

    #[test]
    fn partitioned_raw_accounting_matches_groups() {
        let mut bus = PartitionedBusInvert::new(16, 2).unwrap();
        bus.observe(0x0000);
        bus.observe(0xFFFF);
        assert_eq!(bus.raw_transitions(), 16);
        // Both byte groups invert: 2 invert-line transitions.
        assert_eq!(bus.total_transitions(), 2);
    }

    #[test]
    fn t0_freezes_sequential_streams() {
        let mut t0 = T0::new(4);
        for i in 0..100u32 {
            t0.observe(0x0040_0000 + i * 4);
        }
        // First INC assertion costs 1; everything after is free.
        assert_eq!(t0.total_transitions(), 1);
        assert!(t0.raw_transitions() > 100);
        assert!(t0.reduction_percent() > 99.0);
    }

    #[test]
    fn t0_pays_for_branches() {
        let mut t0 = T0::new(4);
        t0.observe(0x0040_0000);
        t0.observe(0x0040_0004); // sequential: INC rises (1)
        t0.observe(0x0040_1000); // branch: address lines change + INC falls
        let expected = 1 + (0x0040_0000u32 ^ 0x0040_1000).count_ones() as u64 + 1;
        assert_eq!(t0.total_transitions(), expected);
    }

    #[test]
    fn dictionary_hits_freeze_the_bus() {
        let mut bus = DictionaryBus::new(vec![0xDEAD_BEEF, 0x1234_5678], 32);
        bus.observe(0xDEAD_BEEF); // first word, no transition
        bus.observe(0xDEAD_BEEF); // same index: zero transitions
        assert_eq!(bus.total_transitions(), 0);
        bus.observe(0x1234_5678); // index 0 -> 1: one line
        assert_eq!(bus.total_transitions(), 1);
        assert_eq!(bus.hits(), 3);
        // A miss drives the full word and drops the hit line.
        bus.observe(0xFFFF_FFFF);
        assert_eq!(bus.misses(), 1);
        assert!(bus.total_transitions() > 1);
    }

    #[test]
    fn dictionary_from_profile_ranks_by_dynamic_count() {
        let text = [0xAAAA_0000u32, 0xBBBB_0000, 0xCCCC_0000];
        let profile = [5u64, 100, 1];
        let bus = DictionaryBus::from_profile(&text, &profile, 2);
        // The hot word (index 1 in text) must be dictionary entry 0.
        let mut probe = bus.clone();
        probe.observe(0xBBBB_0000);
        assert_eq!(probe.hits(), 1);
        let mut probe = bus.clone();
        probe.observe(0xCCCC_0000);
        assert_eq!(probe.misses(), 1);
    }

    #[test]
    #[should_panic(expected = "dictionary cannot be empty")]
    fn dictionary_rejects_empty() {
        DictionaryBus::new(Vec::new(), 32);
    }

    #[test]
    fn gray_sequential_is_one_transition_per_fetch() {
        let mut gray = GrayAddress::new();
        for i in 0..64u32 {
            gray.observe(0x0040_0000 + i * 4);
        }
        assert_eq!(gray.total_transitions(), 63);
        assert!(gray.raw_transitions() > 63);
    }

    #[test]
    fn monitors_work_as_fetch_sinks() {
        use imt_isa::asm::assemble;
        use imt_sim::cpu::Tee;
        let program = assemble(
            r#"
            .text
    main:   li $t0, 50
    loop:   addiu $t0, $t0, -1
            bgtz $t0, loop
            li $v0, 10
            syscall
    "#,
        )
        .unwrap();
        let mut cpu = imt_sim::Cpu::new(&program).unwrap();
        let mut businv = BusInvert::new(32);
        let mut t0 = T0::new(4);
        let mut tee = Tee(&mut businv, &mut t0);
        cpu.run_with_sink(10_000, &mut tee).unwrap();
        assert!(businv.words() > 100);
        // The loop branches back every iteration: T0 saves on the two
        // sequential fetches per iteration but pays for the back edge.
        assert!(t0.total_transitions() < t0.raw_transitions());
    }

    #[test]
    #[should_panic(expected = "outside 1..=63")]
    fn bus_invert_rejects_wide_buses() {
        BusInvert::new(64);
    }
}
