//! Criterion bench: the optimal block solver (`encode_block`) across block
//! sizes and transformation universes — the inner engine behind every code
//! table and every stream encoding.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use imt_bitcode::block::{encode_block, encode_block_exhaustive, BlockContext};
use imt_bitcode::codebook::codebook_for;
use imt_bitcode::TransformSet;
use rand::{Rng, SeedableRng};

fn bench_block_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_solver");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for k in [3usize, 5, 7, 10, 13] {
        let words: Vec<Vec<bool>> = (0..256)
            .map(|_| (0..k).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("eight", k), &words, |b, words| {
            b.iter(|| {
                for w in words {
                    black_box(encode_block(
                        black_box(w),
                        BlockContext::Initial,
                        TransformSet::CANONICAL_EIGHT,
                    ));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sixteen", k), &words, |b, words| {
            b.iter(|| {
                for w in words {
                    black_box(encode_block(
                        black_box(w),
                        BlockContext::Initial,
                        TransformSet::ALL_SIXTEEN,
                    ));
                }
            })
        });
    }
    group.finish();
}

/// Memoized codebook lookups against the exhaustive search they replace,
/// on the same 256-word batches. The gap is the tentpole speedup: the
/// lookup is O(1) per block while the search enumerates candidate code
/// words — and it widens with `k`.
fn bench_codebook_vs_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook_vs_exhaustive");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for k in [5usize, 6, 7] {
        let words: Vec<Vec<bool>> = (0..256)
            .map(|_| (0..k).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        // Warm the table so the one-time build cost is not measured.
        codebook_for(k, TransformSet::CANONICAL_EIGHT);
        group.bench_with_input(BenchmarkId::new("codebook", k), &words, |b, words| {
            b.iter(|| {
                for w in words {
                    black_box(encode_block(
                        black_box(w),
                        BlockContext::Initial,
                        TransformSet::CANONICAL_EIGHT,
                    ));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", k), &words, |b, words| {
            b.iter(|| {
                for w in words {
                    black_box(encode_block_exhaustive(
                        black_box(w),
                        BlockContext::Initial,
                        TransformSet::CANONICAL_EIGHT,
                    ));
                }
            })
        });
    }
    group.finish();
}

fn bench_code_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_table");
    for k in [5usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                imt_bitcode::tables::CodeTable::build(k, TransformSet::CANONICAL_EIGHT)
                    .expect("valid size")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_solver,
    bench_codebook_vs_exhaustive,
    bench_code_tables
);
criterion_main!(benches);
