//! Criterion bench: the optimal block solver (`encode_block`) across block
//! sizes and transformation universes — the inner engine behind every code
//! table and every stream encoding.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use imt_bitcode::block::{encode_block, BlockContext};
use imt_bitcode::TransformSet;
use rand::{Rng, SeedableRng};

fn bench_block_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_solver");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for k in [3usize, 5, 7, 10, 13] {
        let words: Vec<Vec<bool>> =
            (0..256).map(|_| (0..k).map(|_| rng.gen_bool(0.5)).collect()).collect();
        group.bench_with_input(BenchmarkId::new("eight", k), &words, |b, words| {
            b.iter(|| {
                for w in words {
                    black_box(encode_block(
                        black_box(w),
                        BlockContext::Initial,
                        TransformSet::CANONICAL_EIGHT,
                    ));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("sixteen", k), &words, |b, words| {
            b.iter(|| {
                for w in words {
                    black_box(encode_block(
                        black_box(w),
                        BlockContext::Initial,
                        TransformSet::ALL_SIXTEEN,
                    ));
                }
            })
        });
    }
    group.finish();
}

fn bench_code_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_table");
    for k in [5usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                imt_bitcode::tables::CodeTable::build(k, TransformSet::CANONICAL_EIGHT)
                    .expect("valid size")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_solver, bench_code_tables);
criterion_main!(benches);
