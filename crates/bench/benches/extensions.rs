//! Criterion bench: the extension machinery — table-image pack/unpack,
//! h-history solver, block scheduler, exact gate synthesis.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_sim::Cpu;

fn bench_table_image(c: &mut Criterion) {
    let spec = Kernel::Tri.test_spec();
    let program = spec.assemble();
    let mut cpu = Cpu::new(&program).expect("load");
    cpu.run(spec.max_steps).expect("profile");
    let encoded =
        encode_program(&program, cpu.profile(), &EncoderConfig::default()).expect("encode");
    let mut group = c.benchmark_group("table_image");
    group.bench_function("pack", |b| {
        b.iter(|| imt_core::tableimage::pack_tables(black_box(&encoded)).expect("pack"))
    });
    let image = imt_core::tableimage::pack_tables(&encoded).expect("pack");
    group.bench_function("unpack", |b| {
        b.iter(|| {
            imt_core::tableimage::unpack_tables(black_box(&image), encoded.config.transforms())
                .expect("unpack")
        })
    });
    group.finish();
}

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_solver");
    for h in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| imt_bitcode::history::history_table_summary(6, h).expect("valid"))
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let spec = Kernel::Fft.test_spec();
    let program = spec.assemble();
    let mut cpu = Cpu::new(&program).expect("load");
    cpu.run(spec.max_steps).expect("profile");
    let profile = cpu.profile().to_vec();
    c.bench_function("schedule_program_fft", |b| {
        b.iter(|| {
            imt_core::schedule::schedule_program(
                black_box(&program),
                black_box(&profile),
                &EncoderConfig::default(),
            )
            .expect("schedule")
        })
    });
}

fn bench_gate_synthesis(c: &mut Criterion) {
    c.bench_function("restore_cell_synthesis", |b| {
        b.iter(|| {
            imt_bitcode::gates::restore_cell_cost(black_box(
                imt_bitcode::TransformSet::CANONICAL_EIGHT,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_table_image,
    bench_history,
    bench_scheduler,
    bench_gate_synthesis
);
criterion_main!(benches);
