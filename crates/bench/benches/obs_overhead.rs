//! Asserting bench: the disabled-path cost of `imt-obs` instrumentation.
//!
//! With `IMT_OBS` unset every instrumentation site in the encode hot path
//! reduces to one relaxed atomic load plus a branch (`imt_obs::enabled()`).
//! This bench measures both sides of that claim on the packed stream
//! encoder — the hottest instrumented path — and **fails** (exit 1) if the
//! gate cost could exceed 2% of a packed encode:
//!
//! 1. median wall time of `StreamCodec::encode_packed` over a 10 000-bit
//!    stream, observability off;
//! 2. amortised cost of one `imt_obs::enabled()` check;
//! 3. assert `GATE_CHECKS_PER_ENCODE × check_cost < 2% × encode_time`,
//!    with a generous bound on checks per encode (the real path performs
//!    one, at the end of the call).
//!
//! Plain `harness = false` main so `cargo bench --bench obs_overhead` runs
//! it as a CI gate without criterion's sampling machinery.

use std::hint::black_box;
use std::time::Instant;

use imt_bitcode::gen::uniform;
use imt_bitcode::packed::PackedSeq;
use imt_bitcode::slice::encode_words_sliced;
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use rand::SeedableRng;

/// Upper bound on `enabled()` checks one packed encode performs today
/// (actual: 1). The headroom keeps the gate honest if more sites appear.
const GATE_CHECKS_PER_ENCODE: u64 = 16;

/// Maximum tolerated gate share of one packed encode.
const BUDGET_PERCENT: f64 = 2.0;

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    // Tolerates and ignores cargo-bench plumbing args (`--bench`, filters).
    let _ = std::env::args();
    imt_obs::set_mode(imt_obs::Mode::Off);

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let stream = uniform(&mut rng, 10_000);
    let packed = PackedSeq::from_bitseq(&stream);
    let codec = StreamCodec::new(StreamCodecConfig::block_size(5).expect("valid"));

    // Warm-up builds the memoized codebook so we time the steady state.
    black_box(codec.encode_packed(&packed));

    let mut encode_samples = [0u64; 31];
    for sample in &mut encode_samples {
        let start = Instant::now();
        black_box(codec.encode_packed(black_box(&packed)));
        *sample = start.elapsed().as_nanos() as u64;
    }
    let encode_ns = median_ns(&mut encode_samples);

    const CHECKS: u64 = 1_000_000;
    let mut check_samples = [0u64; 9];
    for sample in &mut check_samples {
        let start = Instant::now();
        for _ in 0..CHECKS {
            black_box(imt_obs::enabled());
        }
        *sample = start.elapsed().as_nanos() as u64;
    }
    let check_ns = median_ns(&mut check_samples) as f64 / CHECKS as f64;

    let gate_ns = check_ns * GATE_CHECKS_PER_ENCODE as f64;
    let share = gate_ns / encode_ns as f64 * 100.0;
    println!("obs_overhead: packed encode (10k bits, k=5)  median {encode_ns} ns");
    println!("obs_overhead: enabled() check                {check_ns:.3} ns/call");
    println!(
        "obs_overhead: {GATE_CHECKS_PER_ENCODE} checks/encode = {gate_ns:.1} ns \
         = {share:.4}% of an encode (budget {BUDGET_PERCENT}%)"
    );
    assert!(
        share < BUDGET_PERCENT,
        "disabled-path observability overhead {share:.4}% exceeds {BUDGET_PERCENT}% budget"
    );

    // The bit-sliced hot loop carries more sites than the packed one
    // (span + SIMD-path counter + trace gate), so hold it to the same
    // budget: 16 gate checks must stay under 2% of one sliced encode.
    let words: Vec<u64> = (0..256)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    black_box(encode_words_sliced(&words, 64, &codec).expect("sliced encode"));
    let mut sliced_samples = [0u64; 31];
    for sample in &mut sliced_samples {
        let start = Instant::now();
        black_box(encode_words_sliced(black_box(&words), 64, &codec).expect("sliced encode"));
        *sample = start.elapsed().as_nanos() as u64;
    }
    let sliced_ns = median_ns(&mut sliced_samples);
    let sliced_share = gate_ns / sliced_ns as f64 * 100.0;
    println!("obs_overhead: sliced encode (256x64 bits)    median {sliced_ns} ns");
    println!(
        "obs_overhead: {GATE_CHECKS_PER_ENCODE} checks/encode = {gate_ns:.1} ns \
         = {sliced_share:.4}% of a sliced encode (budget {BUDGET_PERCENT}%)"
    );
    assert!(
        sliced_share < BUDGET_PERCENT,
        "disabled-path observability overhead {sliced_share:.4}% of a sliced encode \
         exceeds {BUDGET_PERCENT}% budget"
    );

    // With obs off, `push_label_lazy` must not even build its label — the
    // grid cells pay one mode check instead of a `format!` allocation.
    const LABELS: u64 = 100_000;
    let mut eager_samples = [0u64; 9];
    for sample in &mut eager_samples {
        let start = Instant::now();
        for i in 0..LABELS {
            drop(black_box(imt_obs::push_label(format!(
                "mmul-100/k{}",
                black_box(i) % 8
            ))));
        }
        *sample = start.elapsed().as_nanos() as u64;
    }
    let eager_ns = median_ns(&mut eager_samples) as f64 / LABELS as f64;
    let mut lazy_samples = [0u64; 9];
    for sample in &mut lazy_samples {
        let start = Instant::now();
        for i in 0..LABELS {
            drop(black_box(imt_obs::push_label_lazy(|| {
                format!("mmul-100/k{}", black_box(i) % 8)
            })));
        }
        *sample = start.elapsed().as_nanos() as u64;
    }
    let lazy_ns = median_ns(&mut lazy_samples) as f64 / LABELS as f64;
    println!("obs_overhead: push_label(format!) eager      {eager_ns:.3} ns/call");
    println!("obs_overhead: push_label_lazy, obs off       {lazy_ns:.3} ns/call");
    assert!(
        lazy_ns < eager_ns,
        "lazy label ({lazy_ns:.3} ns) must undercut the eager push + format ({eager_ns:.3} ns) \
         while observability is off"
    );
    println!("obs_overhead: PASS");
}
