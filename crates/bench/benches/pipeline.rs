//! Criterion bench: the offline pipeline per kernel — CFG recovery +
//! hot-loop selection + lane encoding — i.e. the cost of preparing one
//! firmware image, which the paper argues is paid once per application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imt_cfg::Cfg;
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_sim::Cpu;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_pipeline");
    for kernel in Kernel::ALL {
        let spec = kernel.test_spec();
        let program = spec.assemble();
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.run(spec.max_steps).expect("profile");
        let profile = cpu.profile().to_vec();
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &(program, profile),
            |b, (program, profile)| {
                b.iter(|| {
                    encode_program(program, profile, &EncoderConfig::default()).expect("encode")
                })
            },
        );
    }
    group.finish();
}

fn bench_cfg(c: &mut Criterion) {
    let spec = Kernel::Fft.paper_spec();
    let program = spec.assemble();
    let mut group = c.benchmark_group("cfg_analysis");
    group.bench_function("build_fft256", |b| {
        b.iter(|| Cfg::build(&program).expect("valid program"))
    });
    let cfg = Cfg::build(&program).expect("valid program");
    group.bench_function("dominators_and_loops_fft256", |b| {
        b.iter(|| {
            let _idom = cfg.immediate_dominators();
            cfg.natural_loops()
        })
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let spec = Kernel::Fft.paper_spec();
    let mut group = c.benchmark_group("assembler");
    group.bench_function("fft256_source", |b| {
        b.iter(|| imt_isa::asm::assemble(&spec.source).expect("valid source"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_cfg, bench_assembler);
criterion_main!(benches);
