//! Asserting bench: replay evaluation cost is O(static edges), not
//! O(dynamic fetches).
//!
//! The same kernel at two problem sizes (fft at Test and Paper scale) has
//! nearly the same static text — and therefore nearly the same fetch-edge
//! profile size — while executing vastly more dynamic instructions at
//! Paper scale. Full simulation scales with the dynamic count; replay must
//! not. This bench measures both evaluators at both scales and **fails**
//! (exit 1) unless:
//!
//! 1. the dynamic/static separation is real (Paper-scale fetches ≥ 10×
//!    Test-scale fetches — a deterministic backstop that does not depend
//!    on timing noise), and
//! 2. Paper-scale replay stays within 2× of Test-scale replay (median
//!    wall time), pinning the asymptotic claim.
//!
//! Plain `harness = false` main so `cargo bench --bench replay_vs_sim`
//! runs it as a CI gate without criterion's sampling machinery.

use std::hint::black_box;
use std::time::Instant;

use imt_core::eval::{evaluate, evaluate_replay};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_sim::edge::FetchEdgeProfile;

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Measured {
    fetches: u64,
    distinct_edges: usize,
    full_ns: u64,
    replay_ns: u64,
}

fn measure(spec: &imt_kernels::KernelSpec) -> Measured {
    let program = spec.assemble();
    let edges = FetchEdgeProfile::record(&program, spec.max_steps)
        .unwrap_or_else(|e| panic!("{}: recording failed: {e}", spec.name));
    assert_eq!(edges.stdout(), spec.expected_output, "{}", spec.name);
    let counts = edges.per_index_counts();
    let encoded =
        encode_program(&program, &counts, &EncoderConfig::default()).expect("encode failed");

    // Both paths must agree before their costs are worth comparing.
    let full = evaluate(&program, &encoded, spec.max_steps).expect("full evaluation failed");
    let replay = evaluate_replay(&program, &encoded, &edges).expect("replay failed");
    assert_eq!(replay, full, "{}: replay diverged", spec.name);

    let mut full_samples = [0u64; 11];
    for sample in &mut full_samples {
        let start = Instant::now();
        black_box(evaluate(black_box(&program), black_box(&encoded), spec.max_steps).unwrap());
        *sample = start.elapsed().as_nanos() as u64;
    }
    let mut replay_samples = [0u64; 31];
    for sample in &mut replay_samples {
        let start = Instant::now();
        black_box(
            evaluate_replay(black_box(&program), black_box(&encoded), black_box(&edges)).unwrap(),
        );
        *sample = start.elapsed().as_nanos() as u64;
    }
    Measured {
        fetches: edges.fetches(),
        distinct_edges: edges.distinct_edges(),
        full_ns: median_ns(&mut full_samples),
        replay_ns: median_ns(&mut replay_samples),
    }
}

fn main() {
    // Tolerates and ignores cargo-bench plumbing args (`--bench`, filters).
    let _ = std::env::args();
    imt_obs::set_mode(imt_obs::Mode::Off);

    let test = measure(&Kernel::Fft.test_spec());
    let paper = measure(&Kernel::Fft.paper_spec());

    let fetch_ratio = paper.fetches as f64 / test.fetches as f64;
    let replay_ratio = paper.replay_ns as f64 / test.replay_ns as f64;
    println!(
        "replay_vs_sim: fft test   {:>9} fetches, {:>4} edges — full {:>9} ns, replay {:>7} ns",
        test.fetches, test.distinct_edges, test.full_ns, test.replay_ns
    );
    println!(
        "replay_vs_sim: fft paper  {:>9} fetches, {:>4} edges — full {:>9} ns, replay {:>7} ns",
        paper.fetches, paper.distinct_edges, paper.full_ns, paper.replay_ns
    );
    println!(
        "replay_vs_sim: paper/test ratios — fetches {fetch_ratio:.1}x, replay time {replay_ratio:.2}x"
    );
    println!(
        "replay_vs_sim: paper-scale full-sim/replay speedup {:.1}x",
        paper.full_ns as f64 / paper.replay_ns as f64
    );
    assert!(
        fetch_ratio >= 10.0,
        "scales are too close to separate asymptotics (fetches ratio {fetch_ratio:.1}x < 10x)"
    );
    assert!(
        replay_ratio < 2.0,
        "replay cost grew {replay_ratio:.2}x from Test to Paper scale — it must track static \
         edges, not the {fetch_ratio:.1}x dynamic fetch growth"
    );
    println!("replay_vs_sim: PASS");
}
