//! Criterion bench: simulator speed — bare, with a bus monitor attached,
//! and with the full evaluation sink (two monitors + fetch decoder), which
//! bounds how fast the Figure 6 experiment can replay the kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use imt_core::{encode_program, EncoderConfig};
use imt_isa::asm::assemble;
use imt_isa::Program;
use imt_sim::bus::DataBusMonitor;
use imt_sim::Cpu;

fn tight_loop(iterations: u32) -> Program {
    assemble(&format!(
        r#"
        .text
main:   li   $s0, {iterations}
loop:   xor  $t1, $t1, $s0
        sll  $t2, $t1, 3
        srl  $t3, $t1, 7
        addu $t4, $t2, $t3
        addiu $s0, $s0, -1
        bgtz $s0, loop
        li   $v0, 10
        syscall
"#
    ))
    .expect("valid source")
}

fn bench_simulator(c: &mut Criterion) {
    let iterations = 10_000u32;
    let program = tight_loop(iterations);
    let instructions = u64::from(iterations) * 6 + 5;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(instructions));
    group.bench_function("bare", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(&program).expect("load");
            cpu.run(10_000_000).expect("run")
        })
    });
    group.bench_function("with_bus_monitor", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(&program).expect("load");
            let mut bus = DataBusMonitor::new(32);
            cpu.run_with_sink(10_000_000, &mut bus).expect("run")
        })
    });
    group.bench_function("full_evaluation", |b| {
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.run(10_000_000).expect("profile");
        let encoded =
            encode_program(&program, cpu.profile(), &EncoderConfig::default()).expect("encode");
        b.iter(|| imt_core::eval::evaluate(&program, &encoded, 10_000_000).expect("evaluate"))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
