//! Criterion bench: the bit-sliced streaming encoder against the
//! per-lane packed oracle it replaces, on a 32-lane text image.
//!
//! Both paths produce bit-identical encodings (asserted by
//! tests/equivalence.rs and in-binary by exp_perf); this group measures
//! what the transposed representation buys — one codebook solve per block
//! position covering all 32 lanes instead of 32 per-lane walks — and what
//! the SIMD transpose/popcount kernels add on top of the scalar slicing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imt_bitcode::lanes::encode_words;
use imt_bitcode::simd::{self, SimdPath};
use imt_bitcode::slice::encode_words_sliced_with;
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use rand::{Rng, SeedableRng};

fn bench_sliced_vs_lanes(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let words: Vec<u64> = (0..16_384).map(|_| u64::from(rng.gen::<u32>())).collect();
    let mut group = c.benchmark_group("sliced_vs_lanes");
    group.throughput(Throughput::Elements(words.len() as u64));
    for k in [5usize, 7] {
        let codec = StreamCodec::new(StreamCodecConfig::block_size(k).expect("valid"));
        group.bench_with_input(
            BenchmarkId::new("per_lane_oracle", k),
            &codec,
            |b, codec| b.iter(|| encode_words(black_box(&words), 32, codec).expect("valid width")),
        );
        for path in SimdPath::ALL {
            if !simd::available(path) {
                continue;
            }
            let id = BenchmarkId::new(format!("sliced_{}", path.name()), k);
            group.bench_with_input(id, &codec, |b, codec| {
                b.iter(|| {
                    encode_words_sliced_with(black_box(&words), 32, codec, path)
                        .expect("valid width")
                })
            });
        }
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let tile: [u64; 64] = std::array::from_fn(|_| rng.gen::<u64>());
    let mut group = c.benchmark_group("transpose64");
    group.throughput(Throughput::Bytes(64 * 8));
    for path in SimdPath::ALL {
        if !simd::available(path) {
            continue;
        }
        group.bench_function(path.name(), |b| {
            b.iter(|| {
                let mut t = black_box(tile);
                simd::transpose64(path, &mut t);
                t
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sliced_vs_lanes, bench_transpose);
criterion_main!(benches);
