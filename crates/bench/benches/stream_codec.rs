//! Criterion bench: chained stream encoding/decoding throughput (§6) and
//! 32-lane word encoding — what the offline tooling pays per instruction
//! word of hot-loop code.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imt_bitcode::gen::uniform;
use imt_bitcode::lanes::encode_words;
use imt_bitcode::packed::PackedSeq;
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use rand::{Rng, SeedableRng};

fn bench_stream(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let stream = uniform(&mut rng, 10_000);
    let mut group = c.benchmark_group("stream_codec");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for k in [4usize, 5, 6, 7] {
        let codec = StreamCodec::new(StreamCodecConfig::block_size(k).expect("valid"));
        group.bench_with_input(BenchmarkId::new("encode", k), &codec, |b, codec| {
            b.iter(|| codec.encode(black_box(&stream)))
        });
        let encoded = codec.encode(&stream);
        group.bench_with_input(BenchmarkId::new("decode", k), &codec, |b, codec| {
            b.iter(|| codec.decode(black_box(&encoded)).expect("well formed"))
        });
    }
    group.finish();
}

/// The packed codebook fast path against the `Vec<bool>` + exhaustive
/// reference it replaces, on the same 10 000-bit stream. Both produce
/// bit-identical encodings (asserted by tests/equivalence.rs); this group
/// measures what the representation + memoization buy.
fn bench_packed_vs_bool(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let stream = uniform(&mut rng, 10_000);
    let packed = PackedSeq::from_bitseq(&stream);
    let mut group = c.benchmark_group("packed_vs_bool");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for k in [5usize, 7] {
        let codec = StreamCodec::new(StreamCodecConfig::block_size(k).expect("valid"));
        group.bench_with_input(BenchmarkId::new("packed", k), &codec, |b, codec| {
            b.iter(|| codec.encode_packed(black_box(&packed)))
        });
        group.bench_with_input(BenchmarkId::new("bool_reference", k), &codec, |b, codec| {
            b.iter(|| codec.encode_reference(black_box(&stream)))
        });
    }
    group.finish();
}

fn bench_lanes(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let words: Vec<u64> = (0..1024).map(|_| rng.gen::<u32>() as u64).collect();
    let codec = StreamCodec::new(StreamCodecConfig::block_size(5).expect("valid"));
    let mut group = c.benchmark_group("lane_encoding");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("encode_words_32x1024", |b| {
        b.iter(|| encode_words(black_box(&words), 32, &codec).expect("valid width"))
    });
    group.finish();
}

criterion_group!(benches, bench_stream, bench_packed_vs_bool, bench_lanes);
criterion_main!(benches);
