//! The encoder arena grid (E-A): every scheme × every kernel, one
//! shared currency.
//!
//! For each kernel this module scores the full roster of
//! [`imt_core::scheme`] encoders — TT/BBIT at block sizes 4–7, Gray
//! sequencing, the low-weight codebook, and bus-invert — against one
//! recorded fetch-edge profile, prices each in storage bits and
//! transition counts, marks the reduction-vs-hardware Pareto front, and
//! runs the per-lane auto-selector under the TT schedule's own hardware
//! budget. Static schemes replay closed-form; bus-invert (per-cycle
//! state) is routed to full simulation by
//! [`imt_core::scheme::evaluate_scheme_auto`] — the arena never lets a
//! stateful scheme be silently scored by the stateless replay path.
//!
//! Everything here is deterministic: kernels fan out over
//! [`par_map_coarse`] and merge in index order, so `exp_arena`'s output
//! and `results/BENCH_arena.json` are byte-stable across thread counts.

use imt_bitcode::businvert::{BusInvertNaive, BusInvertState};
use imt_bitcode::gray::{gray_word, gray_word_naive, ungray_word, ungray_word_naive};
use imt_bitcode::par::par_map_coarse;
use imt_core::eval::{evaluate_replay, EvalNeeds, EvalPath};
use imt_core::hardware::HardwareBudget;
use imt_core::scheme::{
    auto_select, build_scheme, composite_image, evaluate_scheme_auto, tt_lane_split,
    verify_composite_decode, AutoSelection, Encoder, GrayScheme, LaneChoice, LaneCosts,
    LowWeightScheme, SchemeEvaluation, SchemeSpec, TtBbitScheme, WholeBusCandidate,
};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_obs::json::Json;

use crate::runner::{kernel_profile, KernelProfile, Scale};

/// TT block sizes the arena sweeps (the paper's Figure 6 range).
pub const TT_BLOCK_SIZES: std::ops::RangeInclusive<usize> = 4..=7;

/// One scheme's row in a kernel's arena table.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaRow {
    /// Display label (`tt-k5`, `gray`, `lowweight-16`, `businvert`).
    pub label: String,
    /// Scheme family name (matches [`SchemeSpec::name`]).
    pub scheme: &'static str,
    /// TT block size, for the TT rows.
    pub block_size: Option<usize>,
    /// Table/CAM storage bits.
    pub storage_bits: u64,
    /// Extra bus lines beyond the 32 data lanes.
    pub extra_lines: u32,
    /// Restore-logic gate estimate.
    pub restore_gates: u64,
    /// The evaluation (replayed or fully simulated).
    pub evaluation: SchemeEvaluation,
    /// Which path scored it (`"replay"` or `"full-sim"`).
    pub path: &'static str,
    /// Whether the row sits on the reduction-vs-storage Pareto front.
    pub pareto: bool,
}

impl ArenaRow {
    /// Reduction percentage of this row.
    pub fn reduction_percent(&self) -> f64 {
        self.evaluation.reduction_percent()
    }
}

/// The auto-selector's outcome for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoOutcome {
    /// The raw selection.
    pub selection: AutoSelection,
    /// `"composite"` or the winning whole-bus scheme's name.
    pub winner: String,
    /// Per-lane choice string, lane 31 first (`B`/`T`/`G`), for
    /// composite winners.
    pub lane_map: String,
    /// Label of the TT row donating lane columns to the composite.
    pub tt_donor: String,
    /// Whether the composite image passed the static decode proof
    /// (trivially true for whole-bus winners, which carry their own).
    pub composite_verified: bool,
}

impl AutoOutcome {
    /// Reduction percentage of the selection.
    pub fn reduction_percent(&self) -> f64 {
        self.selection.reduction_percent()
    }
}

/// One kernel's complete arena result.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelArena {
    /// Kernel short name.
    pub kernel: &'static str,
    /// Parameterised instance name.
    pub instance: String,
    /// Instructions fetched.
    pub fetches: u64,
    /// Baseline bus transitions.
    pub baseline_transitions: u64,
    /// The shared storage budget the auto-selector ran under (the best
    /// TT schedule's own table bill).
    pub budget_bits: u64,
    /// Every scheme's row, Pareto flags filled in.
    pub rows: Vec<ArenaRow>,
    /// Index into `rows` of the best single scheme (most transitions
    /// eliminated; ties toward fewer storage bits).
    pub best_single: usize,
    /// The auto-selector's outcome.
    pub auto: AutoOutcome,
    /// Fast-vs-naive oracle comparisons performed (every stored word of
    /// every scheme, plus the bus-invert dynamic cross-check).
    pub oracle_checks: u64,
    /// Whether the TT rows scored through the [`Encoder`] trait were
    /// bit-identical to the direct pipeline evaluation.
    pub tt_trait_identical: bool,
}

impl KernelArena {
    /// The best single scheme's row.
    pub fn best_row(&self) -> &ArenaRow {
        &self.rows[self.best_single]
    }
}

/// Checks every in-crate fast/naive oracle pair over this kernel's words
/// and returns the number of comparisons made.
///
/// # Panics
///
/// Panics on the first disagreement — an arena built on a codec whose
/// fast path has drifted from its reference must not produce numbers.
fn verify_static_oracles(profile: &KernelProfile, lowweight: &LowWeightScheme) -> u64 {
    let mut checks = 0u64;
    for &word in &profile.program.text {
        let g = gray_word(word);
        assert_eq!(g, gray_word_naive(word), "gray encode oracle: {word:#010x}");
        assert_eq!(ungray_word(g), word, "gray round trip: {word:#010x}");
        assert_eq!(
            ungray_word_naive(g),
            word,
            "gray decode oracle: {word:#010x}"
        );
        let book = lowweight.book();
        let stored = book.encode_word(word);
        assert_eq!(
            stored,
            book.encode_word_naive(word),
            "lowweight encode oracle: {word:#010x}"
        );
        assert_eq!(
            book.decode_word(stored),
            word,
            "lowweight round trip: {word:#010x}"
        );
        assert_eq!(
            book.decode_word_naive(stored),
            word,
            "lowweight decode oracle: {word:#010x}"
        );
        checks += 6;
    }
    // Bus-invert: drive the static image through both step functions.
    let mut fast = BusInvertState::new();
    let mut naive = BusInvertNaive::new();
    for &word in &profile.program.text {
        let a = fast.drive(word);
        let b = naive.drive(word);
        assert_eq!(a, b, "bus-invert step oracle: {word:#010x}");
        assert_eq!(BusInvertState::restore(&a), word, "bus-invert restore");
        checks += 2;
    }
    checks
}

/// Cross-checks the bus-invert evaluation against the independent
/// [`imt_baselines::BusInvert`] monitor riding the same simulation.
///
/// # Panics
///
/// Panics if the two implementations disagree on either total.
fn cross_check_businvert(profile: &KernelProfile, eval: &SchemeEvaluation) -> u64 {
    let mut monitor = imt_baselines::BusInvert::new(32);
    let mut cpu = imt_sim::Cpu::new(&profile.program).expect("load failed");
    cpu.run_with_sink(profile.spec.max_steps, &mut monitor)
        .expect("bus-invert cross-check run failed");
    assert_eq!(
        eval.encoded_transitions,
        monitor.total_transitions(),
        "bus-invert totals diverge from imt-baselines"
    );
    assert_eq!(
        eval.baseline_transitions,
        monitor.raw_transitions(),
        "bus-invert baselines diverge from imt-baselines"
    );
    2
}

fn scheme_row(
    label: String,
    block_size: Option<usize>,
    scheme: &mut dyn Encoder,
    profile: &KernelProfile,
) -> ArenaRow {
    let (evaluation, path) = evaluate_scheme_auto(
        scheme,
        &profile.program,
        profile.spec.max_steps,
        Some(&profile.edges),
        EvalNeeds::transitions_only(),
    )
    .unwrap_or_else(|e| panic!("{}: {label}: evaluation failed: {e}", profile.spec.name));
    assert_eq!(
        evaluation.decode_mismatches, 0,
        "{}: {label}: decode mismatch",
        profile.spec.name
    );
    assert_eq!(
        evaluation.stdout, profile.spec.expected_output,
        "{}: {label}: behaviour changed",
        profile.spec.name
    );
    let cost = scheme.cost();
    ArenaRow {
        label,
        scheme: scheme.name(),
        block_size,
        storage_bits: cost.storage_bits,
        extra_lines: cost.extra_lines,
        restore_gates: cost.restore_gates,
        evaluation,
        path: match path {
            EvalPath::Replay => "replay",
            EvalPath::FullSim(_) => "full-sim",
        },
        pareto: false,
    }
}

/// Marks the rows on the (storage bits, encoded transitions) Pareto
/// front: a row is dominated if another row has no more storage and
/// strictly fewer transitions, or strictly less storage and no more
/// transitions.
fn mark_pareto(rows: &mut [ArenaRow]) {
    let points: Vec<(u64, u64)> = rows
        .iter()
        .map(|r| (r.storage_bits, r.evaluation.encoded_transitions))
        .collect();
    for (i, row) in rows.iter_mut().enumerate() {
        let (bits, transitions) = points[i];
        row.pareto = !points.iter().enumerate().any(|(j, &(b, t))| {
            j != i && ((b <= bits && t < transitions) || (b < bits && t <= transitions))
        });
    }
}

/// Runs the full arena for one kernel.
///
/// # Panics
///
/// Panics if any scheme misbehaves (decode mismatch, changed program
/// output, oracle drift, infeasible composite) — the arena refuses to
/// rank schemes it cannot verify.
pub fn arena_kernel(kernel: Kernel, scale: Scale) -> KernelArena {
    let spec = scale.spec(kernel);
    let profile = kernel_profile(&spec);
    let _cell = imt_obs::push_label_lazy(|| format!("{}/arena", profile.spec.name));

    // TT rows: one per block size, keeping the schedules for the
    // auto-selector's donor choice.
    let mut rows: Vec<ArenaRow> = Vec::new();
    let mut tt_schedules = Vec::new();
    let mut tt_trait_identical = true;
    for k in TT_BLOCK_SIZES {
        let config = EncoderConfig::default()
            .with_block_size(k)
            .expect("block sizes 4..=7 are valid");
        let encoded = encode_program(&profile.program, &profile.profile, &config)
            .unwrap_or_else(|e| panic!("{}: k={k}: encoding failed: {e}", profile.spec.name));
        let mut scheme = TtBbitScheme::new(encoded.clone());
        let row = scheme_row(format!("tt-k{k}"), Some(k), &mut scheme, &profile);
        // The trait wrapper must be a zero-cost detour: bit-identical to
        // the direct pipeline replay.
        let direct = evaluate_replay(&profile.program, &encoded, &profile.edges)
            .unwrap_or_else(|e| panic!("{}: k={k}: direct replay failed: {e}", profile.spec.name));
        tt_trait_identical &= row.evaluation.to_evaluation() == direct;
        rows.push(row);
        tt_schedules.push(encoded);
    }

    // The k-independent competitors.
    let mut gray = GrayScheme::new(&profile.program);
    rows.push(scheme_row("gray".to_string(), None, &mut gray, &profile));
    let entries = SchemeSpec::DEFAULT_LOW_WEIGHT_ENTRIES;
    let mut lowweight = LowWeightScheme::new(&profile.program, &profile.profile, entries);
    rows.push(scheme_row(
        format!("lowweight-{entries}"),
        None,
        &mut lowweight,
        &profile,
    ));
    let mut businvert = build_scheme(
        SchemeSpec::BusInvert,
        &profile.program,
        &profile.profile,
        &EncoderConfig::default(),
    )
    .expect("bus-invert build is total");
    let businvert_row = scheme_row("businvert".to_string(), None, businvert.as_mut(), &profile);
    assert_eq!(
        businvert_row.path, "full-sim",
        "{}: a cycle-state scheme must never be replay-scored",
        profile.spec.name
    );
    let mut oracle_checks = cross_check_businvert(&profile, &businvert_row.evaluation);
    rows.push(businvert_row);
    oracle_checks += verify_static_oracles(&profile, &lowweight);

    // Best single scheme: most transitions eliminated, ties toward the
    // cheaper table.
    let best_single = (0..rows.len())
        .min_by_key(|&i| (rows[i].evaluation.encoded_transitions, rows[i].storage_bits))
        .expect("the arena always has rows");

    // Auto-selection under the best TT schedule's own storage bill: the
    // TT donor is the block size that eliminated the most transitions.
    let donor_index = (0..tt_schedules.len())
        .min_by_key(|&i| rows[i].evaluation.encoded_transitions)
        .expect("TT rows exist");
    let donor = &tt_schedules[donor_index];
    let donor_row = &rows[donor_index];
    let budget_bits = HardwareBudget::of_schedule(donor).total_bits();
    let (tt_lane_bits, tt_fixed_bits) = tt_lane_split(donor);
    let costs = LaneCosts {
        baseline: donor_row.evaluation.per_lane_baseline.clone(),
        tt: donor_row.evaluation.per_lane_encoded.clone(),
        gray: rows
            .iter()
            .find(|r| r.scheme == "gray")
            .expect("gray row exists")
            .evaluation
            .per_lane_encoded
            .clone(),
        tt_lane_bits,
        tt_fixed_bits,
    };
    let candidates: Vec<WholeBusCandidate> = rows
        .iter()
        .map(|row| WholeBusCandidate {
            name: row.scheme,
            storage_bits: row.storage_bits,
            transitions: row.evaluation.encoded_transitions,
        })
        .collect();
    let selection = auto_select(&costs, &candidates, budget_bits);
    assert!(
        selection.bits_used <= budget_bits,
        "{}: auto-selection exceeded its budget",
        profile.spec.name
    );

    let composite_verified = match selection.whole_bus {
        Some(_) => true, // the winner's own row already carried its proof
        None => {
            let composite = composite_image(
                &profile.program.text,
                &donor.text,
                gray.stored_image(),
                &selection.lanes,
            );
            verify_composite_decode(&profile.program, donor, &composite, &selection.lanes)
                .unwrap_or_else(|e| panic!("{}: composite decode failed: {e}", profile.spec.name));
            // The knapsack's prediction must match a direct measurement
            // of the assembled image.
            let (measured, _) = imt_core::eval::weighted_transitions(&composite, &profile.edges);
            assert_eq!(
                measured, selection.transitions,
                "{}: composite prediction drifted",
                profile.spec.name
            );
            true
        }
    };
    let lane_map: String = selection
        .lanes
        .iter()
        .rev()
        .map(|choice| match choice {
            LaneChoice::Baseline => 'B',
            LaneChoice::Tt => 'T',
            LaneChoice::Gray => 'G',
        })
        .collect();
    let auto = AutoOutcome {
        winner: selection
            .whole_bus
            .map(str::to_string)
            .unwrap_or_else(|| "composite".to_string()),
        lane_map,
        tt_donor: donor_row.label.clone(),
        composite_verified,
        selection,
    };

    mark_pareto(&mut rows);
    KernelArena {
        kernel: kernel.name(),
        instance: profile.spec.name.clone(),
        fetches: profile.edges.fetches(),
        baseline_transitions: rows[0].evaluation.baseline_transitions,
        budget_bits,
        rows,
        best_single,
        auto,
        oracle_checks,
        tt_trait_identical,
    }
}

/// Runs the arena for every kernel, fanned out deterministically.
pub fn arena_grid(scale: Scale) -> Vec<KernelArena> {
    par_map_coarse(&Kernel::ALL, 1, |_, &kernel| arena_kernel(kernel, scale))
}

/// Renders the grid as the `results/BENCH_arena.json` document.
pub fn arena_doc(grid: &[KernelArena], scale: Scale) -> Json {
    let kernels = grid
        .iter()
        .map(|arena| {
            let rows = arena
                .rows
                .iter()
                .map(|row| {
                    let mut fields = vec![
                        ("label", Json::str(row.label.clone())),
                        ("scheme", Json::str(row.scheme)),
                        ("storage_bits", Json::U64(row.storage_bits)),
                        ("extra_lines", Json::U64(u64::from(row.extra_lines))),
                        ("restore_gates", Json::U64(row.restore_gates)),
                        (
                            "encoded_transitions",
                            Json::U64(row.evaluation.encoded_transitions),
                        ),
                        (
                            "extra_line_transitions",
                            Json::U64(row.evaluation.extra_line_transitions),
                        ),
                        ("reduction_percent", Json::F64(row.reduction_percent())),
                        ("path", Json::str(row.path)),
                        ("pareto", Json::Bool(row.pareto)),
                    ];
                    if let Some(k) = row.block_size {
                        fields.insert(2, ("block_size", Json::U64(k as u64)));
                    }
                    Json::obj(fields)
                })
                .collect();
            Json::obj(vec![
                ("kernel", Json::str(arena.kernel)),
                ("instance", Json::str(arena.instance.clone())),
                ("fetches", Json::U64(arena.fetches)),
                (
                    "baseline_transitions",
                    Json::U64(arena.baseline_transitions),
                ),
                ("budget_bits", Json::U64(arena.budget_bits)),
                ("rows", Json::Arr(rows)),
                (
                    "best_single",
                    Json::obj(vec![
                        ("label", Json::str(arena.best_row().label.clone())),
                        (
                            "reduction_percent",
                            Json::F64(arena.best_row().reduction_percent()),
                        ),
                    ]),
                ),
                (
                    "auto",
                    Json::obj(vec![
                        ("winner", Json::str(arena.auto.winner.clone())),
                        ("tt_donor", Json::str(arena.auto.tt_donor.clone())),
                        ("lane_map", Json::str(arena.auto.lane_map.clone())),
                        ("bits_used", Json::U64(arena.auto.selection.bits_used)),
                        (
                            "encoded_transitions",
                            Json::U64(arena.auto.selection.transitions),
                        ),
                        (
                            "reduction_percent",
                            Json::F64(arena.auto.reduction_percent()),
                        ),
                        (
                            "composite_verified",
                            Json::Bool(arena.auto.composite_verified),
                        ),
                    ]),
                ),
                ("oracle_checks", Json::U64(arena.oracle_checks)),
                ("tt_trait_identical", Json::Bool(arena.tt_trait_identical)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::str("arena")),
        ("scale", Json::str(scale.name())),
        (
            "threads",
            Json::U64(imt_bitcode::par::thread_count() as u64),
        ),
        (
            "simd_path",
            Json::str(imt_bitcode::simd::active_path().name()),
        ),
        ("budget_policy", Json::str("best-tt-schedule-bits")),
        ("kernels", Json::Arr(kernels)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_kernel_ranks_and_verifies_at_test_scale() {
        let arena = arena_kernel(Kernel::Tri, Scale::Test);
        assert_eq!(arena.rows.len(), 7); // 4 TT + gray + lowweight + businvert
        assert!(arena.tt_trait_identical);
        assert!(arena.auto.composite_verified);
        assert!(arena.oracle_checks > 0);
        // Auto must be at least as good as every single scheme.
        let best = arena.best_row().evaluation.encoded_transitions;
        assert!(arena.auto.selection.transitions <= best);
        assert!(arena.auto.selection.bits_used <= arena.budget_bits);
        // The bus-invert row must have come through full simulation.
        let bi = arena
            .rows
            .iter()
            .find(|r| r.scheme == "businvert")
            .expect("businvert row");
        assert_eq!(bi.path, "full-sim");
        // At least one row is on the Pareto front by construction.
        assert!(arena.rows.iter().any(|r| r.pareto));
        // Gray costs zero bits, so nothing can dominate it on storage:
        // it is dominated only by a zero-bit row with fewer transitions.
        let gray = arena
            .rows
            .iter()
            .find(|r| r.scheme == "gray")
            .expect("gray row");
        if !gray.pareto {
            assert!(arena.rows.iter().any(|r| {
                r.storage_bits == 0
                    && r.evaluation.encoded_transitions < gray.evaluation.encoded_transitions
            }));
        }
    }

    #[test]
    fn arena_doc_stamps_scale_and_kernels() {
        let arena = vec![arena_kernel(Kernel::Ej, Scale::Test)];
        let doc = arena_doc(&arena, Scale::Test);
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("test"));
        let kernels = doc
            .get("kernels")
            .and_then(Json::as_array)
            .expect("kernels array");
        assert_eq!(kernels.len(), 1);
        let auto = kernels[0].get("auto").expect("auto object");
        assert!(auto
            .get("reduction_percent")
            .and_then(Json::as_f64)
            .is_some());
        assert_eq!(
            kernels[0].get("tt_trait_identical").and_then(Json::as_bool),
            Some(true)
        );
    }
}
