//! Ablation **A2**: the two §6 overlap-history semantics and the size of
//! the transformation set (canonical 8 vs all 16, vs the exact minimal 6).
//!
//! The paper asserts the 8-subset loses nothing; this ablation measures
//! that end to end on the kernels, and also shows the two defensible
//! readings of the §6 overlap wording perform identically in practice.

use imt_bench::runner::{run_kernel_point, Scale};
use imt_bench::table::Table;
use imt_bitcode::block::OverlapHistory;
use imt_bitcode::tables::minimal_optimal_subset;
use imt_bitcode::TransformSet;
use imt_core::EncoderConfig;
use imt_kernels::Kernel;

fn main() {
    experiment();
    imt_bench::finish_run("exp_ablation_overlap");
}

fn experiment() {
    let scale = Scale::from_args();
    println!("A2 — overlap semantics and transformation-set size, k = 5 ({scale:?} scale)\n");
    let minimal_six = minimal_optimal_subset(7).set;
    let variants: [(&str, TransformSet, OverlapHistory); 4] = [
        (
            "8, stored",
            TransformSet::CANONICAL_EIGHT,
            OverlapHistory::Stored,
        ),
        (
            "8, decoded",
            TransformSet::CANONICAL_EIGHT,
            OverlapHistory::Decoded,
        ),
        (
            "16, stored",
            TransformSet::ALL_SIXTEEN,
            OverlapHistory::Stored,
        ),
        ("6, stored", minimal_six, OverlapHistory::Stored),
    ];
    let mut header = vec!["kernel".to_string()];
    header.extend(variants.iter().map(|(name, _, _)| name.to_string()));
    let mut table = Table::new(header);
    for kernel in Kernel::ALL {
        let mut row = vec![kernel.name().to_string()];
        for (_, transforms, overlap) in variants {
            let config = EncoderConfig::default()
                .with_transforms(transforms)
                .expect("every variant set includes the identity")
                .with_overlap(overlap);
            let point = run_kernel_point(kernel, scale, &config);
            row.push(format!("{:.2}%", point.reduction_percent()));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!("\nreading: 16 functions buy nothing over the canonical 8 (the paper's");
    println!("§5.2 claim, measured end to end), the exact minimal 6 also matches,");
    println!("and the two overlap-history readings of §6 are interchangeable.");
}
