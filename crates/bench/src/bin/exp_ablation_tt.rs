//! Ablation **A1**: sensitivity to Transformation Table capacity.
//!
//! The paper fixes a 16-entry TT and argues (§7.2) that `16 × k`
//! instructions comfortably cover embedded loop bodies. This sweep shows
//! where that sizing argument bites: small tables demote blocks of the
//! hot loops to pass-through and reductions fall off.

use imt_bench::runner::{run_grid, Scale};
use imt_bench::table::Table;
use imt_core::EncoderConfig;
use imt_kernels::Kernel;

fn main() {
    experiment();
    imt_bench::finish_run("exp_ablation_tt");
}

fn experiment() {
    let scale = Scale::from_args();
    let capacities = [2usize, 4, 8, 16, 32];
    println!("A1 — TT capacity sweep at block size 5 ({scale:?} scale)\n");
    let mut header = vec!["kernel".to_string()];
    header.extend(capacities.iter().map(|c| format!("TT={c}")));
    let mut reduction_table = Table::new(header.clone());
    let mut entries_table = Table::new(header);
    // The 30 sweep cells fan out in parallel; run_grid's index-ordered
    // merge keeps the rendered tables identical to the serial sweep.
    let cells: Vec<(Kernel, EncoderConfig)> = Kernel::ALL
        .iter()
        .flat_map(|&kernel| {
            capacities
                .iter()
                .map(move |&capacity| (kernel, EncoderConfig::default().with_tt_capacity(capacity)))
        })
        .collect();
    let points = run_grid(&cells, scale);
    for (kernel, row_points) in Kernel::ALL.iter().zip(points.chunks(capacities.len())) {
        let mut reduction_row = vec![kernel.name().to_string()];
        let mut entries_row = vec![kernel.name().to_string()];
        for (point, &capacity) in row_points.iter().zip(&capacities) {
            reduction_row.push(format!("{:.1}%", point.reduction_percent()));
            entries_row.push(format!("{}/{}", point.encoded.report.tt_used, capacity));
        }
        reduction_table.row(reduction_row);
        entries_table.row(entries_row);
    }
    println!("reduction:");
    print!("{}", reduction_table.render());
    println!("\nTT entries used / capacity:");
    print!("{}", entries_table.render());
    println!("\nreading: reductions saturate once the hot loop fits; the paper's");
    println!("16 entries suffice for these kernels at k = 5.");
}
