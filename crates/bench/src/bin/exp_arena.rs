//! Extension experiment **E-A**: the encoder arena.
//!
//! The paper's TT/BBIT transformation is one point in the low-power
//! instruction-bus design space. This experiment lines the roster of
//! `imt_core::scheme` encoders up against each other on the paper's six
//! kernels — TT/BBIT at block sizes 4–7, Gray sequencing, the
//! low-weight codebook, and bus-invert — prices each in storage bits,
//! marks the reduction-vs-hardware Pareto front, and runs the per-lane
//! auto-selector under the best TT schedule's own storage bill.
//!
//! Everything is scored defensively, and the checks are asserted
//! in-binary before the artifact is written:
//!
//! * every fast codec path is bit-identical to its in-crate naive
//!   oracle on every stored word (plus an independent cross-check of
//!   bus-invert against `imt_baselines::BusInvert`);
//! * TT/BBIT evaluated through the `Encoder` trait is bit-identical to
//!   the direct pipeline replay — the refactor is a zero-cost detour;
//! * bus-invert (per-cycle bus state) is always routed to full
//!   simulation — the stateless replay path refuses it;
//! * the auto-selection never exceeds its budget, its composite image
//!   passes the static decode proof, and it is at least as good as the
//!   best single scheme on every kernel.

use imt_bench::arena::{arena_doc, arena_grid, KernelArena};
use imt_bench::runner::Scale;

fn main() {
    let _guard = imt_bench::begin_run("exp_arena");
    experiment();
    imt_bench::finish_run("exp_arena");
}

fn experiment() {
    let scale = Scale::from_args();
    println!("E-A — encoder arena: schemes x kernels ({scale:?} scale)\n");
    let grid = arena_grid(scale);

    for arena in &grid {
        print_kernel(arena);
    }

    // The acceptance gates, asserted before anything is written.
    let kernels = grid.len();
    let oracle_checks: u64 = grid.iter().map(|a| a.oracle_checks).sum();
    assert!(grid.iter().all(|a| a.oracle_checks > 0));
    println!(
        "oracle bit-identity: ok ({oracle_checks} fast-vs-naive checks across {kernels} kernels)"
    );

    assert!(
        grid.iter().all(|a| a.tt_trait_identical),
        "TT under the Encoder trait drifted from the direct pipeline replay"
    );
    println!(
        "tt-under-trait bit-identical to the pipeline evaluators: ok ({kernels}/{kernels} kernels)"
    );

    let businvert_full_sim = grid
        .iter()
        .filter(|a| {
            a.rows
                .iter()
                .any(|r| r.scheme == "businvert" && r.path == "full-sim")
        })
        .count();
    assert_eq!(
        businvert_full_sim, kernels,
        "a cycle-state scheme was scored by the stateless replay path"
    );
    println!("cycle-state replay refusal: ok (businvert full-sim routed on {businvert_full_sim}/{kernels} kernels)");

    assert!(
        grid.iter().all(|a| a.auto.composite_verified),
        "an auto-selected composite failed its static decode proof"
    );
    assert!(
        grid.iter()
            .all(|a| a.auto.selection.bits_used <= a.budget_bits),
        "an auto-selection exceeded its hardware budget"
    );
    assert!(
        grid.iter()
            .all(|a| a.auto.selection.transitions <= a.best_row().evaluation.encoded_transitions),
        "auto-select lost to a single scheme"
    );
    println!("auto-select >= best single scheme on all {kernels} kernels: ok");

    let doc = arena_doc(&grid, scale);
    let path = "results/BENCH_arena.json";
    match std::fs::write(path, format!("{}\n", doc.render_pretty())) {
        Ok(()) => println!("\nwrote {path}"),
        // Running from a different working directory is not an error worth
        // failing the experiment over; the numbers are on stdout too.
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

fn print_kernel(arena: &KernelArena) {
    println!(
        "{} — {} fetches, {} baseline transitions, budget {} bits",
        arena.instance, arena.fetches, arena.baseline_transitions, arena.budget_bits
    );
    println!("  scheme          bits  +lines   gates      encoded  reduction  path      front");
    for row in &arena.rows {
        println!(
            "  {:<13} {:>6}  {:>6}  {:>6}  {:>11}  {:>8.2}%  {:<8}  {}",
            row.label,
            row.storage_bits,
            row.extra_lines,
            row.restore_gates,
            row.evaluation.encoded_transitions,
            row.reduction_percent(),
            row.path,
            if row.pareto { "*" } else { "" }
        );
    }
    let auto = &arena.auto;
    println!(
        "  best single: {} ({:.2}%)",
        arena.best_row().label,
        arena.best_row().reduction_percent()
    );
    println!(
        "  auto-select: {} ({:.2}%, {} bits, donor {}, lanes {})\n",
        auto.winner,
        auto.reduction_percent(),
        auto.selection.bits_used,
        auto.tt_donor,
        auto.lane_map
    );
}
