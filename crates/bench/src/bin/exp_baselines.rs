//! Ablation **A3**: the application-specific encoding against the general
//! prior techniques of the paper's §2 — bus-invert on the same data bus,
//! and T0 / Gray coding on the address bus (different bus, shown for the
//! context the paper positions itself in).

use imt_baselines::{BusInvert, DictionaryBus, GrayAddress, T0};
use imt_bench::runner::{profiled_run, run_kernel_point, Scale};
use imt_bench::table::Table;
use imt_bitcode::par::par_map_coarse;
use imt_core::EncoderConfig;
use imt_kernels::Kernel;
use imt_sim::cpu::Tee;
use imt_sim::Cpu;

/// Runs the IMT pipeline at k = 4 and k = 5 plus one baseline-instrumented
/// replay for a kernel, returning its finished table row.
fn kernel_row(kernel: Kernel, scale: Scale) -> Vec<String> {
    let k4 = run_kernel_point(
        kernel,
        scale,
        &EncoderConfig::default().with_block_size(4).expect("valid"),
    );
    let k5 = run_kernel_point(kernel, scale, &EncoderConfig::default());

    // Replay once more with the streaming baselines attached.
    let spec = scale.spec(kernel);
    let run = profiled_run(&spec);
    let mut cpu = Cpu::new(&run.program).expect("load failed");
    let mut businv = BusInvert::new(32);
    let mut dict = DictionaryBus::from_profile(&run.program.text, &run.profile, 16);
    let mut t0 = T0::new(4);
    let mut gray = GrayAddress::new();
    let mut sinks = Tee(&mut businv, Tee(&mut dict, Tee(&mut t0, &mut gray)));
    cpu.run_with_sink(spec.max_steps, &mut sinks)
        .expect("replay failed");

    let gray_reduction = if gray.raw_transitions() == 0 {
        0.0
    } else {
        (gray.raw_transitions() as f64 - gray.total_transitions() as f64)
            / gray.raw_transitions() as f64
            * 100.0
    };
    vec![
        kernel.name().to_string(),
        format!("{:.1}%", k4.reduction_percent()),
        format!("{:.1}%", k5.reduction_percent()),
        format!("{:.1}%", businv.reduction_percent()),
        format!("{:.1}%", dict.reduction_percent()),
        format!("{:.1}%", t0.reduction_percent()),
        format!("{gray_reduction:.1}%"),
    ]
}

fn main() {
    experiment();
    imt_bench::finish_run("exp_baselines");
}

fn experiment() {
    let scale = Scale::from_args();
    println!("A3 — comparison with general-purpose bus encodings ({scale:?} scale)\n");
    let mut table = Table::new(
        [
            "kernel",
            "IMT k=4 (data)",
            "IMT k=5 (data)",
            "bus-invert (data)",
            "dict-16 (data)",
            "T0 (addr)",
            "gray (addr)",
        ]
        .map(String::from)
        .to_vec(),
    );
    // Six independent kernel rows, rendered in kernel order regardless of
    // which worker finishes first.
    for row in par_map_coarse(&Kernel::ALL, 1, |_, &kernel| kernel_row(kernel, scale)) {
        table.row(row);
    }
    print!("{}", table.render());
    println!("\nreading: on the instruction data bus the application-specific");
    println!("encoding beats bus-invert by a wide margin (the paper's §2 point");
    println!("that bus-invert's generality limits it on structured streams).");
    println!("The 16-entry dictionary encoder — the lookup-table approach family");
    println!("the paper's §3 argues against — can reach similar raw numbers on");
    println!("very repetitive loops, but needs a word-wide CAM lookup in the fetch");
    println!("critical path where IMT needs one gate and 3 control bits per line.");
    println!("T0/Gray address-bus figures are for context only — different bus.");
}
