//! Extension experiment **E-X**: the whole instruction-fetch interconnect.
//!
//! The paper optimises the instruction **data** bus and cites address-bus
//! encodings (T0, \[2\]) as complementary related work. This experiment
//! composes them — IMT on the data lines, T0 on the address lines — and
//! reports total interconnect transitions and switching energy for the
//! paper's motivating off-chip case, plus the partitioned bus-invert
//! variant as the strongest general-purpose data-bus contender.

use imt_baselines::{BusInvert, PartitionedBusInvert, T0};
use imt_bench::runner::{profiled_run, run_kernel_point, Scale};
use imt_bench::table::Table;
use imt_core::EncoderConfig;
use imt_kernels::Kernel;
use imt_sim::bus::EnergyModel;
use imt_sim::cpu::Tee;
use imt_sim::Cpu;

fn main() {
    experiment();
    imt_bench::finish_run("exp_combined");
}

fn experiment() {
    let scale = Scale::from_args();
    println!("E-X — combined data + address interconnect ({scale:?} scale, k = 4)\n");
    let model = EnergyModel::OFF_CHIP;
    let mut table = Table::new(
        [
            "kernel",
            "raw total (M)",
            "IMT+T0 total (M)",
            "combined red.",
            "businv-4 data red.",
            "energy saved (uJ)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for kernel in Kernel::ALL {
        let config = EncoderConfig::default().with_block_size(4).expect("valid");
        let point = run_kernel_point(kernel, scale, &config);

        // Replay once more with the address-side and contender monitors.
        let spec = scale.spec(kernel);
        let run = profiled_run(&spec);
        let mut cpu = Cpu::new(&run.program).expect("load");
        let mut t0 = T0::new(4);
        let mut businv = BusInvert::new(32);
        let mut pbusinv = PartitionedBusInvert::new(32, 4).expect("valid shape");
        let mut sinks = Tee(&mut t0, Tee(&mut businv, &mut pbusinv));
        cpu.run_with_sink(spec.max_steps, &mut sinks)
            .expect("replay");

        let raw_total = point.evaluation.baseline_transitions + t0.raw_transitions();
        let coded_total = point.evaluation.encoded_transitions + t0.total_transitions();
        let combined_reduction = (raw_total - coded_total) as f64 / raw_total as f64 * 100.0;
        let energy_saved = model.energy_joules(raw_total) - model.energy_joules(coded_total);
        table.row(vec![
            kernel.name().to_string(),
            format!("{:.2}", raw_total as f64 / 1e6),
            format!("{:.2}", coded_total as f64 / 1e6),
            format!("{combined_reduction:.1}%"),
            format!("{:.1}%", pbusinv.reduction_percent()),
            format!("{:.1}", energy_saved * 1e6),
        ]);
    }
    print!("{}", table.render());
    println!("\nreading: composing IMT (data lines) with T0 (address lines) covers");
    println!("the whole fetch interconnect; the address side is nearly free under");
    println!("T0 for loop code, so the combined reduction approaches the weighted");
    println!("mix of the two. Even 4-way partitioned bus-invert — the strongest");
    println!("application-blind data-bus coder here — stays far behind the");
    println!("application-specific encoding, as the paper's §2 argues.");
}
