//! Extension experiment **E-K**: generality beyond the paper's six
//! benchmarks.
//!
//! Three kernels the paper does not evaluate — a FIR filter (the
//! archetypal DSP loop), an 8×8 2-D DCT (embedded media), and a bitwise
//! CRC-32 (pure-integer, branchy) — through the identical pipeline, at
//! block sizes 4–7. Two outcomes worth reading: crc32 shows the technique
//! is indifferent to FP-vs-integer code, and fir/dct expose a block-size
//! *phase* effect (their fixed 8-instruction loop bodies partition very
//! differently at each k) that per-loop tuning would exploit.

use imt_bench::table::Table;
use imt_core::{encode_program, eval::evaluate, EncoderConfig};
use imt_kernels::extra::ExtraKernel;
use imt_sim::Cpu;

fn main() {
    experiment();
    imt_bench::finish_run("exp_extra");
}

fn experiment() {
    let test_scale = std::env::args().any(|a| a == "--test-scale");
    println!(
        "E-K — extra kernels through the same pipeline ({} scale)\n",
        if test_scale { "Test" } else { "Paper" }
    );
    let mut header = vec!["kernel".to_string(), "#TR (M)".to_string()];
    header.extend((4..=7).map(|k| format!("red. k={k}")));
    let mut table = Table::new(header);
    for kernel in ExtraKernel::ALL {
        let spec = if test_scale {
            kernel.test_spec()
        } else {
            kernel.paper_spec()
        };
        let program = spec.assemble();
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.run(spec.max_steps).expect("profile run");
        assert_eq!(
            cpu.stdout(),
            spec.expected_output,
            "{}: golden mismatch",
            spec.name
        );
        let profile = cpu.profile().to_vec();
        let mut row = vec![kernel.name().to_string()];
        let mut first = true;
        for k in 4..=7usize {
            let config = EncoderConfig::default().with_block_size(k).expect("valid");
            let encoded = encode_program(&program, &profile, &config).expect("encode");
            let eval = evaluate(&program, &encoded, spec.max_steps).expect("evaluate");
            assert_eq!(eval.decode_mismatches, 0);
            if first {
                row.push(format!("{:.2}", eval.baseline_transitions as f64 / 1e6));
                first = false;
            }
            row.push(format!("{:.1}%", eval.reduction_percent()));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!("\nreading: all three land in the paper's tens-of-percent band.");
    println!("The pure-integer crc32 is remarkably flat across block sizes — the");
    println!("technique does not depend on FP code. fir and dct swing strongly");
    println!("with k (k=6 best, k=5/7 weak): their 8-instruction inner-loop");
    println!("bodies partition very differently at each block size, a phase");
    println!("effect the paper's averaged Figure 6 smooths over but which a");
    println!("deployment should tune per loop (see the design_space example).");
}
