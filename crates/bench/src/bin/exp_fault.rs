//! Fault experiment **E-F**: upset campaigns over the TT/BBIT decode path.
//!
//! The paper's mechanism concentrates all decode state in two tiny
//! fetch-stage SRAM arrays; this experiment asks what a single-event
//! upset there costs, and what each protection level buys back. For every
//! kernel × block size 4–7 × protection (none / parity / SEC Hamming)
//! cell it runs a seeded campaign of single-bit table upsets over a
//! recorded fetch window and classifies every trial as benign, corrected,
//! degraded (detected, fell back to original words, zero wrong
//! instructions) or **silent** (wrong words reached the core).
//!
//! A second, smaller sweep injects image (`text`) and transient `bus`
//! upsets on one kernel to show the boundary of what table check codes
//! can cover.
//!
//! Writes `results/exp_fault.txt` and the machine-readable
//! `results/BENCH_fault.json` (SDC rate, detection coverage, retained
//! transition reduction per cell). Deterministic: campaign seeds are
//! fixed per cell and replay never consults the clock.

use imt_bench::runner::{profiled_run, Scale};
use imt_bench::table::Table;
use imt_core::{encode_program, EncoderConfig, Protection};
use imt_fault::campaign::{run_campaign, CampaignSpec, CampaignSummary};
use imt_fault::plan::TargetClass;
use imt_fault::trace::FetchTrace;
use imt_kernels::Kernel;
use imt_obs::json::Json;

/// Single-bit trials per (kernel, k, protection) cell.
fn trials(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 32,
        Scale::Test => 12,
    }
}

/// Replay window: fetches of the recorded stream each trial replays.
fn window(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 60_000,
        Scale::Test => 20_000,
    }
}

/// Fixed, documented per-cell seed: kernel index, block size and
/// protection pick different streams, reruns reproduce bit-identically.
fn cell_seed(kernel_index: usize, k: usize, protection: Protection, targets: TargetClass) -> u64 {
    let p = match protection {
        Protection::None => 0u64,
        Protection::Parity => 1,
        Protection::Sec => 2,
    };
    let t = match targets {
        TargetClass::Tables => 0u64,
        TargetClass::Text => 1,
        TargetClass::Bus => 2,
    };
    0x1317_2003u64
        .wrapping_mul(kernel_index as u64 + 1)
        .wrapping_add((k as u64) << 24)
        .wrapping_add(p << 16)
        .wrapping_add(t << 8)
}

struct Cell {
    kernel: &'static str,
    block_size: usize,
    protection: Protection,
    targets: TargetClass,
    seed: u64,
    summary: CampaignSummary,
}

fn campaign_row(table: &mut Table, cell: &Cell) {
    let s = &cell.summary;
    table.row(vec![
        cell.kernel.to_string(),
        cell.block_size.to_string(),
        cell.protection.to_string(),
        s.trials.to_string(),
        s.benign.to_string(),
        s.corrected.to_string(),
        s.degraded.to_string(),
        s.silent.to_string(),
        format!("{:.3}", s.sdc_rate()),
        format!("{:.1}", s.coverage() * 100.0),
        format!("{:.2}", s.clean_reduction_percent),
        format!("{:.2}", s.retained_reduction_percent),
    ]);
}

fn cell_json(cell: &Cell) -> Json {
    let s = &cell.summary;
    let round = |v: f64| Json::F64((v * 1000.0).round() / 1000.0);
    Json::obj(vec![
        ("kernel", Json::str(cell.kernel)),
        ("block_size", Json::U64(cell.block_size as u64)),
        ("protection", Json::str(cell.protection.name())),
        ("targets", Json::str(cell.targets.name())),
        ("seed", Json::U64(cell.seed)),
        ("trials", Json::U64(s.trials as u64)),
        ("benign", Json::U64(s.benign as u64)),
        ("corrected", Json::U64(s.corrected as u64)),
        ("degraded", Json::U64(s.degraded as u64)),
        ("silent", Json::U64(s.silent as u64)),
        ("injected", Json::U64(s.injected)),
        ("sdc_rate", round(s.sdc_rate())),
        ("coverage", round(s.coverage())),
        ("clean_reduction_percent", round(s.clean_reduction_percent)),
        (
            "retained_reduction_percent",
            round(s.retained_reduction_percent),
        ),
    ])
}

fn main() {
    let _guard = imt_bench::begin_run("exp_fault");
    let scale = Scale::from_args();
    let trials = trials(scale);
    let window = window(scale);
    println!(
        "E-F — TT/BBIT upset campaigns, {trials} single-bit trials per cell, \
         {window}-fetch replay window ({scale:?} scale)\n"
    );

    const BLOCK_SIZES: std::ops::RangeInclusive<usize> = 4..=7;
    let mut cells: Vec<Cell> = Vec::new();
    let mut aux_cells: Vec<Cell> = Vec::new();

    for (kernel_index, &kernel) in Kernel::ALL.iter().enumerate() {
        let spec = scale.spec(kernel);
        let run = profiled_run(&spec);
        for k in BLOCK_SIZES {
            let config = EncoderConfig::default()
                .with_block_size(k)
                .expect("block sizes 4..=7 are valid");
            let _cell = imt_obs::push_label(format!("{}/k{k}", spec.name));
            let encoded = encode_program(&run.program, &run.profile, &config)
                .unwrap_or_else(|e| panic!("{}: encoding failed: {e}", spec.name));
            let trace = FetchTrace::record(&run.program, &encoded, spec.max_steps, window)
                .unwrap_or_else(|e| panic!("{}: trace recording failed: {e}", spec.name));
            for protection in Protection::ALL {
                let seed = cell_seed(kernel_index, k, protection, TargetClass::Tables);
                let summary = run_campaign(
                    &trace,
                    &encoded,
                    &CampaignSpec {
                        trials,
                        seed,
                        protection,
                        targets: TargetClass::Tables,
                        bits_per_trial: 1,
                    },
                )
                .unwrap_or_else(|e| panic!("{}: k={k} {protection}: {e}", spec.name));
                cells.push(Cell {
                    kernel: kernel.name(),
                    block_size: k,
                    protection,
                    targets: TargetClass::Tables,
                    seed,
                    summary,
                });
            }
            // The boundary sweep: image and bus upsets on the paper's
            // operating point only — table codes cannot cover these.
            if kernel == Kernel::Mmul && k == 5 {
                for targets in [TargetClass::Text, TargetClass::Bus] {
                    for protection in [Protection::None, Protection::Sec] {
                        let seed = cell_seed(kernel_index, k, protection, targets);
                        let summary = run_campaign(
                            &trace,
                            &encoded,
                            &CampaignSpec {
                                trials,
                                seed,
                                protection,
                                targets,
                                bits_per_trial: 1,
                            },
                        )
                        .unwrap_or_else(|e| panic!("{}: {targets}: {e}", spec.name));
                        aux_cells.push(Cell {
                            kernel: kernel.name(),
                            block_size: k,
                            protection,
                            targets,
                            seed,
                            summary,
                        });
                    }
                }
            }
        }
    }

    let header: Vec<String> = [
        "kernel",
        "k",
        "protection",
        "trials",
        "benign",
        "corrected",
        "degraded",
        "silent",
        "SDC rate",
        "coverage%",
        "clean red%",
        "retained red%",
    ]
    .map(String::from)
    .to_vec();
    let mut table = Table::new(header.clone());
    for cell in &cells {
        campaign_row(&mut table, cell);
    }
    print!("{}", table.render());

    println!("\nimage & bus upsets (mmul, k=5) — outside the table codes' reach:");
    let mut aux = Table::new(
        [
            "targets",
            "protection",
            "trials",
            "benign",
            "corrected",
            "degraded",
            "silent",
            "SDC rate",
        ]
        .map(String::from)
        .to_vec(),
    );
    for cell in &aux_cells {
        let s = &cell.summary;
        aux.row(vec![
            cell.targets.to_string(),
            cell.protection.to_string(),
            s.trials.to_string(),
            s.benign.to_string(),
            s.corrected.to_string(),
            s.degraded.to_string(),
            s.silent.to_string(),
            format!("{:.3}", s.sdc_rate()),
        ]);
    }
    print!("{}", aux.render());

    // The acceptance gates, checked here so a regression fails the
    // experiment loudly instead of publishing bad numbers.
    let none_silent: usize = cells
        .iter()
        .filter(|c| c.protection == Protection::None)
        .map(|c| c.summary.silent)
        .sum();
    let protected_silent: usize = cells
        .iter()
        .filter(|c| c.protection != Protection::None)
        .map(|c| c.summary.silent)
        .sum();
    let worst_parity_coverage = cells
        .iter()
        .filter(|c| c.protection == Protection::Parity)
        .map(|c| c.summary.coverage())
        .fold(1.0f64, f64::min);
    assert!(
        none_silent > 0,
        "unprotected table upsets should produce silent corruption somewhere"
    );
    assert_eq!(
        protected_silent, 0,
        "parity/SEC must stop every single-bit table upset"
    );
    assert!(worst_parity_coverage >= 0.99);
    println!("\nchecks: unprotected silent trials = {none_silent} (nonzero as expected);");
    println!(
        "        parity/SEC silent trials = {protected_silent}; worst parity coverage = {:.1}%",
        worst_parity_coverage * 100.0
    );
    println!("\nreading: with no check code a table upset that lands in a live");
    println!("entry silently corrupts decoded instructions (SDC rate column).");
    println!("Parity detects every single-bit upset and degrades the affected");
    println!("block to original words — zero wrong instructions, at the cost of");
    println!("that block's share of the reduction (retained red% vs clean red%).");
    println!("SEC corrects the upset in place and keeps the full reduction; the");
    println!("check bits' storage cost is charged by the HardwareBudget. Image");
    println!("and bus upsets sit outside the table codes' reach by construction.");

    let mut manifest = imt_obs::manifest::Manifest::new("exp_fault");
    manifest.set(
        "settings",
        Json::obj(vec![
            ("trials", Json::U64(trials as u64)),
            ("window", Json::U64(window as u64)),
            ("bits_per_trial", Json::U64(1)),
        ]),
    );
    manifest.capture();
    let doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        ("trials", Json::U64(trials as u64)),
        ("window", Json::U64(window as u64)),
        ("cells", Json::Arr(cells.iter().map(cell_json).collect())),
        (
            "aux_cells",
            Json::Arr(aux_cells.iter().map(cell_json).collect()),
        ),
        ("obs", manifest.to_json()),
    ]);
    let path = "results/BENCH_fault.json";
    match std::fs::write(path, format!("{}\n", doc.render_pretty())) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
    imt_bench::finish_run("exp_fault");
}
