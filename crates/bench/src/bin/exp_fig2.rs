//! Regenerates the paper's **Figure 2**: the optimal power-efficient
//! transformations for all block words of size 3.

use imt_bitcode::tables::CodeTable;
use imt_bitcode::TransformSet;

fn main() {
    experiment();
    imt_bench::finish_run("exp_fig2");
}

fn experiment() {
    let table = CodeTable::build(3, TransformSet::CANONICAL_EIGHT).expect("block size 3 is valid");
    println!("Figure 2 — power efficient transformations for three bit blocks");
    println!("(words printed latest-bit-first, as in the paper)\n");
    print!("{}", table.render());
    println!(
        "\nTTN = {}   RTN = {}   improvement = {:.1}%",
        table.total_transitions(),
        table.reduced_transitions(),
        table.improvement_percent()
    );
    println!("paper:   TTN = 8   RTN = 2   improvement = 75.0%");
}
