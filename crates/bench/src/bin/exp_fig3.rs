//! Regenerates the paper's **Figure 3**: total (TTN) and reduced (RTN)
//! transition numbers for block sizes 2–7, with the paper's printed values
//! alongside.
//!
//! Two cells of the printed paper table are anomalous (see EXPERIMENTS.md):
//! the k=6 TTN/RTN are exactly twice the closed form every other column
//! follows (the percentage matches), and the k=7 RTN of 234 is below the
//! provable optimum of 236 under the paper's own decode semantics.

use imt_bench::table::Table;
use imt_bitcode::tables::{theoretical_ttn, CodeTable};
use imt_bitcode::TransformSet;

fn main() {
    experiment();
    imt_bench::finish_run("exp_fig3");
}

fn experiment() {
    let paper_rows: [(usize, &str, &str, &str); 6] = [
        (2, "2", "0", "100.0"),
        (3, "8", "2", "75.0"),
        (4, "24", "10", "58.3"),
        (5, "64", "32", "50.0"),
        (6, "320", "180", "43.8"),
        (7, "384", "234", "39.1"),
    ];
    let mut table = Table::new(
        [
            "Size",
            "TTN",
            "RTN",
            "Impr(%)",
            "paper TTN",
            "paper RTN",
            "paper Impr(%)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (k, p_ttn, p_rtn, p_impr) in paper_rows {
        let code = CodeTable::build(k, TransformSet::ALL_SIXTEEN).expect("valid size");
        assert_eq!(code.total_transitions(), theoretical_ttn(k));
        table.row(vec![
            k.to_string(),
            code.total_transitions().to_string(),
            code.reduced_transitions().to_string(),
            format!("{:.1}", code.improvement_percent()),
            p_ttn.to_string(),
            p_rtn.to_string(),
            p_impr.to_string(),
        ]);
    }
    println!("Figure 3 — transition improvements for various block sizes\n");
    print!("{}", table.render());
    println!("\nNote: the paper's k=6 row is 2x the closed form (k-1)*2^(k-1) that");
    println!("every other row follows; its percentage (43.8) matches our 160/90.");
    println!("The paper's k=7 RTN=234 is unattainable by exhaustive search; the");
    println!("optimum under the stated decode semantics is 236 (38.5%).");
}
