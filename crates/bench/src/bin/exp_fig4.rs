//! Regenerates the paper's **Figure 4**: the optimal transformations for
//! five-bit blocks restricted to the eight-function subset. The paper
//! prints only the first (lexicographic) half; the second half follows by
//! the global-inversion symmetry, which this binary also verifies.

use imt_bitcode::tables::CodeTable;
use imt_bitcode::TransformSet;

fn main() {
    experiment();
    imt_bench::finish_run("exp_fig4");
}

fn experiment() {
    let table = CodeTable::build(5, TransformSet::CANONICAL_EIGHT).expect("block size 5 is valid");
    println!("Figure 4 — power efficient transformations for five bit blocks");
    println!("(first half; the second half is the bitwise complement under the");
    println!("XOR<->XNOR / NOR<->NAND duality)\n");
    let rendered = table.render();
    for line in rendered.lines().take(1 + 16) {
        println!("{line}");
    }
    // Verify the symmetry for the unprinted half.
    let n = table.entries().len();
    for i in 0..n / 2 {
        let lo = &table.entries()[i];
        let hi = &table.entries()[n - 1 - i];
        assert_eq!(
            lo.code_transitions, hi.code_transitions,
            "symmetry broke at row {i}"
        );
    }
    println!("\nsymmetry check for the second half: ok");
    println!(
        "totals: TTN = {}   RTN = {}   improvement = {:.1}% (paper: 64 / 32 / 50.0%)",
        table.total_transitions(),
        table.reduced_transitions(),
        table.improvement_percent()
    );
}
