//! Regenerates the paper's **Figure 6**: instruction-bus transition
//! reductions for the six benchmarks at block sizes 4–7, with a 16-entry
//! Transformation Table.
//!
//! Absolute transition counts differ from the paper's (our ISA and
//! hand-written kernels are not PISA + gcc), but the comparisons the paper
//! draws — shorter blocks win, fft trails the field because of its short
//! basic blocks, reductions in the tens of percent — are reproduced; see
//! EXPERIMENTS.md for the side-by-side reading.

use imt_bench::runner::{figure6_grid, Scale};
use imt_bench::table::Table;

/// One benchmark's paper row: millions of encoded transitions and the
/// reduction percentage, for block sizes 4–7.
pub type PaperRow = [(f64, f64); 4];

/// The paper's Figure 6, for side-by-side printing: per benchmark,
/// `(name, TR_millions, rows)`.
pub const PAPER_FIG6: [(&str, f64, PaperRow); 6] = [
    (
        "mmul",
        14.0,
        [(7.9, 44.0), (8.6, 39.2), (10.3, 26.7), (10.1, 28.5)],
    ),
    (
        "sor",
        3.3,
        [(1.8, 44.3), (2.3, 30.5), (2.1, 35.3), (2.6, 20.1)],
    ),
    (
        "ej",
        113.4,
        [(61.8, 45.5), (69.4, 38.8), (69.6, 38.7), (87.3, 23.1)],
    ),
    (
        "fft",
        0.2,
        [(0.15, 20.6), (0.1, 17.5), (0.2, 13.4), (0.2, 0.0)],
    ),
    (
        "tri",
        8.1,
        [(3.9, 51.6), (5.0, 37.8), (5.6, 31.1), (6.1, 24.4)],
    ),
    (
        "lu",
        63.8,
        [(43.0, 32.7), (48.8, 23.6), (51.6, 19.1), (57.8, 9.4)],
    ),
];

fn main() {
    experiment();
    imt_bench::finish_run("exp_fig6");
}

fn experiment() {
    let scale = Scale::from_args();
    let grid = figure6_grid(scale);
    println!("Figure 6 — transition reduction results ({scale:?} scale, TT = 16 entries)\n");

    let mut table = Table::new(
        ["", "mmul", "sor", "ej", "fft", "tri", "lu"]
            .map(String::from)
            .to_vec(),
    );
    table.row(
        std::iter::once("#TR (M)".to_string())
            .chain(
                grid.iter()
                    .map(|points| format!("{:.2}", points[0].baseline_millions())),
            )
            .collect(),
    );
    for (ki, k) in (4..=7).enumerate() {
        let mut count_cells = vec![format!("#{k}-block (M)")];
        let mut pct_cells = vec!["Reduction(%)".to_string()];
        for points in &grid {
            let p = &points[ki];
            count_cells.push(format!("{:.2}", p.encoded_millions()));
            pct_cells.push(format!("{:.1}", p.reduction_percent()));
        }
        table.row(count_cells);
        table.row(pct_cells);
    }
    print!("{}", table.render());

    println!("\npaper's Figure 6 for comparison:");
    let mut paper = Table::new(
        ["", "mmul", "sor", "ej", "fft", "tri", "lu"]
            .map(String::from)
            .to_vec(),
    );
    paper.row(
        std::iter::once("#TR (M)".to_string())
            .chain(PAPER_FIG6.iter().map(|(_, tr, _)| format!("{tr:.1}")))
            .collect(),
    );
    for (ki, k) in (4..=7).enumerate() {
        paper.row(
            std::iter::once(format!("#{k}-block (M)"))
                .chain(
                    PAPER_FIG6
                        .iter()
                        .map(|(_, _, rows)| format!("{:.2}", rows[ki].0)),
                )
                .collect(),
        );
        paper.row(
            std::iter::once("Reduction(%)".to_string())
                .chain(
                    PAPER_FIG6
                        .iter()
                        .map(|(_, _, rows)| format!("{:.1}", rows[ki].1)),
                )
                .collect(),
        );
    }
    print!("{}", paper.render());

    println!("\ncsv:");
    let mut csv = Table::new(
        [
            "kernel",
            "block_size",
            "baseline_transitions",
            "encoded_transitions",
            "reduction_percent",
        ]
        .map(String::from)
        .to_vec(),
    );
    for points in &grid {
        for p in points {
            csv.row(vec![
                p.kernel.to_string(),
                p.config.block_size().to_string(),
                p.evaluation.baseline_transitions.to_string(),
                p.evaluation.encoded_transitions.to_string(),
                format!("{:.2}", p.reduction_percent()),
            ]);
        }
    }
    print!("{}", csv.render_csv());
}
