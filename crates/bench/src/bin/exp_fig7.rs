//! Regenerates the paper's **Figure 7**: the percentage-reduction bar
//! chart over all benchmarks and power codes (the same data as Figure 6,
//! drawn as grouped bars).

use imt_bench::runner::{figure6_grid, Scale};
use imt_bench::table::bar_chart;

fn main() {
    experiment();
    imt_bench::finish_run("exp_fig7");
}

fn experiment() {
    let scale = Scale::from_args();
    let grid = figure6_grid(scale);
    println!("Figure 7 — percentage reduction comparison ({scale:?} scale)\n");
    for points in &grid {
        println!("{}:", points[0].kernel);
        let entries: Vec<(String, f64)> = points
            .iter()
            .map(|p| {
                (
                    format!("  {}-block", p.config.block_size()),
                    p.reduction_percent(),
                )
            })
            .collect();
        print!("{}", bar_chart(&entries, 50, "%"));
        println!();
    }
    // The paper's qualitative claims, checked mechanically at paper scale.
    // Divergences are reported, not hidden — see EXPERIMENTS.md for why
    // each one arises.
    if scale == Scale::Paper {
        let mean_at = |ki: usize| -> f64 {
            grid.iter()
                .map(|points| points[ki].reduction_percent())
                .sum::<f64>()
                / grid.len() as f64
        };
        let k4 = mean_at(0);
        let k7 = mean_at(3);
        println!("qualitative checks against the paper:");
        println!(
            "  [{}] shorter blocks win on average: k=4 mean {k4:.1}% vs k=7 mean {k7:.1}%",
            if k4 > k7 { "ok" } else { "DIVERGES" }
        );
        assert!(k4 > k7, "the headline trend must reproduce");
        for points in &grid {
            let four = points[0].reduction_percent();
            let seven = points[3].reduction_percent();
            if four < seven {
                println!(
                    "  [note] {}: k=7 ({seven:.1}%) beats k=4 ({four:.1}%) — TT capacity \
                     pressure; its loop body needs more entries at small k than the \
                     16-entry table holds",
                    points[0].kernel
                );
            }
        }
        let fft_mean: f64 = grid[3].iter().map(|p| p.reduction_percent()).sum::<f64>() / 4.0;
        let rest_mean: f64 = grid
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .flat_map(|(_, points)| points.iter().map(|p| p.reduction_percent()))
            .sum::<f64>()
            / 20.0;
        if fft_mean < rest_mean {
            println!("  [ok] fft trails the field: {fft_mean:.1}% vs {rest_mean:.1}%");
        } else {
            println!(
                "  [note] fft does NOT trail the field here ({fft_mean:.1}% vs \
                 {rest_mean:.1}%): our hand-written butterfly is one long basic \
                 block, unlike the paper's compiled fft with its many short blocks"
            );
        }
        let all_positive = grid
            .iter()
            .flat_map(|points| points.iter())
            .all(|p| p.reduction_percent() > 0.0);
        println!(
            "  [{}] every kernel/block-size point shows a positive reduction",
            if all_positive { "ok" } else { "DIVERGES" }
        );
    }
}
