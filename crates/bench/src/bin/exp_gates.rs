//! Extension experiment **E-G**: the restore cell at gate level.
//!
//! The paper's recurring cost argument is "a single two-input logic gate"
//! per line plus 3 control bits. Exact NAND2 synthesis (breadth-first over
//! derivable-function sets — provably minimal) prices the whole per-lane
//! restore cell: each of the eight transformations, sharing between them,
//! the 8:1 selection mux, and the depth added to the fetch path.

use imt_bench::table::Table;
use imt_bitcode::gates::{restore_cell_cost, synthesize_nand};
use imt_bitcode::TransformSet;

fn main() {
    experiment();
    imt_bench::finish_run("exp_gates");
}

fn experiment() {
    println!("E-G — exact NAND2 synthesis of the restore logic\n");
    let mut table = Table::new(
        ["transform", "NAND2 gates", "depth"]
            .map(String::from)
            .to_vec(),
    );
    for t in TransformSet::CANONICAL_EIGHT.iter() {
        let network = synthesize_nand(t);
        table.row(vec![
            t.ascii_name().to_string(),
            network.gate_count().to_string(),
            network.depth().to_string(),
        ]);
    }
    print!("{}", table.render());

    for (name, set) in [
        ("canonical 8", TransformSet::CANONICAL_EIGHT),
        ("all 16", TransformSet::ALL_SIXTEEN),
    ] {
        let cost = restore_cell_cost(set);
        println!(
            "\nper-lane cell ({name}): {} function gates naive, {} shared, {} mux gates,\n  total ~{} NAND2-equivalents, depth {} levels",
            cost.function_gates_naive,
            cost.function_gates_shared,
            cost.mux_gates,
            cost.total_gates(),
            cost.depth
        );
    }
    let eight = restore_cell_cost(TransformSet::CANONICAL_EIGHT);
    println!(
        "\nfull 32-line bus: ~{} NAND2-equivalents of restore logic — a rounding",
        32 * eight.total_gates()
    );
    println!("error next to any embedded core, as the paper argues; every");
    println!("synthesised network is exhaustively verified against Transform::apply.");
}
