//! Extension experiment **E-H**: the §5.1 history-depth trade-off.
//!
//! The paper fixes `h = 1` ("a single two-input logic gate") without
//! measuring the alternatives. This experiment builds the exhaustive
//! Figure 3 analogue for `h = 1, 2, 3`: deeper history relaxes the
//! constraint system (fewer conflicts per block), but every block must
//! seed `h` bits verbatim, and the per-block selector grows from 3–4 bits
//! towards the size of a `2^(h+1)`-entry truth table. The numbers turn the
//! paper's implicit trade-off into data: `h = 2` buys real transition
//! reductions at practical block sizes, at roughly double the control
//! storage and an extra history flip-flop per line.

use imt_bench::table::Table;
use imt_bitcode::history::{encode_history_stream, history_table_summary};
use rand::SeedableRng;

fn main() {
    experiment();
    imt_bench::finish_run("exp_history");
}

fn experiment() {
    println!("E-H — history-depth generalisation of Figure 3 (improvement %)\n");
    let mut table = Table::new(
        ["k", "h=1", "h=2", "h=3", "selector bits h=1/2/3"]
            .map(String::from)
            .to_vec(),
    );
    for k in 2..=8usize {
        let mut cells = vec![k.to_string()];
        for h in 1..=3usize {
            let summary = history_table_summary(k, h).expect("valid parameters");
            cells.push(format!("{:.1}", summary.improvement_percent()));
        }
        // Full-universe selector widths: log2 of 2^(2^(h+1)) functions.
        cells.push("4 / 8 / 16".to_string());
        table.row(cells);
    }
    print!("{}", table.render());

    // Dynamic counterpart: chained random streams (the §6 experiment at
    // deeper history).
    println!("\nchained 1000-bit uniform streams (200 seeds), reduction %:");
    let mut table = Table::new(["k", "h=1", "h=2", "h=3"].map(String::from).to_vec());
    for k in [5usize, 6, 7, 8] {
        let mut cells = vec![k.to_string()];
        for h in 1..=3usize {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xE4);
            let mut orig = 0u64;
            let mut enc = 0u64;
            for _ in 0..200 {
                let stream = imt_bitcode::gen::uniform(&mut rng, 1000);
                let bits: Vec<bool> = stream.into();
                let encoded = encode_history_stream(&bits, k, h).expect("valid parameters");
                orig += encoded.original_transitions;
                enc += encoded.transitions();
            }
            cells.push(format!("{:.1}", (orig - enc) as f64 / orig as f64 * 100.0));
        }
        table.row(cells);
    }
    print!("{}", table.render());
    println!("\nreading: in the isolated-block table, deeper history pays a longer");
    println!("verbatim seed prefix (h=2 is useless below k=4) and wins ~6-12 points");
    println!("at k=5..8. Chained, the story is stronger still: only the stream's");
    println!("first block pays seeds, so h=2 reaches ~60-76% and h=3 ~80% on");
    println!("uniform streams. The price is the §5.2 economy collapsing: the");
    println!("selector grows from 3-4 toward 8-16 bits per line per block (the");
    println!("restricted-subset trick would have to be redone over 256-65536");
    println!("functions) plus extra history flip-flops per line. A compelling");
    println!("future-work direction the paper leaves on the table; its h=1 is");
    println!("the minimal-hardware point, not the power-optimal one.");
}
