//! Extension experiment **E-C**: the storage-type claim of §8.
//!
//! The paper states the instruction storage "bears no impact on the bit
//! transition reductions we attain". This experiment puts a set-associative
//! instruction cache between memory and core and measures both buses, for
//! the two possible decoder placements:
//!
//! * decoder in the fetch unit (the paper's Figure 5): the cache stores
//!   encoded words, and the cache→core bus sees exactly the reduction of
//!   the uncached system — the claim, verified;
//! * decoder at cache fill: the core bus reverts to baseline and only the
//!   (rarely used) memory→cache refill bus benefits — quantifying why the
//!   paper put the decoder where it did.

use imt_bench::runner::{profiled_run, Scale};
use imt_bench::table::Table;
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_sim::cpu::Tee;
use imt_sim::icache::{CachedBusModel, DecoderPlacement, ICacheConfig};
use imt_sim::Cpu;

fn reduction(before: u64, after: u64) -> f64 {
    if before == 0 {
        return 0.0;
    }
    (before as f64 - after as f64) / before as f64 * 100.0
}

fn main() {
    experiment();
    imt_bench::finish_run("exp_icache");
}

fn experiment() {
    let scale = Scale::from_args();
    println!("E-C — instruction cache and decoder placement ({scale:?} scale, k = 5)\n");
    let mut table = Table::new(
        [
            "kernel",
            "hit rate",
            "core red. uncached",
            "core red. cached@core",
            "core red. cached@fill",
            "mem-bus red.",
        ]
        .map(String::from)
        .to_vec(),
    );
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let run = profiled_run(&spec);
        let encoded =
            encode_program(&run.program, &run.profile, &EncoderConfig::default()).expect("encode");
        let eval =
            imt_core::eval::evaluate(&run.program, &encoded, spec.max_steps).expect("evaluate");

        // Cached replays: baseline image vs encoded image, both placements.
        let cache = ICacheConfig::SMALL_4K;
        let mut base_model = CachedBusModel::new(
            cache,
            run.program.text.clone(),
            run.program.text.clone(),
            run.program.text_base,
            DecoderPlacement::AtCore,
        );
        let mut enc_at_core = CachedBusModel::new(
            cache,
            encoded.text.clone(),
            run.program.text.clone(),
            run.program.text_base,
            DecoderPlacement::AtCore,
        );
        let mut enc_at_fill = CachedBusModel::new(
            cache,
            encoded.text.clone(),
            run.program.text.clone(),
            run.program.text_base,
            DecoderPlacement::AtCacheFill,
        );
        let mut cpu = Cpu::new(&run.program).expect("load");
        let mut sinks = Tee(&mut base_model, Tee(&mut enc_at_core, &mut enc_at_fill));
        cpu.run_with_sink(spec.max_steps, &mut sinks)
            .expect("replay");

        if imt_obs::enabled() {
            base_model.publish_obs(&format!("{}/baseline", spec.name));
            enc_at_core.publish_obs(&format!("{}/at-core", spec.name));
            enc_at_fill.publish_obs(&format!("{}/at-fill", spec.name));
        }
        let core_uncached = eval.reduction_percent();
        let core_at_core = reduction(
            base_model.core_bus().total_transitions(),
            enc_at_core.core_bus().total_transitions(),
        );
        let core_at_fill = reduction(
            base_model.core_bus().total_transitions(),
            enc_at_fill.core_bus().total_transitions(),
        );
        let mem = reduction(
            base_model.memory_bus().total_transitions(),
            enc_at_core.memory_bus().total_transitions(),
        );
        table.row(vec![
            kernel.name().to_string(),
            format!("{:.1}%", base_model.cache().hit_rate() * 100.0),
            format!("{core_uncached:.1}%"),
            format!("{core_at_core:.1}%"),
            format!("{core_at_fill:.1}%"),
            format!("{mem:.1}%"),
        ]);
        // The paper's claim, enforced: with the decoder in the fetch unit
        // the core-bus stream is word-for-word the uncached stream.
        assert!(
            (core_at_core - core_uncached).abs() < 1e-9,
            "{}: cache changed the core-bus reduction ({core_at_core:.3} vs {core_uncached:.3})",
            kernel.name()
        );
    }
    print!("{}", table.render());
    println!("\nreading: with the decoder in the fetch unit (paper architecture)");
    println!("the cache leaves the core-bus reduction bit-for-bit unchanged — §8's");
    println!("storage-independence claim, verified. Moving the decoder to the fill");
    println!("path forfeits the dominant core-bus savings, keeping only refill-bus");
    println!("savings gated by the (high) hit rate.");
}
