//! Extension experiment **E-L**: where on the bus the savings come from.
//!
//! The encoding treats each of the 32 lines independently (the paper's
//! Figure 1 "vertical" view); this experiment shows the per-line anatomy
//! for one kernel: the dynamic fetch stream's bias and transition density
//! per line, and the per-line reduction the schedule achieves. Opcode
//! lines (top bits) barely move and barely matter; the action is in the
//! register/immediate fields — and the hardware budget (§7.2) that buys
//! it all is a few hundred bytes of table.

use imt_bench::runner::{run_kernel_point, Scale};
use imt_bitcode::analysis::{analyze_lanes, LaneStats};
use imt_core::hardware::HardwareBudget;
use imt_kernels::Kernel;

fn main() {
    experiment();
    imt_bench::finish_run("exp_lanes");
}

fn experiment() {
    let scale = Scale::from_args();
    let wanted = std::env::args().find(|a| Kernel::ALL.iter().any(|k| k.name() == *a));
    let kernel = wanted
        .and_then(|name| Kernel::ALL.into_iter().find(|k| k.name() == name))
        .unwrap_or(Kernel::Tri);
    println!(
        "E-L — per-line anatomy of {} ({scale:?} scale, k = 5)\n",
        kernel.name()
    );

    let point = run_kernel_point(kernel, scale, &imt_core::EncoderConfig::default());
    // Static view of the hot region the schedule actually covers.
    let static_words: Vec<u64> = point.encoded.text.iter().map(|&w| w as u64).collect();
    let static_stats = analyze_lanes(&static_words, 32);

    println!("lane   static bias  dyn transitions  encoded  reduction");
    #[allow(clippy::needless_range_loop)] // lane indexes three parallel arrays
    for lane in 0..32 {
        let before = point.evaluation.per_lane_baseline[lane];
        let after = point.evaluation.per_lane_encoded[lane];
        let reduction = if before == 0 {
            0.0
        } else {
            (before as f64 - after as f64) / before as f64 * 100.0
        };
        let bar = "#".repeat((reduction.max(0.0) / 5.0) as usize);
        println!(
            "{:>4}   {:>10.1}%  {:>15}  {:>7}  {:>7.1}% {}",
            lane,
            bias_of(&static_stats[lane]) * 100.0,
            before,
            after,
            reduction,
            bar
        );
    }

    let budget = HardwareBudget::of_schedule(&point.encoded);
    println!(
        "\nhardware budget: {} TT entries x {} bits + {} BBIT entries x {} bits = {} bytes, ~{} restore gates",
        budget.tt_entries,
        budget.tt_bits_per_entry,
        budget.bbit_entries,
        budget.bbit_bits_per_entry,
        budget.total_bytes(),
        budget.restore_gates
    );
    println!(
        "total: {} -> {} transitions ({:.1}% reduction)",
        point.evaluation.baseline_transitions,
        point.evaluation.encoded_transitions,
        point.reduction_percent()
    );
}

fn bias_of(stats: &LaneStats) -> f64 {
    stats.bias()
}
