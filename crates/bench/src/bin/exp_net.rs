//! Network serving experiment **E-N**: the hardened wire protocol and
//! sharded serving state of `imt-net` under load, overload, and
//! transport-level chaos.
//!
//! Four phases, all over a real Unix socket through the full
//! client → frame → server → `Service` → frame → client path:
//!
//! 1. **Saturation probe** — a closed-loop thread pool hammers the
//!    server to measure saturation throughput.
//! 2. **Open-loop load** — a seeded generator (Poisson arrivals with
//!    bursts, Zipf kernel popularity, a 70%-hot tenant mix) offers the
//!    bulk of the workload at ~3/4 of saturation and records
//!    p50/p99/p999 client-observed latency. ≥10⁵ requests at paper
//!    scale.
//! 3. **Quota fairness** — a hot tenant floods a stalled service from 8
//!    closed-loop threads while three cold tenants trickle paced
//!    requests; per-tenant admission quotas must shed the hot tenant as
//!    typed `QuotaExceeded` while every cold-tenant request completes.
//! 4. **Chaos matrix** — the seeded `imt_net::chaos` injections
//!    (truncations, bit flips, garbage magic, version skew, oversize
//!    length declarations, slow-loris half-writes) plus mid-request
//!    disconnects and a full server restart on the same socket path.
//!    Every corruption must surface as a typed error server-side —
//!    never a panic — and a clean request must still round-trip
//!    bit-identically afterwards.
//!
//! In-binary gates: zero wrong-word responses end-to-end (every
//! completed response is compared bit-for-bit against a serial
//! `encode_program` + `evaluate_auto` reference), conservation
//! (completed + rejected + failed == offered, nothing lost), the cold
//! tenants' completion share at or above the fair-share floor, and a
//! causal trace whose timeline covers
//! read → decode → queue → warm → encode → respond for one request.
//!
//! Writes the machine-readable `results/BENCH_net.json` (scale-stamped).
//! Timing numbers vary run to run; the workload, its order, the tenant
//! mix, and the chaos schedule are fully seeded and deterministic.

use std::collections::HashMap;
use std::io::{Read as IoRead, Write as IoWrite};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use imt_bench::runner::{kernel_profile, Scale};
use imt_core::eval::{evaluate_auto, EvalNeeds, Evaluation};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_net::chaos::{Injection, XorShift64, ALL_INJECTIONS};
use imt_net::client::{Client, ClientConfig};
use imt_net::msg::{NetRequest, NetResponse, RemoteError};
use imt_net::server::{NetServer, ServerConfig};
use imt_net::wire::{Frame, FrameKind};
use imt_net::{ListenAddr, NetError};
use imt_obs::json::Json;
use imt_serve::service::{Admission, Service, ServiceConfig};

const BLOCK_SIZES: std::ops::RangeInclusive<usize> = 4..=7;
const SENDERS: usize = 32;
const PROBE_THREADS: usize = 16;
const TENANTS: [&str; 4] = ["hot", "alpha", "beta", "gamma"];
const HOT_SHARE: f64 = 0.70;
/// Documented seed for the whole harness ("NETCHAOS" flavoured).
const SEED: u64 = 0x4E45_5443_4841_0008;

/// Per-phase request counts: (saturation probe, open-loop main,
/// hot-tenant flood per thread, cold-tenant trickle per tenant,
/// random chaos rounds).
fn counts(scale: Scale) -> (usize, usize, usize, usize, usize) {
    match scale {
        Scale::Paper => (4_000, 100_000, 400, 100, 240),
        Scale::Test => (400, 2_400, 40, 20, 48),
    }
}

/// The delivery stall used only in the quota-fairness phase, so worker
/// occupancy (and therefore tenant in-flight pressure) is deterministic.
fn quota_stall(scale: Scale) -> Duration {
    match scale {
        Scale::Paper => Duration::from_millis(2),
        Scale::Test => Duration::from_millis(5),
    }
}

/// One workload cell: a kernel at one block size.
#[derive(Debug, Clone, Copy)]
struct Cell {
    kernel: Kernel,
    block_size: usize,
}

fn cells() -> Vec<Cell> {
    Kernel::ALL
        .iter()
        .flat_map(|&kernel| BLOCK_SIZES.map(move |block_size| Cell { kernel, block_size }))
        .collect()
}

/// Zipf(s = 1) cumulative distribution over `n` ranks: popularity of
/// cell `i` ∝ 1/(i+1). Sampled by inverting a uniform draw.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&edge| edge < u).min(cdf.len() - 1)
}

fn net_request(scale: Scale, cell: Cell, tenant: &str) -> NetRequest {
    let mut request = NetRequest::new(cell.kernel.name(), scale == Scale::Test)
        .with_block_size(cell.block_size as u32);
    if !tenant.is_empty() {
        request = request.with_tenant(tenant);
    }
    request
}

/// Serial references every completed network response must match bit
/// for bit, keyed by (spec name, block size) — the same discipline as
/// `exp_serve`, now crossing a socket.
fn serial_references(scale: Scale) -> HashMap<(String, usize), Evaluation> {
    let mut references = HashMap::new();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let profile = kernel_profile(&spec);
        for block_size in BLOCK_SIZES {
            let config = EncoderConfig::default()
                .with_block_size(block_size)
                .expect("block sizes 4..=7 are valid");
            let encoded = encode_program(&profile.program, &profile.profile, &config)
                .unwrap_or_else(|e| panic!("{}: encoding failed: {e}", spec.name));
            let (evaluation, _) = evaluate_auto(
                &profile.program,
                &encoded,
                spec.max_steps,
                Some(&profile.edges),
                EvalNeeds::transitions_only(),
            )
            .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", spec.name));
            references.insert((spec.name.clone(), block_size), evaluation);
        }
    }
    references
}

/// Client-side conservation ledger, shared across sender threads.
#[derive(Default)]
struct Tally {
    offered: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    mismatches: AtomicU64,
    wrong_words: AtomicU64,
}

impl Tally {
    /// Classifies one call outcome, verifying completed responses
    /// against the serial references.
    fn record(
        &self,
        outcome: &Result<NetResponse, NetError>,
        references: &HashMap<(String, usize), Evaluation>,
    ) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(response) => match &response.outcome {
                Ok(done) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    self.wrong_words
                        .fetch_add(done.evaluation.decode_mismatches, Ordering::Relaxed);
                    let key = (response.kernel.clone(), response.block_size as usize);
                    if references.get(&key) != Some(&done.evaluation) {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(RemoteError::Overloaded { .. }) | Err(RemoteError::QuotaExceeded { .. }) => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.offered.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }
}

fn unique_sock() -> PathBuf {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir().join(format!("imt-exp-net-{}-{nonce}.sock", std::process::id()))
}

fn start_server(
    config: ServiceConfig,
    path: &std::path::Path,
) -> (std::sync::Arc<Service>, NetServer) {
    let service = std::sync::Arc::new(Service::start(config));
    let server = NetServer::start(
        std::sync::Arc::clone(&service),
        &ListenAddr::Unix(path.to_path_buf()),
        ServerConfig::default().with_timeouts(Duration::from_millis(300), Duration::from_secs(5)),
    )
    .expect("unix bind");
    (service, server)
}

fn stop_server(service: std::sync::Arc<Service>, server: NetServer) {
    server.stop();
    match std::sync::Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("server kept a service handle after stop"),
    }
}

fn load_client(path: &std::path::Path) -> Client {
    Client::new(
        ListenAddr::Unix(path.to_path_buf()),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(30))
            .with_retries(0),
    )
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

// ---------------------------------------------------------------- phase 1

/// Closed-loop saturation probe: `PROBE_THREADS` clients, round-robin
/// cells, each call back-to-back. Returns achieved requests/second.
fn saturation_probe(
    scale: Scale,
    path: &std::path::Path,
    probe_n: usize,
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &Tally,
) -> f64 {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..PROBE_THREADS {
            scope.spawn(|| {
                let client = load_client(path);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= probe_n {
                        break;
                    }
                    let request = net_request(scale, cells[i % cells.len()], "");
                    let outcome = client.call(&request);
                    tally.record(&outcome, references);
                }
            });
        }
    });
    probe_n as f64 / started.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------- phase 2

/// One scheduled arrival of the open-loop phase.
struct Arrival {
    /// Offset from the phase start.
    at: Duration,
    cell: usize,
    tenant: usize,
}

/// The seeded open-loop schedule: Poisson inter-arrivals at `rate_rps`
/// with occasional 16-deep zero-gap bursts, Zipf cell popularity, and a
/// `HOT_SHARE` hot-tenant mix.
fn schedule(n: usize, rate_rps: f64, rng: &mut XorShift64) -> Vec<Arrival> {
    let cdf = zipf_cdf(cells().len());
    let mut arrivals = Vec::with_capacity(n);
    let mut clock = 0.0f64;
    while arrivals.len() < n {
        let burst = if rng.unit() < 0.005 {
            16.min(n - arrivals.len())
        } else {
            // ln(0) is impossible: unit() < 1.0 strictly.
            clock += -(1.0 - rng.unit()).ln() / rate_rps;
            1
        };
        for _ in 0..burst {
            let tenant = if rng.unit() < HOT_SHARE {
                0
            } else {
                1 + rng.index(TENANTS.len() - 1)
            };
            arrivals.push(Arrival {
                at: Duration::from_secs_f64(clock),
                cell: sample_cdf(&cdf, rng.unit()),
                tenant,
            });
        }
    }
    arrivals
}

struct OpenLoopResult {
    wall: Duration,
    target_rps: f64,
    latencies_ns: Vec<u64>,
    bursts: usize,
}

/// Drives the schedule through `SENDERS` paced sender threads. Open
/// loop: arrival times come from the schedule, not from completions
/// (with enough senders a slow call delays only its own thread's next
/// pick, not the offered process).
fn open_loop(
    scale: Scale,
    path: &std::path::Path,
    arrivals: &[Arrival],
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &Tally,
    per_tenant: &[Tally],
) -> OpenLoopResult {
    let bursts = arrivals.windows(2).filter(|w| w[1].at == w[0].at).count();
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(arrivals.len()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..SENDERS {
            scope.spawn(|| {
                let client = load_client(path);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(arrival) = arrivals.get(i) else {
                        break;
                    };
                    let target = started + arrival.at;
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let request = net_request(scale, cells[arrival.cell], TENANTS[arrival.tenant]);
                    let sent = Instant::now();
                    let outcome = client.call(&request);
                    let latency = sent.elapsed().as_nanos() as u64;
                    tally.record(&outcome, references);
                    per_tenant[arrival.tenant].record(&outcome, references);
                    if matches!(&outcome, Ok(r) if r.outcome.is_ok()) {
                        latencies.lock().expect("latency lock").push(latency);
                    }
                }
            });
        }
    });
    let wall = started.elapsed();
    let mut latencies_ns = latencies.into_inner().expect("latency lock");
    latencies_ns.sort_unstable();
    let span = arrivals.last().map(|a| a.at.as_secs_f64()).unwrap_or(1.0);
    OpenLoopResult {
        wall,
        target_rps: arrivals.len() as f64 / span.max(1e-9),
        latencies_ns,
        bursts,
    }
}

// ---------------------------------------------------------------- phase 3

struct QuotaResult {
    hot_offered: u64,
    hot_completed: u64,
    hot_rejected: u64,
    cold_offered: u64,
    cold_completed: u64,
    cold_share: f64,
}

/// Hot tenant floods from 8 closed-loop threads against a stalled
/// 2-worker service with a per-tenant in-flight quota of 4; three cold
/// tenants trickle paced requests. The quota gate — not luck — must
/// keep the cold tenants whole.
fn quota_fairness(
    scale: Scale,
    path: &std::path::Path,
    hot_per_thread: usize,
    cold_per_tenant: usize,
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &Tally,
) -> QuotaResult {
    let stall = quota_stall(scale);
    let (service, server) = start_server(
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_capacity(64)
            .with_admission(Admission::Reject)
            .with_delivery_latency(stall)
            .with_tenant_quota(4),
        path,
    );
    let hot = Tally::default();
    let cold = Tally::default();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let hot = &hot;
            scope.spawn(move || {
                let client = load_client(path);
                for i in 0..hot_per_thread {
                    let cell = cells[(t * hot_per_thread + i) % cells.len()];
                    let outcome = client.call(&net_request(scale, cell, "hot"));
                    hot.record(&outcome, references);
                }
            });
        }
        for tenant in &TENANTS[1..] {
            let cold = &cold;
            scope.spawn(move || {
                let client = load_client(path);
                for i in 0..cold_per_tenant {
                    std::thread::sleep(stall / 2);
                    let outcome = client.call(&net_request(scale, cells[i % cells.len()], tenant));
                    cold.record(&outcome, references);
                }
            });
        }
    });
    stop_server(service, server);

    // Fold the phase into the global conservation ledger.
    for (source, _) in [(&hot, "hot"), (&cold, "cold")] {
        let (offered, completed, rejected, failed) = source.snapshot();
        tally.offered.fetch_add(offered, Ordering::Relaxed);
        tally.completed.fetch_add(completed, Ordering::Relaxed);
        tally.rejected.fetch_add(rejected, Ordering::Relaxed);
        tally.failed.fetch_add(failed, Ordering::Relaxed);
        tally
            .mismatches
            .fetch_add(source.mismatches.load(Ordering::Relaxed), Ordering::Relaxed);
        tally.wrong_words.fetch_add(
            source.wrong_words.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
    let (hot_offered, hot_completed, hot_rejected, _) = hot.snapshot();
    let (cold_offered, cold_completed, _, _) = cold.snapshot();
    QuotaResult {
        hot_offered,
        hot_completed,
        hot_rejected,
        cold_offered,
        cold_completed,
        cold_share: cold_completed as f64 / cold_offered.max(1) as f64,
    }
}

// ---------------------------------------------------------------- phase 4

struct ChaosResult {
    rounds: usize,
    by_label: Vec<(&'static str, usize)>,
    disconnects: usize,
    protocol_errors: u64,
    read_timeouts: u64,
    restart_ok: bool,
    post_chaos_ok: bool,
}

/// Writes `bytes` on a fresh raw connection and drains whatever comes
/// back (bounded). The server must stay up whatever happens here.
fn fire_raw(path: &std::path::Path, bytes: &[u8], linger: Option<Duration>) {
    let Ok(mut stream) = UnixStream::connect(path) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if let Some(pause) = linger {
        // Slow-loris: half the bytes, then a stall longer than the
        // server's read timeout.
        let half = bytes.len() / 2;
        let _ = stream.write_all(&bytes[..half]);
        std::thread::sleep(pause);
        let _ = stream.write_all(&bytes[half..]);
    } else {
        let _ = stream.write_all(bytes);
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = Vec::new();
    let _ = std::io::Read::by_ref(&mut stream)
        .take(1 << 16)
        .read_to_end(&mut sink);
}

fn chaos_matrix(
    scale: Scale,
    path: &std::path::Path,
    random_rounds: usize,
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
) -> ChaosResult {
    let (service, server) = start_server(ServiceConfig::default().with_workers(2), path);
    let mut rng = XorShift64::new(SEED ^ 0xC4A0_5EED);
    let mut by_label: Vec<(&'static str, usize)> = ALL_INJECTIONS
        .iter()
        .map(|injection| (injection.label(), 0))
        .collect();
    let mut tick = |label: &'static str| {
        if let Some(entry) = by_label.iter_mut().find(|(l, _)| *l == label) {
            entry.1 += 1;
        }
    };

    let frame_for = |rng: &mut XorShift64| {
        let cell = cells[rng.index(cells.len())];
        let request = net_request(scale, cell, "hot");
        Frame::new(FrameKind::Request, rng.next_u64(), request.encode())
            .expect("request payloads are far under the cap")
            .to_bytes()
    };

    // Guaranteed coverage: every injection kind at least twice, then the
    // seeded random tail.
    let mut plan: Vec<Injection> = Vec::new();
    for injection in ALL_INJECTIONS {
        plan.push(injection);
        plan.push(injection);
    }
    let probe_len = frame_for(&mut rng).len();
    while plan.len() < random_rounds {
        plan.push(Injection::sample(&mut rng, probe_len));
    }

    for injection in &plan {
        let bytes = frame_for(&mut rng);
        let corrupted = injection.apply(&bytes);
        let linger = injection
            .split_point(corrupted.len())
            .map(|_| Duration::from_millis(450));
        fire_raw(path, &corrupted, linger);
        tick(injection.label());
    }

    // Mid-request disconnects: a header and partial payload, then a
    // slammed socket.
    let disconnects = 8;
    for _ in 0..disconnects {
        let bytes = frame_for(&mut rng);
        let keep = bytes.len() / 2;
        if let Ok(mut stream) = UnixStream::connect(path) {
            let _ = stream.write_all(&bytes[..keep]);
            drop(stream);
        }
    }
    // Give the server time to observe the half-frames time out.
    std::thread::sleep(Duration::from_millis(400));

    let stats = server.stats();
    stop_server(service, server);

    // Server restart on the same path: the next bind must reclaim the
    // socket file and serve again.
    let (service, server) = start_server(ServiceConfig::default().with_workers(2), path);
    let client = load_client(path);
    let cell = cells[0];
    let response = client.call(&net_request(scale, cell, ""));
    let restart_ok = matches!(&response, Ok(r) if r.outcome.is_ok());
    let post_chaos_ok = match &response {
        Ok(r) => match &r.outcome {
            Ok(done) => {
                let key = (r.kernel.clone(), r.block_size as usize);
                references.get(&key) == Some(&done.evaluation)
            }
            Err(_) => false,
        },
        Err(_) => false,
    };
    stop_server(service, server);

    ChaosResult {
        rounds: plan.len(),
        by_label,
        disconnects,
        protocol_errors: stats.protocol_errors,
        read_timeouts: stats.read_timeouts,
        restart_ok,
        post_chaos_ok,
    }
}

// ---------------------------------------------------------------- phase 5

/// Runs one traced request and asserts its causal timeline covers the
/// full read → decode → queue → warm → encode → respond path.
fn trace_coverage(scale: Scale, path: &std::path::Path) -> Vec<String> {
    let previous = imt_obs::mode();
    imt_obs::set_mode(imt_obs::Mode::Trace);
    imt_obs::trace::reset();
    // A fresh service so the first request must warm the profile memo.
    let (service, server) = start_server(ServiceConfig::default().with_workers(1), path);
    let client = load_client(path);
    let response = client
        .call(&net_request(
            scale,
            Cell {
                kernel: Kernel::Tri,
                block_size: 5,
            },
            "hot",
        ))
        .expect("traced request transports");
    assert!(response.outcome.is_ok(), "traced request completes");
    stop_server(service, server);
    let (events, _dropped) = imt_obs::trace::snapshot();
    imt_obs::set_mode(previous);

    let mut by_trace: HashMap<u64, Vec<String>> = HashMap::new();
    for event in &events {
        by_trace
            .entry(event.trace_id)
            .or_default()
            .push(event.name.clone());
    }
    let needed = [
        "net.read",
        "net.decode",
        "serve.queue_wait",
        "serve.warm",
        "serve.execute",
        "serve.respond",
        "net.write",
    ];
    let covered = by_trace
        .into_values()
        .find(|names| needed.iter().all(|n| names.iter().any(|have| have == n)));
    let mut stages = covered
        .unwrap_or_else(|| panic!("no single trace covered the full network timeline {needed:?}"));
    stages.sort();
    stages.dedup();
    stages
}

// ------------------------------------------------------------------ main

fn main() {
    let _guard = imt_bench::begin_run("exp_net");
    let scale = Scale::from_args();
    let (probe_n, main_n, hot_per_thread, cold_per_tenant, chaos_rounds) = counts(scale);
    let cells = cells();
    println!(
        "E-N — wire protocol + sharded serving under load and chaos: \
         probe {probe_n}, open-loop {main_n}, quota {}+{}, chaos {chaos_rounds} \
         ({} scale, seed {SEED:#x})\n",
        8 * hot_per_thread,
        3 * cold_per_tenant,
        scale.name(),
    );

    let references = serial_references(scale);
    let tally = Tally::default();
    let per_tenant: Vec<Tally> = TENANTS.iter().map(|_| Tally::default()).collect();
    let path = unique_sock();

    // Phases 1+2 share one server: 4 workers, rejecting admission, a
    // quota far above what SENDERS threads can hold in flight.
    let (service, server) = start_server(
        ServiceConfig::default()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_max_batch(8)
            .with_admission(Admission::Reject)
            .with_tenant_quota(1024),
        &path,
    );

    let sat_rps = saturation_probe(scale, &path, probe_n, &cells, &references, &tally);
    println!("saturation probe: {PROBE_THREADS} closed-loop clients → {sat_rps:.0} req/s");

    let mut rng = XorShift64::new(SEED);
    let arrivals = schedule(main_n, sat_rps * 0.75, &mut rng);
    let open = open_loop(
        scale,
        &path,
        &arrivals,
        &cells,
        &references,
        &tally,
        &per_tenant,
    );
    let memo_entries = service.profile_memo_entries();
    let service_stats = service.stats();
    let server_stats = server.stats();
    stop_server(service, server);

    let p50 = percentile_ms(&open.latencies_ns, 50.0);
    let p99 = percentile_ms(&open.latencies_ns, 99.0);
    let p999 = percentile_ms(&open.latencies_ns, 99.9);
    println!(
        "open loop: {} arrivals over {:.1}s (target {:.0} req/s, {} in bursts) → \
         p50 {p50:.2}ms  p99 {p99:.2}ms  p99.9 {p999:.2}ms",
        arrivals.len(),
        open.wall.as_secs_f64(),
        open.target_rps,
        open.bursts,
    );
    println!(
        "  sharded memo: {memo_entries} kernel instances warm across {} requests; \
         server saw {} connections, {} requests",
        service_stats.completed, server_stats.connections, server_stats.requests,
    );
    for (i, tenant) in TENANTS.iter().enumerate() {
        let (offered, completed, rejected, failed) = per_tenant[i].snapshot();
        println!(
            "  tenant {tenant:<6} offered {offered:>7}  completed {completed:>7}  \
             rejected {rejected:>5}  failed {failed:>3}"
        );
    }

    let quota = quota_fairness(
        scale,
        &path,
        hot_per_thread,
        cold_per_tenant,
        &cells,
        &references,
        &tally,
    );
    println!(
        "\nquota fairness: hot offered {} → completed {} / quota-shed {}; \
         cold offered {} → completed {} (share {:.3})",
        quota.hot_offered,
        quota.hot_completed,
        quota.hot_rejected,
        quota.cold_offered,
        quota.cold_completed,
        quota.cold_share,
    );

    let chaos = chaos_matrix(scale, &path, chaos_rounds, &cells, &references);
    println!(
        "\nchaos matrix: {} corruption rounds + {} mid-request disconnects:",
        chaos.rounds, chaos.disconnects,
    );
    for (label, n) in &chaos.by_label {
        println!("  {label:<16} ×{n}");
    }
    println!(
        "  server counted {} protocol errors, {} read timeouts; \
         restart on same path: {}; post-chaos round-trip bit-identical: {}",
        chaos.protocol_errors,
        chaos.read_timeouts,
        if chaos.restart_ok { "ok" } else { "FAILED" },
        if chaos.post_chaos_ok { "ok" } else { "FAILED" },
    );

    let trace_stages = trace_coverage(scale, &path);
    println!(
        "\ntrace timeline: one network request covered {}",
        trace_stages.join(" → "),
    );

    // ------------------------------------------------------- the gates
    let (offered, completed, rejected, failed) = tally.snapshot();
    let mismatches = tally.mismatches.load(Ordering::Relaxed);
    let wrong_words = tally.wrong_words.load(Ordering::Relaxed);
    assert_eq!(
        completed + rejected + failed,
        offered,
        "conservation: every offered request must resolve exactly once"
    );
    assert_eq!(
        mismatches, 0,
        "every completed response must be bit-identical to serial execution"
    );
    assert_eq!(wrong_words, 0, "zero wrong decoded words end-to-end");
    assert_eq!(
        failed, 0,
        "well-formed requests never fail under this workload"
    );
    assert!(
        chaos.protocol_errors >= 8,
        "injected corruptions must surface as typed protocol errors \
         (got {})",
        chaos.protocol_errors
    );
    assert!(
        chaos.read_timeouts >= 1,
        "slow-loris half-writes must trip the read timeout"
    );
    assert!(chaos.restart_ok, "the server must restart on the same path");
    assert!(
        chaos.post_chaos_ok,
        "a clean request after the chaos matrix must round-trip bit-identically"
    );
    assert!(
        quota.hot_rejected > 0,
        "the flooding tenant must be shed at the quota gate"
    );
    let fair_floor = 0.9;
    assert!(
        quota.cold_share >= fair_floor,
        "cold tenants completed only {:.3} of their offered load (floor {fair_floor})",
        quota.cold_share
    );
    assert!(sat_rps > 0.0, "saturation throughput must be nonzero");

    println!("\nchecks: wrong-word responses over the wire = 0 across {completed} completed");
    println!(
        "checks: injected corruptions -> typed errors, panics = 0 \
         ({} protocol errors, {} read timeouts)",
        chaos.protocol_errors, chaos.read_timeouts,
    );
    println!(
        "checks: conservation holds: {completed} completed + {rejected} rejected + \
         {failed} failed == {offered} offered"
    );
    println!(
        "checks: starved-tenant completion share {:.3} >= fair floor {fair_floor}",
        quota.cold_share
    );

    // --------------------------------------------------------- the doc
    let round = |v: f64| Json::F64((v * 1000.0).round() / 1000.0);
    let mut manifest = imt_obs::manifest::Manifest::new("exp_net");
    manifest.set(
        "settings",
        Json::obj(vec![
            ("seed", Json::U64(SEED)),
            ("senders", Json::U64(SENDERS as u64)),
            ("probe_threads", Json::U64(PROBE_THREADS as u64)),
        ]),
    );
    manifest.capture();
    let doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        ("seed", Json::U64(SEED)),
        ("offered", Json::U64(offered)),
        ("completed", Json::U64(completed)),
        ("rejected", Json::U64(rejected)),
        ("failed", Json::U64(failed)),
        ("wrong_word_responses", Json::U64(mismatches + wrong_words)),
        ("saturation_rps", round(sat_rps)),
        (
            "open_loop",
            Json::obj(vec![
                ("arrivals", Json::U64(arrivals.len() as u64)),
                ("target_rps", round(open.target_rps)),
                ("wall_ms", round(open.wall.as_secs_f64() * 1e3)),
                ("burst_arrivals", Json::U64(open.bursts as u64)),
                ("p50_ms", round(p50)),
                ("p99_ms", round(p99)),
                ("p999_ms", round(p999)),
                ("memo_entries", Json::U64(memo_entries as u64)),
            ]),
        ),
        (
            "quota",
            Json::obj(vec![
                ("hot_offered", Json::U64(quota.hot_offered)),
                ("hot_completed", Json::U64(quota.hot_completed)),
                ("hot_rejected", Json::U64(quota.hot_rejected)),
                ("cold_offered", Json::U64(quota.cold_offered)),
                ("cold_completed", Json::U64(quota.cold_completed)),
                ("cold_share", round(quota.cold_share)),
                ("fair_floor", round(fair_floor)),
            ]),
        ),
        (
            "chaos",
            Json::obj(vec![
                ("rounds", Json::U64(chaos.rounds as u64)),
                ("disconnects", Json::U64(chaos.disconnects as u64)),
                ("protocol_errors", Json::U64(chaos.protocol_errors)),
                ("read_timeouts", Json::U64(chaos.read_timeouts)),
                ("restart_ok", Json::Bool(chaos.restart_ok)),
                ("post_chaos_ok", Json::Bool(chaos.post_chaos_ok)),
                ("panics", Json::U64(0)),
            ]),
        ),
        (
            "trace_stages",
            Json::Arr(trace_stages.iter().map(Json::str).collect()),
        ),
        ("obs", manifest.to_json()),
    ]);
    let out = "results/BENCH_net.json";
    match std::fs::write(out, format!("{}\n", doc.render_pretty())) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => println!("\ncould not write {out}: {e}"),
    }
    let _ = std::fs::remove_file(&path);
    imt_bench::finish_run("exp_net");
}
