//! Network serving experiment **E-N**: the hardened wire protocol and
//! sharded serving state of `imt-net` under load, overload, and
//! transport-level chaos.
//!
//! Four phases, all over a real Unix socket through the full
//! client → frame → server → `Service` → frame → client path:
//!
//! 1. **Saturation probe** — a closed-loop thread pool hammers the
//!    server to measure saturation throughput.
//! 2. **Open-loop load** — a seeded generator (Poisson arrivals with
//!    bursts, Zipf kernel popularity, a 70%-hot tenant mix) offers the
//!    bulk of the workload at ~3/4 of saturation and records
//!    p50/p99/p999 client-observed latency. ≥10⁵ requests at paper
//!    scale.
//! 3. **Quota fairness** — a hot tenant floods a stalled service from 8
//!    closed-loop threads while three cold tenants trickle paced
//!    requests; per-tenant admission quotas must shed the hot tenant as
//!    typed `QuotaExceeded` while every cold-tenant request completes.
//! 4. **Chaos matrix** — the seeded `imt_net::chaos` injections
//!    (truncations, bit flips, garbage magic, version skew, oversize
//!    length declarations, slow-loris half-writes) plus mid-request
//!    disconnects and a full server restart on the same socket path.
//!    Every corruption must surface as a typed error server-side —
//!    never a panic — and a clean request must still round-trip
//!    bit-identically afterwards.
//!
//! The event-driven front-end adds three more phases on top:
//!
//! 5. **Connection scaling** — 64→4096 concurrent connections driven
//!    by forked sender processes against both serving paths end to
//!    end: the thread-per-connection server under PR 8's
//!    connection-per-request clients versus the epoll reactor under
//!    persistent pipelined connections, over a deliberately
//!    transport-bound service (tiny test-scale kernels behind a
//!    delivery stall). Asserts the reactor+pipelined path serves ≥2×
//!    the old path's saturation at ≥1024 connections.
//! 6. **10⁶-request open loop** — a seeded Poisson schedule offered at
//!    ~70% of the measured reactor saturation through multi-process
//!    load generation (`exp_net --sender` children), recording
//!    p50/p99/p999 and re-checking conservation, zero wrong words, and
//!    cold-tenant fairness at the million-request mark.
//! 7. **Reactor chaos + trace** — the chaos matrix and the causal
//!    trace timeline re-run against the reactor + persistent path,
//!    plus a pipelined out-of-order bit-identity probe after restart.
//!
//! In-binary gates: zero wrong-word responses end-to-end (every
//! completed response is compared bit-for-bit against a serial
//! `encode_program` + `evaluate_auto` reference), conservation
//! (completed + rejected + failed == offered, nothing lost), the cold
//! tenants' completion share at or above the fair-share floor, and a
//! causal trace whose timeline covers
//! read → decode → queue → warm → encode → respond for one request.
//!
//! Writes the machine-readable `results/BENCH_net.json` (scale-stamped).
//! Timing numbers vary run to run; the workload, its order, the tenant
//! mix, and the chaos schedule are fully seeded and deterministic.

use std::collections::HashMap;
use std::fmt::Write as FmtWrite;
use std::io::{Read as IoRead, Write as IoWrite};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use imt_bench::runner::{kernel_profile, Scale};
use imt_core::eval::{evaluate_auto, EvalNeeds, Evaluation};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_net::chaos::{Injection, XorShift64, ALL_INJECTIONS};
use imt_net::client::{Client, ClientConfig};
use imt_net::msg::{NetRequest, NetResponse, RemoteError};
use imt_net::pool::PersistentClient;
use imt_net::reactor::{ReactorConfig, ReactorServer};
use imt_net::server::{NetServer, ServerConfig, ServerStatsSnapshot};
use imt_net::wire::{Frame, FrameKind};
use imt_net::{ListenAddr, NetError};
use imt_obs::json::Json;
use imt_serve::service::{Admission, Service, ServiceConfig};

const BLOCK_SIZES: std::ops::RangeInclusive<usize> = 4..=7;
const SENDERS: usize = 32;
const PROBE_THREADS: usize = 16;
const TENANTS: [&str; 4] = ["hot", "alpha", "beta", "gamma"];
const HOT_SHARE: f64 = 0.70;
/// Documented seed for the whole harness ("NETCHAOS" flavoured).
const SEED: u64 = 0x4E45_5443_4841_0008;

/// Per-phase request counts: (saturation probe, open-loop main,
/// hot-tenant flood per thread, cold-tenant trickle per tenant,
/// random chaos rounds).
fn counts(scale: Scale) -> (usize, usize, usize, usize, usize) {
    match scale {
        Scale::Paper => (4_000, 100_000, 400, 100, 240),
        Scale::Test => (400, 2_400, 40, 20, 48),
    }
}

/// The delivery stall used only in the quota-fairness phase, so worker
/// occupancy (and therefore tenant in-flight pressure) is deterministic.
fn quota_stall(scale: Scale) -> Duration {
    match scale {
        Scale::Paper => Duration::from_millis(2),
        Scale::Test => Duration::from_millis(5),
    }
}

/// Pipelined frames in flight per persistent connection in the
/// connection-scaling and 10⁶-request phases. Deeper pipelines
/// amortize the per-connection wake/flush cost at wide connection
/// counts; 8 keeps worst-case in-flight (4096 conns × 8) at half the
/// serving queue bound so admission never sheds the benchmark's own
/// backlog.
const PIPELINE_DEPTH: usize = 8;
/// Reactor event-loop threads (exercises the N-way accept sharding).
const REACTORS: usize = 2;

/// Forked `--sender` load-generator processes per phase.
fn sender_procs(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 4,
        Scale::Test => 2,
    }
}

/// Connection counts swept by the scaling phase, and the floor on
/// requests per (mode, conns) cell. Each cell runs at least
/// [`SCALING_REQS_PER_CONN`] requests per connection so the wide cells
/// measure steady-state serving, not connection ramp: at 4096
/// connections a fixed total would give each connection a handful of
/// requests and the cell would time epoll registration and first-touch
/// buffer growth instead of saturation throughput.
fn scaling_counts(scale: Scale) -> (&'static [usize], usize) {
    match scale {
        Scale::Paper => (&[64, 256, 1024, 4096], 24_000),
        Scale::Test => (&[8, 32], 1_200),
    }
}

/// Minimum requests each connection contributes to a scaling cell.
const SCALING_REQS_PER_CONN: usize = 24;

/// Total requests and concurrent connections for the big open-loop run.
fn mega_counts(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Paper => (1_000_000, 1024),
        Scale::Test => (20_000, 32),
    }
}

/// One workload cell: a kernel at one block size.
#[derive(Debug, Clone, Copy)]
struct Cell {
    kernel: Kernel,
    block_size: usize,
}

fn cells() -> Vec<Cell> {
    Kernel::ALL
        .iter()
        .flat_map(|&kernel| BLOCK_SIZES.map(move |block_size| Cell { kernel, block_size }))
        .collect()
}

/// Zipf(s = 1) cumulative distribution over `n` ranks: popularity of
/// cell `i` ∝ 1/(i+1). Sampled by inverting a uniform draw.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&edge| edge < u).min(cdf.len() - 1)
}

fn net_request(scale: Scale, cell: Cell, tenant: &str) -> NetRequest {
    let mut request = NetRequest::new(cell.kernel.name(), scale == Scale::Test)
        .with_block_size(cell.block_size as u32);
    if !tenant.is_empty() {
        request = request.with_tenant(tenant);
    }
    request
}

/// Serial references every completed network response must match bit
/// for bit, keyed by (spec name, block size) — the same discipline as
/// `exp_serve`, now crossing a socket.
fn serial_references(scale: Scale) -> HashMap<(String, usize), Evaluation> {
    let mut references = HashMap::new();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let profile = kernel_profile(&spec);
        for block_size in BLOCK_SIZES {
            let config = EncoderConfig::default()
                .with_block_size(block_size)
                .expect("block sizes 4..=7 are valid");
            let encoded = encode_program(&profile.program, &profile.profile, &config)
                .unwrap_or_else(|e| panic!("{}: encoding failed: {e}", spec.name));
            let (evaluation, _) = evaluate_auto(
                &profile.program,
                &encoded,
                spec.max_steps,
                Some(&profile.edges),
                EvalNeeds::transitions_only(),
            )
            .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", spec.name));
            references.insert((spec.name.clone(), block_size), evaluation);
        }
    }
    references
}

/// Client-side conservation ledger, shared across sender threads.
#[derive(Default)]
struct Tally {
    offered: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    mismatches: AtomicU64,
    wrong_words: AtomicU64,
}

impl Tally {
    /// Classifies one call outcome, verifying completed responses
    /// against the serial references.
    fn record(
        &self,
        outcome: &Result<NetResponse, NetError>,
        references: &HashMap<(String, usize), Evaluation>,
    ) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(response) => match &response.outcome {
                Ok(done) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    self.wrong_words
                        .fetch_add(done.evaluation.decode_mismatches, Ordering::Relaxed);
                    let key = (response.kernel.clone(), response.block_size as usize);
                    if references.get(&key) != Some(&done.evaluation) {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(RemoteError::Overloaded { .. }) | Err(RemoteError::QuotaExceeded { .. }) => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.offered.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }
}

fn unique_sock() -> PathBuf {
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir().join(format!("imt-exp-net-{}-{nonce}.sock", std::process::id()))
}

fn start_server(
    config: ServiceConfig,
    path: &std::path::Path,
) -> (std::sync::Arc<Service>, NetServer) {
    let service = std::sync::Arc::new(Service::start(config));
    let server = NetServer::start(
        std::sync::Arc::clone(&service),
        &ListenAddr::Unix(path.to_path_buf()),
        ServerConfig::default().with_timeouts(Duration::from_millis(300), Duration::from_secs(5)),
    )
    .expect("unix bind");
    (service, server)
}

fn stop_server(service: std::sync::Arc<Service>, server: NetServer) {
    server.stop();
    match std::sync::Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("server kept a service handle after stop"),
    }
}

fn load_client(path: &std::path::Path) -> Client {
    Client::new(
        ListenAddr::Unix(path.to_path_buf()),
        ClientConfig::default()
            .with_deadline(Duration::from_secs(30))
            .with_retries(0),
    )
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

// ---------------------------------------------------------------- phase 1

/// Closed-loop saturation probe: `PROBE_THREADS` clients, round-robin
/// cells, each call back-to-back. Returns achieved requests/second.
fn saturation_probe(
    scale: Scale,
    path: &std::path::Path,
    probe_n: usize,
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &Tally,
) -> f64 {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..PROBE_THREADS {
            scope.spawn(|| {
                let client = load_client(path);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= probe_n {
                        break;
                    }
                    let request = net_request(scale, cells[i % cells.len()], "");
                    let outcome = client.call(&request);
                    tally.record(&outcome, references);
                }
            });
        }
    });
    probe_n as f64 / started.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------- phase 2

/// One scheduled arrival of the open-loop phase.
struct Arrival {
    /// Offset from the phase start.
    at: Duration,
    cell: usize,
    tenant: usize,
}

/// The seeded open-loop schedule: Poisson inter-arrivals at `rate_rps`
/// with occasional 16-deep zero-gap bursts, Zipf cell popularity, and a
/// `HOT_SHARE` hot-tenant mix.
fn schedule(n: usize, rate_rps: f64, rng: &mut XorShift64) -> Vec<Arrival> {
    let cdf = zipf_cdf(cells().len());
    let mut arrivals = Vec::with_capacity(n);
    let mut clock = 0.0f64;
    while arrivals.len() < n {
        let burst = if rng.unit() < 0.005 {
            16.min(n - arrivals.len())
        } else {
            // ln(0) is impossible: unit() < 1.0 strictly.
            clock += -(1.0 - rng.unit()).ln() / rate_rps;
            1
        };
        for _ in 0..burst {
            let tenant = if rng.unit() < HOT_SHARE {
                0
            } else {
                1 + rng.index(TENANTS.len() - 1)
            };
            arrivals.push(Arrival {
                at: Duration::from_secs_f64(clock),
                cell: sample_cdf(&cdf, rng.unit()),
                tenant,
            });
        }
    }
    arrivals
}

struct OpenLoopResult {
    wall: Duration,
    target_rps: f64,
    latencies_ns: Vec<u64>,
    bursts: usize,
}

/// Drives the schedule through `SENDERS` paced sender threads. Open
/// loop: arrival times come from the schedule, not from completions
/// (with enough senders a slow call delays only its own thread's next
/// pick, not the offered process).
fn open_loop(
    scale: Scale,
    path: &std::path::Path,
    arrivals: &[Arrival],
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &Tally,
    per_tenant: &[Tally],
) -> OpenLoopResult {
    let bursts = arrivals.windows(2).filter(|w| w[1].at == w[0].at).count();
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(arrivals.len()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..SENDERS {
            scope.spawn(|| {
                let client = load_client(path);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(arrival) = arrivals.get(i) else {
                        break;
                    };
                    let target = started + arrival.at;
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let request = net_request(scale, cells[arrival.cell], TENANTS[arrival.tenant]);
                    let sent = Instant::now();
                    let outcome = client.call(&request);
                    let latency = sent.elapsed().as_nanos() as u64;
                    tally.record(&outcome, references);
                    per_tenant[arrival.tenant].record(&outcome, references);
                    if matches!(&outcome, Ok(r) if r.outcome.is_ok()) {
                        latencies.lock().expect("latency lock").push(latency);
                    }
                }
            });
        }
    });
    let wall = started.elapsed();
    let mut latencies_ns = latencies.into_inner().expect("latency lock");
    latencies_ns.sort_unstable();
    let span = arrivals.last().map(|a| a.at.as_secs_f64()).unwrap_or(1.0);
    OpenLoopResult {
        wall,
        target_rps: arrivals.len() as f64 / span.max(1e-9),
        latencies_ns,
        bursts,
    }
}

// ---------------------------------------------------------------- phase 3

struct QuotaResult {
    hot_offered: u64,
    hot_completed: u64,
    hot_rejected: u64,
    cold_offered: u64,
    cold_completed: u64,
    cold_share: f64,
}

/// Hot tenant floods from 8 closed-loop threads against a stalled
/// 2-worker service with a per-tenant in-flight quota of 4; three cold
/// tenants trickle paced requests. The quota gate — not luck — must
/// keep the cold tenants whole.
fn quota_fairness(
    scale: Scale,
    path: &std::path::Path,
    hot_per_thread: usize,
    cold_per_tenant: usize,
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &Tally,
) -> QuotaResult {
    let stall = quota_stall(scale);
    let (service, server) = start_server(
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_capacity(64)
            .with_admission(Admission::Reject)
            .with_delivery_latency(stall)
            .with_tenant_quota(4),
        path,
    );
    let hot = Tally::default();
    let cold = Tally::default();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let hot = &hot;
            scope.spawn(move || {
                let client = load_client(path);
                for i in 0..hot_per_thread {
                    let cell = cells[(t * hot_per_thread + i) % cells.len()];
                    let outcome = client.call(&net_request(scale, cell, "hot"));
                    hot.record(&outcome, references);
                }
            });
        }
        for tenant in &TENANTS[1..] {
            let cold = &cold;
            scope.spawn(move || {
                let client = load_client(path);
                for i in 0..cold_per_tenant {
                    std::thread::sleep(stall / 2);
                    let outcome = client.call(&net_request(scale, cells[i % cells.len()], tenant));
                    cold.record(&outcome, references);
                }
            });
        }
    });
    stop_server(service, server);

    // Fold the phase into the global conservation ledger.
    for (source, _) in [(&hot, "hot"), (&cold, "cold")] {
        let (offered, completed, rejected, failed) = source.snapshot();
        tally.offered.fetch_add(offered, Ordering::Relaxed);
        tally.completed.fetch_add(completed, Ordering::Relaxed);
        tally.rejected.fetch_add(rejected, Ordering::Relaxed);
        tally.failed.fetch_add(failed, Ordering::Relaxed);
        tally
            .mismatches
            .fetch_add(source.mismatches.load(Ordering::Relaxed), Ordering::Relaxed);
        tally.wrong_words.fetch_add(
            source.wrong_words.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
    let (hot_offered, hot_completed, hot_rejected, _) = hot.snapshot();
    let (cold_offered, cold_completed, _, _) = cold.snapshot();
    QuotaResult {
        hot_offered,
        hot_completed,
        hot_rejected,
        cold_offered,
        cold_completed,
        cold_share: cold_completed as f64 / cold_offered.max(1) as f64,
    }
}

// ------------------------------------------------------- server modes

/// Which serving front-end a phase runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServeMode {
    /// PR 8's thread-per-connection blocking server.
    Blocking,
    /// The epoll reactor with persistent pipelined connections.
    Reactor,
}

impl ServeMode {
    fn name(self) -> &'static str {
        match self {
            ServeMode::Blocking => "blocking",
            ServeMode::Reactor => "reactor",
        }
    }
}

enum ServerHandle {
    Blocking(NetServer),
    Reactor(ReactorServer),
}

impl ServerHandle {
    fn stats(&self) -> ServerStatsSnapshot {
        match self {
            ServerHandle::Blocking(server) => server.stats(),
            ServerHandle::Reactor(server) => server.stats(),
        }
    }

    fn stop(self) {
        match self {
            ServerHandle::Blocking(server) => server.stop(),
            ServerHandle::Reactor(server) => server.stop(),
        }
    }
}

fn start_mode_server(
    mode: ServeMode,
    config: ServiceConfig,
    path: &std::path::Path,
    read_timeout: Duration,
) -> (std::sync::Arc<Service>, ServerHandle) {
    let service = std::sync::Arc::new(Service::start(config));
    let addr = ListenAddr::Unix(path.to_path_buf());
    let handle = match mode {
        ServeMode::Blocking => ServerHandle::Blocking(
            NetServer::start(
                std::sync::Arc::clone(&service),
                &addr,
                ServerConfig::default().with_timeouts(read_timeout, Duration::from_secs(5)),
            )
            .expect("unix bind"),
        ),
        ServeMode::Reactor => ServerHandle::Reactor(
            ReactorServer::start(
                std::sync::Arc::clone(&service),
                &addr,
                ReactorConfig::default()
                    .with_reactors(REACTORS)
                    .with_read_timeout(read_timeout),
            )
            .expect("unix bind"),
        ),
    };
    (service, handle)
}

fn stop_mode_server(service: std::sync::Arc<Service>, server: ServerHandle) {
    server.stop();
    match std::sync::Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => panic!("server kept a service handle after stop"),
    }
}

/// The deliberately transport-bound service for the scaling and
/// open-loop phases: tiny test-scale kernels behind a delivery stall
/// with workers to spare, so what each mode's rps measures is the
/// serving path — scheduling, syscalls, framing — not kernel math.
fn scaling_service(scale: Scale) -> ServiceConfig {
    let (workers, stall) = match scale {
        Scale::Paper => (64, Duration::from_micros(500)),
        Scale::Test => (16, Duration::from_millis(1)),
    };
    // Queue headroom above the worst-case in-flight load (4096 conns ×
    // pipeline depth 4): the scaling phases measure transport, so the
    // service must not shed its own admission load into the numbers.
    ServiceConfig::default()
        .with_workers(workers)
        .with_queue_capacity(65_536)
        .with_admission(Admission::Reject)
        .with_tenant_quota(65_536)
        .with_delivery_latency(stall)
}

// ------------------------------------------------------- sender child
//
// `exp_net --sender ...` re-enters this binary as one forked load
// generator: pump threads driving either pipelined persistent
// connections or PR 8-style connection-per-request traffic (`--style`),
// tallying outcomes locally (including bit-identity against the serial
// references) and reporting one summary line on stdout plus an
// optional binary latency file. Keeping the generators in separate
// processes keeps their scheduling out of the server process under
// measurement, and is how the 10⁶-request phase reaches open-loop
// scale without a thread per in-flight request.

/// How a sender drives its connections.
///
/// `Pipelined` is the tentpole's new client discipline: persistent
/// connections, up to `depth` requests in flight each. `PerRequest` is
/// PR 8's discipline — connect, one request, close — kept measurable
/// because the tentpole's ≥2× claim is exactly "persistent + pipelined
/// over the reactor" versus "connection-per-request over
/// thread-per-connection", where every request pays connection setup
/// and a server-side thread spawn.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LoadStyle {
    Pipelined,
    PerRequest,
}

impl LoadStyle {
    fn flag(self) -> &'static str {
        match self {
            LoadStyle::Pipelined => "pipelined",
            LoadStyle::PerRequest => "per_request",
        }
    }
}

struct SenderArgs {
    addr: PathBuf,
    requests: usize,
    conns: usize,
    threads: usize,
    depth: usize,
    style: LoadStyle,
    /// Offered requests/second for this process; 0 = closed loop.
    rate: f64,
    seed: u64,
    lat_file: Option<PathBuf>,
}

fn sender_args(args: &[String]) -> SenderArgs {
    let value = |key: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    };
    let num = |key: &str, default: usize| -> usize {
        value(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    SenderArgs {
        addr: PathBuf::from(value("--addr").expect("--sender requires --addr")),
        requests: num("--requests", 0),
        conns: num("--conns", 1).max(1),
        threads: num("--threads", 1).max(1),
        depth: num("--depth", PIPELINE_DEPTH).max(1),
        style: if value("--style") == Some("per_request") {
            LoadStyle::PerRequest
        } else {
            LoadStyle::Pipelined
        },
        rate: value("--rate").and_then(|v| v.parse().ok()).unwrap_or(0.0),
        seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(SEED),
        lat_file: value("--lat").map(PathBuf::from),
    }
}

/// Plain per-thread ledger; folded across threads and then reported to
/// the parent. `per_tenant` rows are [offered, completed, rejected,
/// failed] in `TENANTS` order.
#[derive(Default, Clone)]
struct SenderTally {
    offered: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    mismatches: u64,
    wrong_words: u64,
    per_tenant: [[u64; 4]; 4],
}

impl SenderTally {
    fn fold(&mut self, other: &SenderTally) {
        self.offered += other.offered;
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.failed += other.failed;
        self.mismatches += other.mismatches;
        self.wrong_words += other.wrong_words;
        for (mine, theirs) in self.per_tenant.iter_mut().zip(other.per_tenant.iter()) {
            for (slot, value) in mine.iter_mut().zip(theirs.iter()) {
                *slot += value;
            }
        }
    }
}

/// One request awaiting its pipelined response.
struct PendingReq {
    sent: Instant,
    cell: usize,
    tenant: usize,
}

fn connect_retry(path: &std::path::Path, io_timeout: Duration) -> Option<PersistentClient> {
    let addr = ListenAddr::Unix(path.to_path_buf());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match PersistentClient::connect(&addr, io_timeout) {
            Ok(client) => return Some(client),
            // A full accept backlog during a 4096-connection ramp is
            // expected — back off and retry.
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => return None,
        }
    }
}

/// Classifies one delivered response against the serial references,
/// crediting the tally row for the tenant that asked.
fn classify_response(
    response: &imt_net::msg::NetResponse,
    entry: &PendingReq,
    named: &[(Cell, String)],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &mut SenderTally,
    latencies: &mut Vec<u64>,
) {
    let latency = entry.sent.elapsed().as_nanos() as u64;
    match &response.outcome {
        Ok(done) => {
            tally.completed += 1;
            tally.per_tenant[entry.tenant][1] += 1;
            tally.wrong_words += done.evaluation.decode_mismatches;
            let (cell, spec_name) = &named[entry.cell];
            let key = (response.kernel.clone(), response.block_size as usize);
            // The response must identify as the cell this id asked for
            // — catches any correlation slip — and match the serial
            // reference bit for bit.
            let right_identity =
                response.kernel == *spec_name && response.block_size as usize == cell.block_size;
            if !right_identity || references.get(&key) != Some(&done.evaluation) {
                tally.mismatches += 1;
            }
            latencies.push(latency);
        }
        Err(RemoteError::Overloaded { .. }) | Err(RemoteError::QuotaExceeded { .. }) => {
            tally.rejected += 1;
            tally.per_tenant[entry.tenant][2] += 1;
        }
        Err(_) => {
            tally.failed += 1;
            tally.per_tenant[entry.tenant][3] += 1;
        }
    }
}

/// Receives one pipelined response on `conn`, classifying it against
/// the serial references. Returns `false` when the connection is dead
/// (everything still pending on it resolves as failed).
fn pump_drain(
    conn: &mut PersistentClient,
    pending: &mut HashMap<u64, PendingReq>,
    named: &[(Cell, String)],
    references: &HashMap<(String, usize), Evaluation>,
    tally: &mut SenderTally,
    latencies: &mut Vec<u64>,
) -> bool {
    match conn.recv_any() {
        Ok((id, response)) => {
            let entry = pending
                .remove(&id)
                .expect("client outstanding mirrors the pending map");
            classify_response(&response, &entry, named, references, tally, latencies);
            true
        }
        Err(_) => {
            for (_, entry) in pending.drain() {
                tally.failed += 1;
                tally.per_tenant[entry.tenant][3] += 1;
            }
            false
        }
    }
}

/// One PR 8-discipline load thread: every request opens its own
/// connection, sends once, reads once, and closes — `conn_count` of
/// them concurrently open per batch. This is the baseline the tentpole
/// claims ≥2× over: each request pays connect + accept + a server-side
/// thread spawn, and the measured latency starts *before* the connect
/// because that setup cost is exactly what the old path charges.
#[allow(clippy::too_many_arguments)]
fn per_request_thread(
    path: &std::path::Path,
    n: usize,
    conn_count: usize,
    rate: f64,
    seed: u64,
    named: &[(Cell, String)],
    cdf: &[f64],
    references: &HashMap<(String, usize), Evaluation>,
) -> (SenderTally, Vec<u64>, Duration) {
    let io_timeout = Duration::from_secs(30);
    let mut tally = SenderTally::default();
    let mut latencies: Vec<u64> = Vec::with_capacity(n);
    let mut rng = XorShift64::new(seed | 1);
    let started = Instant::now();
    let mut clock = 0.0f64;
    let mut remaining = n;
    while remaining > 0 {
        let batch = conn_count.min(remaining);
        let mut open: Vec<(PersistentClient, u64, PendingReq)> = Vec::with_capacity(batch);
        for _ in 0..batch {
            if rate > 0.0 {
                clock += -(1.0 - rng.unit()).ln() / rate;
                let target = started + Duration::from_secs_f64(clock);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
            }
            let cell_ix = sample_cdf(cdf, rng.unit());
            let tenant = if rng.unit() < HOT_SHARE {
                0
            } else {
                1 + rng.index(TENANTS.len() - 1)
            };
            tally.offered += 1;
            tally.per_tenant[tenant][0] += 1;
            let entry = PendingReq {
                sent: Instant::now(),
                cell: cell_ix,
                tenant,
            };
            let request = net_request(Scale::Test, named[cell_ix].0, TENANTS[tenant]);
            let sent = connect_retry(path, io_timeout)
                .and_then(|mut conn| conn.send(&request).ok().map(|id| (conn, id)));
            match sent {
                Some((conn, id)) => open.push((conn, id, entry)),
                None => {
                    tally.failed += 1;
                    tally.per_tenant[tenant][3] += 1;
                }
            }
        }
        for (mut conn, id, entry) in open {
            match conn.recv(id) {
                Ok(response) => {
                    classify_response(
                        &response,
                        &entry,
                        named,
                        references,
                        &mut tally,
                        &mut latencies,
                    );
                }
                Err(_) => {
                    tally.failed += 1;
                    tally.per_tenant[entry.tenant][3] += 1;
                }
            }
            // Dropping the client closes the connection: one request,
            // one connection, as the PR 8 client shipped.
        }
        remaining -= batch;
    }
    (tally, latencies, started.elapsed())
}

/// One pump thread: a bundle of persistent connections loaded
/// round-robin with up to `depth` pipelined requests each. With
/// `rate > 0` sends follow a seeded Poisson schedule (open loop);
/// otherwise the pipeline refills as fast as responses drain (closed
/// loop, for saturation).
#[allow(clippy::too_many_arguments)]
fn pump_thread(
    path: &std::path::Path,
    n: usize,
    conn_count: usize,
    depth: usize,
    rate: f64,
    seed: u64,
    named: &[(Cell, String)],
    cdf: &[f64],
    references: &HashMap<(String, usize), Evaluation>,
) -> (SenderTally, Vec<u64>, Duration) {
    let io_timeout = Duration::from_secs(30);
    let mut tally = SenderTally::default();
    let mut latencies: Vec<u64> = Vec::with_capacity(n);
    let mut conns: Vec<Option<PersistentClient>> = (0..conn_count)
        .map(|_| connect_retry(path, io_timeout))
        .collect();
    let mut pending: Vec<HashMap<u64, PendingReq>> =
        (0..conn_count).map(|_| HashMap::new()).collect();
    let mut rng = XorShift64::new(seed | 1);
    let started = Instant::now();
    let mut clock = 0.0f64;
    for i in 0..n {
        if rate > 0.0 {
            // Open loop: the schedule, not completions, decides when
            // the next request goes out.
            clock += -(1.0 - rng.unit()).ln() / rate;
            let target = started + Duration::from_secs_f64(clock);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let c = i % conn_count;
        if pending[c].len() >= depth {
            let drained = match conns[c].as_mut() {
                Some(conn) => pump_drain(
                    conn,
                    &mut pending[c],
                    named,
                    references,
                    &mut tally,
                    &mut latencies,
                ),
                None => false,
            };
            if !drained {
                conns[c] = connect_retry(path, io_timeout);
            }
        }
        let cell_ix = sample_cdf(cdf, rng.unit());
        let tenant = if rng.unit() < HOT_SHARE {
            0
        } else {
            1 + rng.index(TENANTS.len() - 1)
        };
        tally.offered += 1;
        tally.per_tenant[tenant][0] += 1;
        let request = net_request(Scale::Test, named[cell_ix].0, TENANTS[tenant]);
        let sent = match conns[c].as_mut() {
            Some(conn) => match conn.send(&request) {
                Ok(id) => {
                    pending[c].insert(
                        id,
                        PendingReq {
                            sent: Instant::now(),
                            cell: cell_ix,
                            tenant,
                        },
                    );
                    true
                }
                Err(_) => false,
            },
            None => false,
        };
        if !sent {
            tally.failed += 1;
            tally.per_tenant[tenant][3] += 1;
            for (_, entry) in pending[c].drain() {
                tally.failed += 1;
                tally.per_tenant[entry.tenant][3] += 1;
            }
            conns[c] = connect_retry(path, io_timeout);
        }
    }
    // Drain everything still in flight.
    for c in 0..conn_count {
        while !pending[c].is_empty() {
            let Some(conn) = conns[c].as_mut() else {
                for (_, entry) in pending[c].drain() {
                    tally.failed += 1;
                    tally.per_tenant[entry.tenant][3] += 1;
                }
                break;
            };
            if !pump_drain(
                conn,
                &mut pending[c],
                named,
                references,
                &mut tally,
                &mut latencies,
            ) {
                conns[c] = None;
            }
        }
    }
    (tally, latencies, started.elapsed())
}

/// Entry point for `exp_net --sender`: runs the pump threads, then
/// prints a single machine-parsable tally line.
fn sender_main(args: &[String]) {
    let a = sender_args(args);
    let named: Vec<(Cell, String)> = cells()
        .into_iter()
        .map(|cell| {
            let name = Scale::Test.spec(cell.kernel).name.clone();
            (cell, name)
        })
        .collect();
    let cdf = zipf_cdf(named.len());
    let references = serial_references(Scale::Test);
    let threads = a.threads.clamp(1, a.conns);
    let mut results: Vec<(SenderTally, Vec<u64>, Duration)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let n_t = a.requests / threads + usize::from(t < a.requests % threads);
            let conns_t = (a.conns / threads + usize::from(t < a.conns % threads)).max(1);
            let rate_t = a.rate / threads as f64;
            let seed_t = a.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let (named, cdf, references, path) = (&named, &cdf, &references, a.addr.as_path());
            let style = a.style;
            handles.push(scope.spawn(move || match style {
                LoadStyle::Pipelined => pump_thread(
                    path, n_t, conns_t, a.depth, rate_t, seed_t, named, cdf, references,
                ),
                LoadStyle::PerRequest => {
                    per_request_thread(path, n_t, conns_t, rate_t, seed_t, named, cdf, references)
                }
            }));
        }
        for handle in handles {
            results.push(handle.join().expect("pump thread"));
        }
    });
    let mut tally = SenderTally::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut wall = Duration::ZERO;
    for (thread_tally, thread_latencies, elapsed) in results {
        tally.fold(&thread_tally);
        latencies.extend_from_slice(&thread_latencies);
        wall = wall.max(elapsed);
    }
    if let Some(lat_path) = &a.lat_file {
        let mut bytes = Vec::with_capacity(latencies.len() * 8);
        for v in &latencies {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(lat_path, bytes).expect("write latency file");
    }
    let mut line = format!(
        "SENDER offered={} completed={} rejected={} failed={} mismatches={} \
         wrong_words={} wall_ms={}",
        tally.offered,
        tally.completed,
        tally.rejected,
        tally.failed,
        tally.mismatches,
        tally.wrong_words,
        wall.as_millis(),
    );
    for (i, tenant) in TENANTS.iter().enumerate() {
        let [o, c, r, f] = tally.per_tenant[i];
        write!(line, " {tenant}={o}:{c}:{r}:{f}").expect("write to String");
    }
    println!("{line}");
}

// ------------------------------------------------------ sender parent

/// Merged view over all `--sender` child processes of one phase.
#[derive(Default)]
struct SenderReport {
    offered: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    mismatches: u64,
    wrong_words: u64,
    per_tenant: [[u64; 4]; 4],
    /// Slowest child's first-send → last-recv span (the honest divisor
    /// for throughput).
    wall: Duration,
    /// Sorted, merged across children; empty unless requested.
    latencies_ns: Vec<u64>,
}

fn sender_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|tok| {
            tok.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("sender line missing {key}: {line}"))
}

fn sender_tenant(line: &str, name: &str) -> [u64; 4] {
    let raw = line
        .split_whitespace()
        .find_map(|tok| {
            tok.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('='))
        })
        .unwrap_or_else(|| panic!("sender line missing tenant {name}: {line}"));
    let mut out = [0u64; 4];
    for (slot, part) in out.iter_mut().zip(raw.split(':')) {
        *slot = part.parse().expect("tenant counter");
    }
    out
}

/// Forks `procs` sender processes (re-executing this binary with
/// `--sender`) and merges their tallies. `rate` is the total offered
/// requests/second across all processes; 0 runs closed-loop.
#[allow(clippy::too_many_arguments)]
fn run_senders(
    path: &std::path::Path,
    requests: usize,
    conns: usize,
    depth: usize,
    style: LoadStyle,
    rate: f64,
    procs: usize,
    threads_per_proc: usize,
    seed: u64,
    collect_latencies: bool,
) -> SenderReport {
    let exe = std::env::current_exe().expect("own binary path");
    let mut children = Vec::new();
    let mut lat_files: Vec<PathBuf> = Vec::new();
    for p in 0..procs {
        let n_p = requests / procs + usize::from(p < requests % procs);
        let conns_p = (conns / procs + usize::from(p < conns % procs)).max(1);
        let mut cmd = Command::new(&exe);
        cmd.arg("--sender")
            .arg("--addr")
            .arg(path)
            .arg("--requests")
            .arg(n_p.to_string())
            .arg("--conns")
            .arg(conns_p.to_string())
            .arg("--threads")
            .arg(threads_per_proc.to_string())
            .arg("--depth")
            .arg(depth.to_string())
            .arg("--style")
            .arg(style.flag())
            .arg("--seed")
            .arg((seed ^ (p as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95)).to_string())
            .stdout(Stdio::piped());
        if rate > 0.0 {
            cmd.arg("--rate").arg(format!("{:.3}", rate / procs as f64));
        }
        if collect_latencies {
            let lat = std::env::temp_dir()
                .join(format!("imt-exp-net-lat-{}-{p}.bin", std::process::id()));
            cmd.arg("--lat").arg(&lat);
            lat_files.push(lat);
        }
        children.push(cmd.spawn().expect("spawn sender process"));
    }
    let mut report = SenderReport::default();
    for child in children {
        let output = child.wait_with_output().expect("sender process exits");
        assert!(output.status.success(), "a sender process failed");
        let text = String::from_utf8_lossy(&output.stdout);
        let line = text
            .lines()
            .find(|l| l.starts_with("SENDER "))
            .expect("sender tally line");
        report.offered += sender_u64(line, "offered");
        report.completed += sender_u64(line, "completed");
        report.rejected += sender_u64(line, "rejected");
        report.failed += sender_u64(line, "failed");
        report.mismatches += sender_u64(line, "mismatches");
        report.wrong_words += sender_u64(line, "wrong_words");
        report.wall = report
            .wall
            .max(Duration::from_millis(sender_u64(line, "wall_ms")));
        for (i, tenant) in TENANTS.iter().enumerate() {
            let counts = sender_tenant(line, tenant);
            for (slot, value) in report.per_tenant[i].iter_mut().zip(counts.iter()) {
                *slot += value;
            }
        }
    }
    for lat in &lat_files {
        if let Ok(bytes) = std::fs::read(lat) {
            report.latencies_ns.extend(
                bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
            );
        }
        let _ = std::fs::remove_file(lat);
    }
    report.latencies_ns.sort_unstable();
    report
}

/// Folds a sender-phase report into the global conservation ledger.
fn fold_report(report: &SenderReport, tally: &Tally) {
    tally.offered.fetch_add(report.offered, Ordering::Relaxed);
    tally
        .completed
        .fetch_add(report.completed, Ordering::Relaxed);
    tally.rejected.fetch_add(report.rejected, Ordering::Relaxed);
    tally.failed.fetch_add(report.failed, Ordering::Relaxed);
    tally
        .mismatches
        .fetch_add(report.mismatches, Ordering::Relaxed);
    tally
        .wrong_words
        .fetch_add(report.wrong_words, Ordering::Relaxed);
}

// ---------------------------------------------------------------- phase 6

struct ScalingCell {
    conns: usize,
    blocking_rps: f64,
    reactor_rps: f64,
}

/// Sweeps connection counts against both serving paths end to end:
/// the blocking thread-per-connection server driven by PR 8's
/// connection-per-request clients (every request pays connect, accept,
/// and a server thread spawn), versus the reactor driven by persistent
/// pipelined connections — the exact before/after the tentpole claims
/// ≥2× on. Closed-loop saturation per cell, multi-process senders.
fn conn_scaling(scale: Scale, tally: &Tally) -> Vec<ScalingCell> {
    let (conn_counts, per_cell_floor) = scaling_counts(scale);
    let procs = sender_procs(scale);
    let mut out = Vec::new();
    for &conns in conn_counts {
        let per_cell = per_cell_floor.max(conns * SCALING_REQS_PER_CONN);
        let mut blocking_rps = 0.0f64;
        let mut reactor_rps = 0.0f64;
        for mode in [ServeMode::Blocking, ServeMode::Reactor] {
            let path = unique_sock();
            // The generous read timeout matters for the reactor cells:
            // at 4096 persistent connections each sees seconds between
            // frames, which must be idleness, not a timeout disconnect.
            let (service, server) =
                start_mode_server(mode, scaling_service(scale), &path, Duration::from_secs(30));
            let threads = (conns / procs).clamp(1, 8);
            let seed = SEED ^ ((conns as u64) << 8) ^ u64::from(mode == ServeMode::Reactor);
            let style = match mode {
                ServeMode::Blocking => LoadStyle::PerRequest,
                ServeMode::Reactor => LoadStyle::Pipelined,
            };
            let report = run_senders(
                &path,
                per_cell,
                conns,
                PIPELINE_DEPTH,
                style,
                0.0,
                procs,
                threads,
                seed,
                false,
            );
            stop_mode_server(service, server);
            let _ = std::fs::remove_file(&path);
            fold_report(&report, tally);
            assert_eq!(
                report.failed,
                0,
                "{} mode at {} conns must not fail requests",
                mode.name(),
                conns
            );
            let rps = report.completed as f64 / report.wall.as_secs_f64().max(1e-9);
            match mode {
                ServeMode::Blocking => blocking_rps = rps,
                ServeMode::Reactor => reactor_rps = rps,
            }
        }
        println!(
            "  {conns:>5} conns: thread-per-conn (conn/request) {blocking_rps:>8.0} rps   \
             reactor (pipelined) {reactor_rps:>8.0} rps   speedup ×{:.2}",
            reactor_rps / blocking_rps.max(1e-9),
        );
        out.push(ScalingCell {
            conns,
            blocking_rps,
            reactor_rps,
        });
    }
    out
}

// ---------------------------------------------------------------- phase 7

struct MegaResult {
    requests: u64,
    conns: usize,
    offered_rps: f64,
    achieved_rps: f64,
    wall: Duration,
    p50: f64,
    p99: f64,
    p999: f64,
    offered: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    cold_share: f64,
    server_connections: u64,
    server_requests: u64,
}

/// The 10⁶-request open-loop run: multi-process senders offer a seeded
/// Poisson schedule at ~70% of the measured reactor saturation over
/// persistent pipelined connections.
fn mega_open_loop(scale: Scale, reactor_rps: f64, tally: &Tally) -> MegaResult {
    let (total, conns) = mega_counts(scale);
    let procs = sender_procs(scale);
    let rate = (reactor_rps * 0.7).max(200.0);
    let path = unique_sock();
    let (service, server) = start_mode_server(
        ServeMode::Reactor,
        scaling_service(scale),
        &path,
        Duration::from_secs(30),
    );
    let threads = (conns / procs).clamp(1, 8);
    let report = run_senders(
        &path,
        total,
        conns,
        PIPELINE_DEPTH,
        LoadStyle::Pipelined,
        rate,
        procs,
        threads,
        SEED ^ 0x1_000_000,
        true,
    );
    let server_stats = server.stats();
    stop_mode_server(service, server);
    let _ = std::fs::remove_file(&path);
    fold_report(&report, tally);
    let cold_offered: u64 = (1..TENANTS.len()).map(|i| report.per_tenant[i][0]).sum();
    let cold_completed: u64 = (1..TENANTS.len()).map(|i| report.per_tenant[i][1]).sum();
    MegaResult {
        requests: total as u64,
        conns,
        offered_rps: rate,
        achieved_rps: report.completed as f64 / report.wall.as_secs_f64().max(1e-9),
        wall: report.wall,
        p50: percentile_ms(&report.latencies_ns, 50.0),
        p99: percentile_ms(&report.latencies_ns, 99.0),
        p999: percentile_ms(&report.latencies_ns, 99.9),
        offered: report.offered,
        completed: report.completed,
        rejected: report.rejected,
        failed: report.failed,
        cold_share: cold_completed as f64 / cold_offered.max(1) as f64,
        server_connections: server_stats.connections,
        server_requests: server_stats.requests,
    }
}

// ---------------------------------------------------------------- phase 4

struct ChaosResult {
    rounds: usize,
    by_label: Vec<(&'static str, usize)>,
    disconnects: usize,
    protocol_errors: u64,
    read_timeouts: u64,
    restart_ok: bool,
    post_chaos_ok: bool,
    /// Post-restart pipelined out-of-order bit-identity over one
    /// persistent connection; only probed in reactor mode.
    pipelined_ok: Option<bool>,
}

/// Writes `bytes` on a fresh raw connection and drains whatever comes
/// back (bounded). The server must stay up whatever happens here.
fn fire_raw(path: &std::path::Path, bytes: &[u8], linger: Option<Duration>) {
    let Ok(mut stream) = UnixStream::connect(path) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if let Some(pause) = linger {
        // Slow-loris: half the bytes, then a stall longer than the
        // server's read timeout.
        let half = bytes.len() / 2;
        let _ = stream.write_all(&bytes[..half]);
        std::thread::sleep(pause);
        let _ = stream.write_all(&bytes[half..]);
    } else {
        let _ = stream.write_all(bytes);
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = Vec::new();
    let _ = std::io::Read::by_ref(&mut stream)
        .take(1 << 16)
        .read_to_end(&mut sink);
}

fn chaos_matrix(
    scale: Scale,
    mode: ServeMode,
    path: &std::path::Path,
    random_rounds: usize,
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
) -> ChaosResult {
    // The reactor never blocks a thread, so it runs with typed
    // admission refusals; the blocking server keeps its PR 8 setup.
    let chaos_service = || {
        let config = ServiceConfig::default().with_workers(2);
        match mode {
            ServeMode::Blocking => config,
            ServeMode::Reactor => config.with_admission(Admission::Reject),
        }
    };
    let (service, server) =
        start_mode_server(mode, chaos_service(), path, Duration::from_millis(300));
    let mut rng = XorShift64::new(SEED ^ 0xC4A0_5EED);
    let mut by_label: Vec<(&'static str, usize)> = ALL_INJECTIONS
        .iter()
        .map(|injection| (injection.label(), 0))
        .collect();
    let mut tick = |label: &'static str| {
        if let Some(entry) = by_label.iter_mut().find(|(l, _)| *l == label) {
            entry.1 += 1;
        }
    };

    let frame_for = |rng: &mut XorShift64| {
        let cell = cells[rng.index(cells.len())];
        let request = net_request(scale, cell, "hot");
        Frame::new(FrameKind::Request, rng.next_u64(), request.encode())
            .expect("request payloads are far under the cap")
            .to_bytes()
    };

    // Guaranteed coverage: every injection kind at least twice, then the
    // seeded random tail.
    let mut plan: Vec<Injection> = Vec::new();
    for injection in ALL_INJECTIONS {
        plan.push(injection);
        plan.push(injection);
    }
    let probe_len = frame_for(&mut rng).len();
    while plan.len() < random_rounds {
        plan.push(Injection::sample(&mut rng, probe_len));
    }

    for injection in &plan {
        let bytes = frame_for(&mut rng);
        let corrupted = injection.apply(&bytes);
        let linger = injection
            .split_point(corrupted.len())
            .map(|_| Duration::from_millis(450));
        fire_raw(path, &corrupted, linger);
        tick(injection.label());
    }

    // Mid-request disconnects: a header and partial payload, then a
    // slammed socket.
    let disconnects = 8;
    for _ in 0..disconnects {
        let bytes = frame_for(&mut rng);
        let keep = bytes.len() / 2;
        if let Ok(mut stream) = UnixStream::connect(path) {
            let _ = stream.write_all(&bytes[..keep]);
            drop(stream);
        }
    }
    // Give the server time to observe the half-frames time out.
    std::thread::sleep(Duration::from_millis(400));

    let stats = server.stats();
    stop_mode_server(service, server);

    // Server restart on the same path: the next bind must reclaim the
    // socket file and serve again.
    let (service, server) =
        start_mode_server(mode, chaos_service(), path, Duration::from_millis(300));
    let client = load_client(path);
    let cell = cells[0];
    let response = client.call(&net_request(scale, cell, ""));
    let restart_ok = matches!(&response, Ok(r) if r.outcome.is_ok());
    let post_chaos_ok = match &response {
        Ok(r) => match &r.outcome {
            Ok(done) => {
                let key = (r.kernel.clone(), r.block_size as usize);
                references.get(&key) == Some(&done.evaluation)
            }
            Err(_) => false,
        },
        Err(_) => false,
    };
    let pipelined_ok =
        (mode == ServeMode::Reactor).then(|| pipelined_post_chaos(scale, path, cells, references));
    stop_mode_server(service, server);

    ChaosResult {
        rounds: plan.len(),
        by_label,
        disconnects,
        protocol_errors: stats.protocol_errors,
        read_timeouts: stats.read_timeouts,
        restart_ok,
        post_chaos_ok,
        pipelined_ok,
    }
}

/// Pipelines four requests on one persistent connection after the
/// chaos matrix and restart, draining answers in *reverse* send order:
/// the request-id correlation, not arrival order, must deliver every
/// response bit-identical to the serial reference.
fn pipelined_post_chaos(
    scale: Scale,
    path: &std::path::Path,
    cells: &[Cell],
    references: &HashMap<(String, usize), Evaluation>,
) -> bool {
    let addr = ListenAddr::Unix(path.to_path_buf());
    let Ok(mut client) = PersistentClient::connect(&addr, Duration::from_secs(30)) else {
        return false;
    };
    let mut ids = Vec::new();
    for &cell in cells.iter().take(4) {
        match client.send(&net_request(scale, cell, "hot")) {
            Ok(id) => ids.push(id),
            Err(_) => return false,
        }
    }
    for &id in ids.iter().rev() {
        match client.recv(id) {
            Ok(response) => {
                let identical = match &response.outcome {
                    Ok(done) => {
                        let key = (response.kernel.clone(), response.block_size as usize);
                        references.get(&key) == Some(&done.evaluation)
                    }
                    Err(_) => false,
                };
                if response.id != id || !identical {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    !client.is_poisoned()
}

// ---------------------------------------------------------------- phase 5

/// Runs one traced request and asserts its causal timeline covers the
/// full read → decode → queue → warm → encode → respond path.
fn trace_coverage(scale: Scale, mode: ServeMode, path: &std::path::Path) -> Vec<String> {
    let previous = imt_obs::mode();
    imt_obs::set_mode(imt_obs::Mode::Trace);
    imt_obs::trace::reset();
    // A fresh service so the first request must warm the profile memo.
    let (service, server) = start_mode_server(
        mode,
        ServiceConfig::default().with_workers(1),
        path,
        Duration::from_millis(300),
    );
    let client = load_client(path);
    let response = client
        .call(&net_request(
            scale,
            Cell {
                kernel: Kernel::Tri,
                block_size: 5,
            },
            "hot",
        ))
        .expect("traced request transports");
    assert!(response.outcome.is_ok(), "traced request completes");
    stop_mode_server(service, server);
    let (events, _dropped) = imt_obs::trace::snapshot();
    imt_obs::set_mode(previous);

    let mut by_trace: HashMap<u64, Vec<String>> = HashMap::new();
    for event in &events {
        by_trace
            .entry(event.trace_id)
            .or_default()
            .push(event.name.clone());
    }
    let needed = [
        "net.read",
        "net.decode",
        "serve.queue_wait",
        "serve.warm",
        "serve.execute",
        "serve.respond",
        "net.write",
    ];
    let covered = by_trace
        .into_values()
        .find(|names| needed.iter().all(|n| names.iter().any(|have| have == n)));
    let mut stages = covered
        .unwrap_or_else(|| panic!("no single trace covered the full network timeline {needed:?}"));
    stages.sort();
    stages.dedup();
    stages
}

// ------------------------------------------------------------------ main

fn main() {
    // Child mode: this process is one forked load generator, not the
    // experiment driver.
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--sender") {
        sender_main(&argv);
        return;
    }

    let _guard = imt_bench::begin_run("exp_net");
    let scale = Scale::from_args();
    let (probe_n, main_n, hot_per_thread, cold_per_tenant, chaos_rounds) = counts(scale);
    let cells = cells();
    println!(
        "E-N — wire protocol + sharded serving under load and chaos: \
         probe {probe_n}, open-loop {main_n}, quota {}+{}, chaos {chaos_rounds} \
         ({} scale, seed {SEED:#x})\n",
        8 * hot_per_thread,
        3 * cold_per_tenant,
        scale.name(),
    );

    let references = serial_references(scale);
    let tally = Tally::default();
    let per_tenant: Vec<Tally> = TENANTS.iter().map(|_| Tally::default()).collect();
    let path = unique_sock();

    // Phases 1+2 share one server: 4 workers, rejecting admission, a
    // quota far above what SENDERS threads can hold in flight.
    let (service, server) = start_server(
        ServiceConfig::default()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_max_batch(8)
            .with_admission(Admission::Reject)
            .with_tenant_quota(1024),
        &path,
    );

    let sat_rps = saturation_probe(scale, &path, probe_n, &cells, &references, &tally);
    println!("saturation probe: {PROBE_THREADS} closed-loop clients → {sat_rps:.0} req/s");

    let mut rng = XorShift64::new(SEED);
    let arrivals = schedule(main_n, sat_rps * 0.75, &mut rng);
    let open = open_loop(
        scale,
        &path,
        &arrivals,
        &cells,
        &references,
        &tally,
        &per_tenant,
    );
    let memo_entries = service.profile_memo_entries();
    let service_stats = service.stats();
    let server_stats = server.stats();
    stop_server(service, server);

    let p50 = percentile_ms(&open.latencies_ns, 50.0);
    let p99 = percentile_ms(&open.latencies_ns, 99.0);
    let p999 = percentile_ms(&open.latencies_ns, 99.9);
    println!(
        "open loop: {} arrivals over {:.1}s (target {:.0} req/s, {} in bursts) → \
         p50 {p50:.2}ms  p99 {p99:.2}ms  p99.9 {p999:.2}ms",
        arrivals.len(),
        open.wall.as_secs_f64(),
        open.target_rps,
        open.bursts,
    );
    println!(
        "  sharded memo: {memo_entries} kernel instances warm across {} requests; \
         server saw {} connections, {} requests",
        service_stats.completed, server_stats.connections, server_stats.requests,
    );
    for (i, tenant) in TENANTS.iter().enumerate() {
        let (offered, completed, rejected, failed) = per_tenant[i].snapshot();
        println!(
            "  tenant {tenant:<6} offered {offered:>7}  completed {completed:>7}  \
             rejected {rejected:>5}  failed {failed:>3}"
        );
    }

    let quota = quota_fairness(
        scale,
        &path,
        hot_per_thread,
        cold_per_tenant,
        &cells,
        &references,
        &tally,
    );
    println!(
        "\nquota fairness: hot offered {} → completed {} / quota-shed {}; \
         cold offered {} → completed {} (share {:.3})",
        quota.hot_offered,
        quota.hot_completed,
        quota.hot_rejected,
        quota.cold_offered,
        quota.cold_completed,
        quota.cold_share,
    );

    let chaos = chaos_matrix(
        scale,
        ServeMode::Blocking,
        &path,
        chaos_rounds,
        &cells,
        &references,
    );
    println!(
        "\nchaos matrix: {} corruption rounds + {} mid-request disconnects:",
        chaos.rounds, chaos.disconnects,
    );
    for (label, n) in &chaos.by_label {
        println!("  {label:<16} ×{n}");
    }
    println!(
        "  server counted {} protocol errors, {} read timeouts; \
         restart on same path: {}; post-chaos round-trip bit-identical: {}",
        chaos.protocol_errors,
        chaos.read_timeouts,
        if chaos.restart_ok { "ok" } else { "FAILED" },
        if chaos.post_chaos_ok { "ok" } else { "FAILED" },
    );

    let trace_stages = trace_coverage(scale, ServeMode::Blocking, &path);
    println!(
        "\ntrace timeline: one network request covered {}",
        trace_stages.join(" → "),
    );

    // --------------------------------------- the event-driven phases
    let (_, per_cell_floor) = scaling_counts(scale);
    println!(
        "\nconnection scaling (≥{per_cell_floor} requests/cell, ≥{SCALING_REQS_PER_CONN} \
         per connection, {} sender processes; blocking = conn-per-request clients, \
         reactor = persistent ×{PIPELINE_DEPTH} pipelined over {REACTORS} shards):",
        sender_procs(scale),
    );
    let scaling = conn_scaling(scale, &tally);

    // The saturation the big open-loop run is paced against: the
    // reactor's rps at the ≥1024-connection gate cell.
    let reactor_gate_rps = scaling
        .iter()
        .find(|cell| cell.conns >= 1024)
        .or(scaling.last())
        .map(|cell| cell.reactor_rps)
        .expect("scaling sweep is nonempty");

    let mega = mega_open_loop(scale, reactor_gate_rps, &tally);
    println!(
        "\nopen loop ×10⁶: {} requests over {} conns via {} sender processes \
         (offered {:.0} rps) → achieved {:.0} rps over {:.1}s",
        mega.requests,
        mega.conns,
        sender_procs(scale),
        mega.offered_rps,
        mega.achieved_rps,
        mega.wall.as_secs_f64(),
    );
    println!(
        "  p50 {:.2}ms  p99 {:.2}ms  p99.9 {:.2}ms; {} completed + {} rejected + {} failed \
         == {} offered; cold share {:.3}; server saw {} connections, {} requests",
        mega.p50,
        mega.p99,
        mega.p999,
        mega.completed,
        mega.rejected,
        mega.failed,
        mega.offered,
        mega.cold_share,
        mega.server_connections,
        mega.server_requests,
    );

    let chaos_reactor = chaos_matrix(
        scale,
        ServeMode::Reactor,
        &path,
        chaos_rounds,
        &cells,
        &references,
    );
    println!(
        "\nchaos matrix (reactor): {} rounds + {} disconnects → {} protocol errors, \
         {} read timeouts; restart: {}; post-chaos: {}; pipelined out-of-order: {}",
        chaos_reactor.rounds,
        chaos_reactor.disconnects,
        chaos_reactor.protocol_errors,
        chaos_reactor.read_timeouts,
        if chaos_reactor.restart_ok {
            "ok"
        } else {
            "FAILED"
        },
        if chaos_reactor.post_chaos_ok {
            "ok"
        } else {
            "FAILED"
        },
        if chaos_reactor.pipelined_ok == Some(true) {
            "ok"
        } else {
            "FAILED"
        },
    );

    let trace_reactor = trace_coverage(scale, ServeMode::Reactor, &path);
    println!(
        "trace timeline (reactor): one network request covered {}",
        trace_reactor.join(" → "),
    );

    // ------------------------------------------------------- the gates
    let (offered, completed, rejected, failed) = tally.snapshot();
    let mismatches = tally.mismatches.load(Ordering::Relaxed);
    let wrong_words = tally.wrong_words.load(Ordering::Relaxed);
    assert_eq!(
        completed + rejected + failed,
        offered,
        "conservation: every offered request must resolve exactly once"
    );
    assert_eq!(
        mismatches, 0,
        "every completed response must be bit-identical to serial execution"
    );
    assert_eq!(wrong_words, 0, "zero wrong decoded words end-to-end");
    assert_eq!(
        failed, 0,
        "well-formed requests never fail under this workload"
    );
    assert!(
        chaos.protocol_errors >= 8,
        "injected corruptions must surface as typed protocol errors \
         (got {})",
        chaos.protocol_errors
    );
    assert!(
        chaos.read_timeouts >= 1,
        "slow-loris half-writes must trip the read timeout"
    );
    assert!(chaos.restart_ok, "the server must restart on the same path");
    assert!(
        chaos.post_chaos_ok,
        "a clean request after the chaos matrix must round-trip bit-identically"
    );
    assert!(
        quota.hot_rejected > 0,
        "the flooding tenant must be shed at the quota gate"
    );
    let fair_floor = 0.9;
    assert!(
        quota.cold_share >= fair_floor,
        "cold tenants completed only {:.3} of their offered load (floor {fair_floor})",
        quota.cold_share
    );
    assert!(sat_rps > 0.0, "saturation throughput must be nonzero");

    // Event-driven front-end gates.
    for cell in &scaling {
        assert!(
            cell.blocking_rps > 0.0 && cell.reactor_rps > 0.0,
            "both modes must serve at {} conns",
            cell.conns
        );
    }
    if scale == Scale::Paper {
        for cell in scaling.iter().filter(|cell| cell.conns >= 1024) {
            assert!(
                cell.reactor_rps >= 2.0 * cell.blocking_rps,
                "reactor must out-serve thread-per-connection ≥2× at {} conns \
                 (blocking {:.0} rps, reactor {:.0} rps)",
                cell.conns,
                cell.blocking_rps,
                cell.reactor_rps
            );
        }
    }
    assert_eq!(
        mega.offered, mega.requests,
        "the open-loop run must offer every scheduled request"
    );
    assert!(
        mega.cold_share >= fair_floor,
        "10⁶-run cold tenants completed only {:.3} of their offered load (floor {fair_floor})",
        mega.cold_share
    );
    assert!(
        chaos_reactor.protocol_errors >= 8,
        "reactor-mode corruptions must surface as typed protocol errors (got {})",
        chaos_reactor.protocol_errors
    );
    assert!(
        chaos_reactor.read_timeouts >= 1,
        "slow-loris half-writes must trip the reactor's mid-frame sweep"
    );
    assert!(
        chaos_reactor.restart_ok && chaos_reactor.post_chaos_ok,
        "the reactor must restart on the same path and stay bit-identical"
    );
    assert_eq!(
        chaos_reactor.pipelined_ok,
        Some(true),
        "post-chaos pipelined out-of-order responses must stay bit-identical"
    );

    println!("\nchecks: wrong-word responses over the wire = 0 across {completed} completed");
    println!(
        "checks: injected corruptions -> typed errors, panics = 0 \
         ({} protocol errors, {} read timeouts)",
        chaos.protocol_errors, chaos.read_timeouts,
    );
    println!(
        "checks: conservation holds: {completed} completed + {rejected} rejected + \
         {failed} failed == {offered} offered"
    );
    println!(
        "checks: starved-tenant completion share {:.3} >= fair floor {fair_floor}",
        quota.cold_share
    );
    if scale == Scale::Paper {
        for cell in scaling.iter().filter(|cell| cell.conns >= 1024) {
            println!(
                "checks: reactor speedup x{:.2} >= 2.00 at {} conns",
                cell.reactor_rps / cell.blocking_rps.max(1e-9),
                cell.conns
            );
        }
    }
    println!(
        "checks: 10^6-run conservation {} + {} + {} == {} offered, cold share {:.3}",
        mega.completed, mega.rejected, mega.failed, mega.offered, mega.cold_share
    );

    // --------------------------------------------------------- the doc
    let round = |v: f64| Json::F64((v * 1000.0).round() / 1000.0);
    let mut manifest = imt_obs::manifest::Manifest::new("exp_net");
    manifest.set(
        "settings",
        Json::obj(vec![
            ("seed", Json::U64(SEED)),
            ("senders", Json::U64(SENDERS as u64)),
            ("probe_threads", Json::U64(PROBE_THREADS as u64)),
            ("sender_procs", Json::U64(sender_procs(scale) as u64)),
            ("pipeline_depth", Json::U64(PIPELINE_DEPTH as u64)),
            ("reactors", Json::U64(REACTORS as u64)),
        ]),
    );
    manifest.capture();
    let doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        ("seed", Json::U64(SEED)),
        ("offered", Json::U64(offered)),
        ("completed", Json::U64(completed)),
        ("rejected", Json::U64(rejected)),
        ("failed", Json::U64(failed)),
        ("wrong_word_responses", Json::U64(mismatches + wrong_words)),
        ("saturation_rps", round(sat_rps)),
        (
            "open_loop",
            Json::obj(vec![
                ("arrivals", Json::U64(arrivals.len() as u64)),
                ("target_rps", round(open.target_rps)),
                ("wall_ms", round(open.wall.as_secs_f64() * 1e3)),
                ("burst_arrivals", Json::U64(open.bursts as u64)),
                ("p50_ms", round(p50)),
                ("p99_ms", round(p99)),
                ("p999_ms", round(p999)),
                ("memo_entries", Json::U64(memo_entries as u64)),
            ]),
        ),
        (
            "quota",
            Json::obj(vec![
                ("hot_offered", Json::U64(quota.hot_offered)),
                ("hot_completed", Json::U64(quota.hot_completed)),
                ("hot_rejected", Json::U64(quota.hot_rejected)),
                ("cold_offered", Json::U64(quota.cold_offered)),
                ("cold_completed", Json::U64(quota.cold_completed)),
                ("cold_share", round(quota.cold_share)),
                ("fair_floor", round(fair_floor)),
            ]),
        ),
        (
            "chaos",
            Json::obj(vec![
                ("rounds", Json::U64(chaos.rounds as u64)),
                ("disconnects", Json::U64(chaos.disconnects as u64)),
                ("protocol_errors", Json::U64(chaos.protocol_errors)),
                ("read_timeouts", Json::U64(chaos.read_timeouts)),
                ("restart_ok", Json::Bool(chaos.restart_ok)),
                ("post_chaos_ok", Json::Bool(chaos.post_chaos_ok)),
                ("panics", Json::U64(0)),
            ]),
        ),
        (
            "trace_stages",
            Json::Arr(trace_stages.iter().map(Json::str).collect()),
        ),
        (
            "conn_scaling",
            Json::obj(vec![
                ("blocking_style", Json::str("conn_per_request")),
                ("reactor_style", Json::str("persistent_pipelined")),
                (
                    "cells",
                    Json::Arr(
                        scaling
                            .iter()
                            .map(|cell| {
                                Json::obj(vec![
                                    ("conns", Json::U64(cell.conns as u64)),
                                    ("blocking_rps", round(cell.blocking_rps)),
                                    ("reactor_rps", round(cell.reactor_rps)),
                                    (
                                        "speedup",
                                        round(cell.reactor_rps / cell.blocking_rps.max(1e-9)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "reactor",
            Json::obj(vec![
                ("reactors", Json::U64(REACTORS as u64)),
                ("pipeline_depth", Json::U64(PIPELINE_DEPTH as u64)),
                ("saturation_rps", round(reactor_gate_rps)),
                (
                    "open_loop_1m",
                    Json::obj(vec![
                        ("requests", Json::U64(mega.requests)),
                        ("conns", Json::U64(mega.conns as u64)),
                        ("sender_procs", Json::U64(sender_procs(scale) as u64)),
                        ("offered_rps", round(mega.offered_rps)),
                        ("achieved_rps", round(mega.achieved_rps)),
                        ("wall_ms", round(mega.wall.as_secs_f64() * 1e3)),
                        ("p50_ms", round(mega.p50)),
                        ("p99_ms", round(mega.p99)),
                        ("p999_ms", round(mega.p999)),
                        ("completed", Json::U64(mega.completed)),
                        ("rejected", Json::U64(mega.rejected)),
                        ("failed", Json::U64(mega.failed)),
                        ("cold_share", round(mega.cold_share)),
                    ]),
                ),
                (
                    "chaos",
                    Json::obj(vec![
                        ("rounds", Json::U64(chaos_reactor.rounds as u64)),
                        ("protocol_errors", Json::U64(chaos_reactor.protocol_errors)),
                        ("read_timeouts", Json::U64(chaos_reactor.read_timeouts)),
                        ("restart_ok", Json::Bool(chaos_reactor.restart_ok)),
                        ("post_chaos_ok", Json::Bool(chaos_reactor.post_chaos_ok)),
                        (
                            "pipelined_ok",
                            Json::Bool(chaos_reactor.pipelined_ok == Some(true)),
                        ),
                        ("panics", Json::U64(0)),
                    ]),
                ),
                (
                    "trace_stages",
                    Json::Arr(trace_reactor.iter().map(Json::str).collect()),
                ),
            ]),
        ),
        ("obs", manifest.to_json()),
    ]);
    let out = "results/BENCH_net.json";
    match std::fs::write(out, format!("{}\n", doc.render_pretty())) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => println!("\ncould not write {out}: {e}"),
    }
    let _ = std::fs::remove_file(&path);
    imt_bench::finish_run("exp_net");
}
