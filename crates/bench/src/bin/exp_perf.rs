//! Performance experiment **E-P**: wall-clock cost of the encode pipeline
//! itself, serial vs parallel.
//!
//! The paper's encoding is a compile-time step, but its cost still gates
//! design-space exploration (every Figure 6 cell is a full profile →
//! encode → evaluate run). This binary times `encode_program` for each
//! kernel with the worker fan-out disabled (`IMT_THREADS=1`) and enabled
//! (all cores), prints the comparison, and writes the machine-readable
//! numbers to `results/BENCH_pipeline.json`.
//!
//! It also times the codec layer itself both ways through the same
//! 32-lane text image: the seed's reference path (exhaustive per-block
//! search over `Vec<bool>` lanes) against the memoized-codebook packed
//! path — the algorithmic speedup that holds even on one core.
//!
//! The outputs of both modes are asserted identical word-for-word — the
//! speedup is free, not a different answer.

use std::time::Instant;

use imt_bench::runner::{profiled_run, Scale};
use imt_bench::table::Table;
use imt_bitcode::packed::PackedSeq;
use imt_bitcode::par::thread_count;
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use imt_core::{encode_program, EncodedProgram, EncoderConfig};
use imt_kernels::{Kernel, KernelRun};

/// Timed repetitions per (kernel, mode); the mean is reported.
const REPS: u32 = 5;

struct PerfPoint {
    kernel: &'static str,
    text_words: usize,
    encoded_blocks: usize,
    serial_ms: f64,
    parallel_ms: f64,
    codec_reference_ms: f64,
    codec_fast_ms: f64,
}

impl PerfPoint {
    fn speedup(&self) -> f64 {
        if self.parallel_ms == 0.0 {
            return 1.0;
        }
        self.serial_ms / self.parallel_ms
    }

    fn codec_speedup(&self) -> f64 {
        if self.codec_fast_ms == 0.0 {
            return 1.0;
        }
        self.codec_reference_ms / self.codec_fast_ms
    }

    fn blocks_per_sec(&self) -> f64 {
        if self.parallel_ms == 0.0 {
            return 0.0;
        }
        self.encoded_blocks as f64 / (self.parallel_ms / 1e3)
    }
}

/// Times the codec layer over all 32 lanes of the text image both ways:
/// the seed's reference path (exhaustive search, `Vec<bool>` streams) and
/// the memoized-codebook packed path. Returns mean ms per full-image
/// encode, `(reference, fast)`.
fn time_codec(text: &[u32], codec: &StreamCodec) -> (f64, f64) {
    let words: Vec<u64> = text.iter().map(|&w| u64::from(w)).collect();
    let lanes: Vec<PackedSeq> = (0..32)
        .map(|lane| PackedSeq::from_lane(&words, lane))
        .collect();

    let reference_streams: Vec<_> = lanes
        .iter()
        .map(|lane| codec.encode_reference(&lane.to_bitseq()))
        .collect();
    let start = Instant::now();
    for _ in 0..REPS {
        for lane in &lanes {
            std::hint::black_box(codec.encode_reference(&lane.to_bitseq()));
        }
    }
    let reference_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(REPS);

    let fast_streams: Vec<_> = lanes.iter().map(|lane| codec.encode_packed(lane)).collect();
    let start = Instant::now();
    for _ in 0..REPS {
        for lane in &lanes {
            std::hint::black_box(codec.encode_packed(lane));
        }
    }
    let fast_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(REPS);

    assert_eq!(
        reference_streams, fast_streams,
        "packed codec diverged from reference"
    );
    (reference_ms, fast_ms)
}

/// Mean encode time in milliseconds over [`REPS`] runs (after one
/// warm-up, which also pre-builds the shared codebooks).
fn time_encode(run: &KernelRun, config: &EncoderConfig) -> (f64, EncodedProgram) {
    let encoded = encode_program(&run.program, &run.profile, config).expect("encode failed");
    let start = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(
            encode_program(&run.program, &run.profile, config).expect("encode failed"),
        );
    }
    (
        start.elapsed().as_secs_f64() * 1e3 / f64::from(REPS),
        encoded,
    )
}

fn main() {
    let scale = Scale::from_args();
    let config = EncoderConfig::default();
    let threads = thread_count();
    println!("E-P — encode pipeline wall-time, serial vs {threads} threads ({scale:?} scale)\n");

    let mut points = Vec::new();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let run = profiled_run(&spec);

        // Serial reference: the IMT_THREADS override is read per fan-out,
        // so flipping the variable around the calls is sufficient.
        std::env::set_var("IMT_THREADS", "1");
        let (serial_ms, serial_encoded) = time_encode(&run, &config);
        std::env::remove_var("IMT_THREADS");
        let (parallel_ms, parallel_encoded) = time_encode(&run, &config);

        assert_eq!(
            serial_encoded, parallel_encoded,
            "{}: parallel encode diverged from serial",
            spec.name
        );
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(config.block_size()).expect("default k is valid"),
        );
        let (codec_reference_ms, codec_fast_ms) = time_codec(&run.program.text, &codec);
        points.push(PerfPoint {
            kernel: kernel.name(),
            text_words: run.program.text.len(),
            encoded_blocks: serial_encoded.report.encoded.len(),
            serial_ms,
            parallel_ms,
            codec_reference_ms,
            codec_fast_ms,
        });
    }

    let mut table = Table::new(
        [
            "kernel",
            "text words",
            "blocks",
            "serial (ms)",
            "parallel (ms)",
            "speedup",
            "blocks/s",
            "codec ref (ms)",
            "codec fast (ms)",
            "codec speedup",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &points {
        table.row(vec![
            p.kernel.to_string(),
            p.text_words.to_string(),
            p.encoded_blocks.to_string(),
            format!("{:.2}", p.serial_ms),
            format!("{:.2}", p.parallel_ms),
            format!("{:.2}x", p.speedup()),
            format!("{:.0}", p.blocks_per_sec()),
            format!("{:.2}", p.codec_reference_ms),
            format!("{:.2}", p.codec_fast_ms),
            format!("{:.1}x", p.codec_speedup()),
        ]);
    }
    print!("{}", table.render());
    println!("\nreading: both thread modes produce bit-identical schedules, and the");
    println!("packed codebook codec matches the exhaustive reference stream for");
    println!("stream (both asserted above); the speedups change only wall-clock");
    println!("time. On a single-core host the thread speedup is ~1x by");
    println!("construction and the codec columns are the ones that matter.");

    let mut json = String::from("{\n  \"threads\": ");
    json.push_str(&threads.to_string());
    json.push_str(",\n  \"reps\": ");
    json.push_str(&REPS.to_string());
    json.push_str(",\n  \"kernels\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"text_words\": {}, \"encoded_blocks\": {}, \
             \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \
             \"blocks_per_sec\": {:.1}, \"codec_reference_ms\": {:.3}, \
             \"codec_fast_ms\": {:.3}, \"codec_speedup\": {:.3}}}{}\n",
            p.kernel,
            p.text_words,
            p.encoded_blocks,
            p.serial_ms,
            p.parallel_ms,
            p.speedup(),
            p.blocks_per_sec(),
            p.codec_reference_ms,
            p.codec_fast_ms,
            p.codec_speedup(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "results/BENCH_pipeline.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        // Running from a different working directory is not an error worth
        // failing the experiment over; the numbers are on stdout too.
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
