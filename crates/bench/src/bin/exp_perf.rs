//! Performance experiment **E-P**: wall-clock cost of the encode pipeline
//! itself, serial vs parallel.
//!
//! The paper's encoding is a compile-time step, but its cost still gates
//! design-space exploration (every Figure 6 cell is a full profile →
//! encode → evaluate run). This binary times `encode_program` for each
//! kernel with the worker fan-out disabled (`IMT_THREADS=1`) and enabled
//! (all cores), prints the comparison, and writes the machine-readable
//! numbers to `results/BENCH_pipeline.json`.
//!
//! It also times the codec layer itself both ways through the same
//! 32-lane text image: the seed's reference path (exhaustive per-block
//! search over `Vec<bool>` lanes) against the memoized-codebook packed
//! path — the algorithmic speedup that holds even on one core.
//!
//! All timings go through `imt-obs` always-on spans (`perf.encode`,
//! `perf.codec` and `perf.grid`, labelled `kernel/mode`), so the same
//! numbers land in the registry, the JSON artifact, and — under
//! `IMT_OBS` — the run manifest.
//!
//! The second section times the Figure 6 grid both ways: the seed's
//! per-cell path (one profiling simulation plus one full evaluation
//! simulation per cell) against the replay path (one fetch-edge recording
//! per kernel, closed-form replay per cell). Before any timing, every one
//! of the 24 grid evaluations is asserted **bit-identical** between the
//! two paths — total and per-lane transition counts, fetch split,
//! behaviour — and the grid speedup lands in `results/BENCH_replay.json`.
//!
//! The outputs of both modes are asserted identical word-for-word — the
//! speedup is free, not a different answer.
//!
//! The third section exercises the bit-sliced streaming codec
//! (`imt_bitcode::slice`): first every kernel × k=4..7 is asserted
//! bit-identical between the per-lane scalar oracle, the bit-sliced
//! scalar pass and the detected SIMD pass, then an **xlarge** synthetic
//! text (≥1M words at paper scale, seeded generator) is pushed through
//! all three, reporting throughput in per-lane codebook block solves per
//! second and a memory-traffic model (bytes moved per useful byte)
//! alongside wall time. Two hard asserts at paper scale: every kernel's
//! parallel speedup gate stays ≥ 0.95 (best of paired batched samples —
//! guarding the fan-out floor fix), and the sliced xlarge pass clears
//! 10× the best committed `BENCH_pipeline.json` pipeline throughput.

use imt_bench::runner::{profiled_run, Scale};
use imt_bench::table::Table;
use imt_bitcode::lanes::encode_words;
use imt_bitcode::packed::PackedSeq;
use imt_bitcode::par::thread_count;
use imt_bitcode::simd::{self, SimdPath};
use imt_bitcode::slice::{encode_words_sliced_with, SlicedEncoding};
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use imt_core::eval::{evaluate, evaluate_replay};
use imt_core::{encode_program, EncodedProgram, EncoderConfig};
use imt_kernels::{Kernel, KernelRun};
use imt_obs::json::Json;
use imt_sim::edge::FetchEdgeProfile;
use std::time::Instant;

/// Timed repetitions per (kernel, mode); the mean is reported.
const REPS: u32 = 5;

/// Timed repetitions per xlarge (k, path) cell; the minimum is reported
/// (the xlarge pass is long enough that the min is stable and noise only
/// ever adds time).
const XLARGE_REPS: u32 = 3;

/// Encodes per timing sample in the speedup-gate measurement
/// ([`batched_encode_ms`]): one kernel encode is tens of µs, far below
/// timer-jitter scale, so the gate times batches.
const SPEEDUP_BATCH: u32 = 32;

/// The best per-kernel `blocks_per_sec` in the committed PR-5-era
/// `results/BENCH_pipeline.json` (sor, paper scale, one thread). The
/// xlarge streaming pass must beat ten times this number.
const BASELINE_BLOCKS_PER_SEC: f64 = 87_283.189;

/// Memory-traffic model of the streaming pass, per input word: 8 B input
/// read + 8 B tile store + 8 B lane-row read + 8 B accumulator write +
/// 8 B output-tile read + 8 B output write.
const SLICED_BYTES_PER_WORD: f64 = 48.0;

/// Useful bytes per word: the 8 B read plus the 8 B written that any
/// encoder must move.
const USEFUL_BYTES_PER_WORD: f64 = 16.0;

struct PerfPoint {
    kernel: &'static str,
    text_words: usize,
    encoded_blocks: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup_gate: f64,
    codec_reference_ms: f64,
    codec_fast_ms: f64,
    codec_sliced_ms: f64,
}

impl PerfPoint {
    fn speedup(&self) -> f64 {
        if self.parallel_ms == 0.0 {
            return 1.0;
        }
        self.serial_ms / self.parallel_ms
    }

    fn codec_speedup(&self) -> f64 {
        if self.codec_fast_ms == 0.0 {
            return 1.0;
        }
        self.codec_reference_ms / self.codec_fast_ms
    }

    fn sliced_speedup(&self) -> f64 {
        if self.codec_sliced_ms == 0.0 {
            return 1.0;
        }
        self.codec_reference_ms / self.codec_sliced_ms
    }

    fn blocks_per_sec(&self) -> f64 {
        if self.parallel_ms == 0.0 {
            return 0.0;
        }
        self.encoded_blocks as f64 / (self.parallel_ms / 1e3)
    }
}

/// Mean milliseconds per rep recorded under `name{label}` — the span
/// totals replace the bespoke `Instant` arithmetic the seed carried.
fn span_mean_ms(name: &'static str, label: &str) -> f64 {
    let stat = imt_obs::registry::span_stat_labeled(name, label);
    debug_assert_eq!(stat.count(), u64::from(REPS), "{name}{{{label}}}");
    stat.total_ns() as f64 / f64::from(REPS) / 1e6
}

/// Total milliseconds recorded under `name{label}` (single-shot spans).
fn span_total_ms(name: &'static str, label: &str) -> f64 {
    imt_obs::registry::span_stat_labeled(name, label).total_ns() as f64 / 1e6
}

struct ReplayPoint {
    kernel: &'static str,
    fetches: u64,
    distinct_edges: usize,
    full_ms: f64,
    replay_ms: f64,
}

impl ReplayPoint {
    fn speedup(&self) -> f64 {
        if self.replay_ms == 0.0 {
            return 1.0;
        }
        self.full_ms / self.replay_ms
    }
}

/// One kernel's slice of the Figure 6 grid (block sizes 4–7), timed both
/// ways. The bit-identity of every cell is asserted first, outside the
/// timed regions, so the comparison times equal answers.
fn time_grid_slice(kernel: Kernel, scale: Scale, block_sizes: &[usize]) -> ReplayPoint {
    let spec = scale.spec(kernel);
    let program = spec.assemble();
    let edges = FetchEdgeProfile::record(&program, spec.max_steps)
        .unwrap_or_else(|e| panic!("{}: recording failed: {e}", spec.name));
    assert_eq!(
        edges.stdout(),
        spec.expected_output,
        "{}: kernel output diverged from the golden model",
        spec.name
    );
    let counts = edges.per_index_counts();
    let configs: Vec<EncoderConfig> = block_sizes
        .iter()
        .map(|&k| {
            EncoderConfig::default()
                .with_block_size(k)
                .expect("block sizes 4..=7 are valid")
        })
        .collect();

    // Correctness first: every grid cell must be bit-identical between
    // replay and full simulation — totals, all 32 lanes, fetch split.
    for config in &configs {
        let encoded = encode_program(&program, &counts, config).expect("encode failed");
        let full = evaluate(&program, &encoded, spec.max_steps).expect("full evaluation failed");
        let replay = evaluate_replay(&program, &encoded, &edges).expect("replay failed");
        assert_eq!(
            replay,
            full,
            "{} k={}: replay diverged from full simulation",
            spec.name,
            config.block_size()
        );
    }

    // The seed's per-cell path: one profiling simulation plus one full
    // evaluation simulation for every cell.
    let full_label = format!("{}/full", kernel.name());
    {
        let _span = imt_obs::span::timed_labeled("perf.grid", &full_label);
        for config in &configs {
            let run = spec.run().expect("profiling run failed");
            let encoded =
                encode_program(&run.program, &run.profile, config).expect("encode failed");
            std::hint::black_box(
                evaluate(&run.program, &encoded, spec.max_steps).expect("full evaluation failed"),
            );
        }
    }

    // The replay path: one recording per kernel, closed-form replay per
    // cell.
    let replay_label = format!("{}/replay", kernel.name());
    {
        let _span = imt_obs::span::timed_labeled("perf.grid", &replay_label);
        let edges = FetchEdgeProfile::record(&program, spec.max_steps).expect("recording failed");
        let counts = edges.per_index_counts();
        for config in &configs {
            let encoded = encode_program(&program, &counts, config).expect("encode failed");
            std::hint::black_box(
                evaluate_replay(&program, &encoded, &edges).expect("replay failed"),
            );
        }
    }

    ReplayPoint {
        kernel: kernel.name(),
        fetches: edges.fetches(),
        distinct_edges: edges.distinct_edges(),
        full_ms: span_total_ms("perf.grid", &full_label),
        replay_ms: span_total_ms("perf.grid", &replay_label),
    }
}

/// Times the codec layer over all 32 lanes of the text image three ways:
/// the seed's reference path (exhaustive search, `Vec<bool>` streams),
/// the memoized-codebook packed path, and the bit-sliced streaming pass
/// on the detected SIMD path. Returns mean ms per full-image encode,
/// `(reference, fast, sliced)`.
fn time_codec(kernel: &'static str, text: &[u32], codec: &StreamCodec) -> (f64, f64, f64) {
    let words: Vec<u64> = text.iter().map(|&w| u64::from(w)).collect();
    let lanes: Vec<PackedSeq> = (0..32)
        .map(|lane| PackedSeq::from_lane(&words, lane))
        .collect();

    let reference_streams: Vec<_> = lanes
        .iter()
        .map(|lane| codec.encode_reference(&lane.to_bitseq()))
        .collect();
    let reference_label = format!("{kernel}/reference");
    for _ in 0..REPS {
        let _span = imt_obs::span::timed_labeled("perf.codec", &reference_label);
        for lane in &lanes {
            std::hint::black_box(codec.encode_reference(&lane.to_bitseq()));
        }
    }

    let fast_streams: Vec<_> = lanes.iter().map(|lane| codec.encode_packed(lane)).collect();
    let fast_label = format!("{kernel}/packed");
    for _ in 0..REPS {
        let _span = imt_obs::span::timed_labeled("perf.codec", &fast_label);
        for lane in &lanes {
            std::hint::black_box(codec.encode_packed(lane));
        }
    }

    assert_eq!(
        reference_streams, fast_streams,
        "packed codec diverged from reference"
    );

    // The bit-sliced streaming pass solves all 32 lanes at once; its
    // per-lane streams must match the packed oracle exactly.
    let path = simd::detected_path();
    let sliced = encode_words_sliced_with(&words, 32, codec, path).expect("width 32 is valid");
    for (lane, fast) in fast_streams.iter().enumerate() {
        assert_eq!(
            &sliced.lane_stream(lane),
            fast,
            "{kernel}: sliced lane {lane} diverged from the packed oracle"
        );
    }
    let sliced_label = format!("{kernel}/sliced");
    for _ in 0..REPS {
        let _span = imt_obs::span::timed_labeled("perf.codec", &sliced_label);
        std::hint::black_box(
            encode_words_sliced_with(&words, 32, codec, path).expect("width 32 is valid"),
        );
    }

    (
        span_mean_ms("perf.codec", &reference_label),
        span_mean_ms("perf.codec", &fast_label),
        span_mean_ms("perf.codec", &sliced_label),
    )
}

/// Mean encode time in milliseconds over [`REPS`] runs (after one
/// warm-up, which also pre-builds the shared codebooks), recorded under
/// `perf.encode{label}`.
fn time_encode(label: &str, run: &KernelRun, config: &EncoderConfig) -> (f64, EncodedProgram) {
    let encoded = encode_program(&run.program, &run.profile, config).expect("encode failed");
    for _ in 0..REPS {
        let _span = imt_obs::span::timed_labeled("perf.encode", label);
        std::hint::black_box(
            encode_program(&run.program, &run.profile, config).expect("encode failed"),
        );
    }
    (span_mean_ms("perf.encode", label), encoded)
}

/// One batched encode sample: wall time of [`SPEEDUP_BATCH`] encodes,
/// in ms per encode. Tiny kernels take tens of µs per encode — far below
/// timer-jitter scale — so the speedup gate times batches.
fn batched_encode_ms(run: &KernelRun, config: &EncoderConfig) -> f64 {
    let start = Instant::now();
    for _ in 0..SPEEDUP_BATCH {
        std::hint::black_box(
            encode_program(&run.program, &run.profile, config).expect("encode failed"),
        );
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(SPEEDUP_BATCH)
}

/// The speedup-gate measurement: [`REPS`] *adjacent* serial/parallel
/// sample pairs, returning the best per-pair ratio. A real parallel
/// regression (the thread-spawn-per-tiny-fan-out bug the fan-out floor
/// fixes) depresses every pair, so even the best pair stays low; host
/// jitter (preemption on the shared CI core, frequency drift) only hits
/// individual samples and cannot fail a healthy build.
fn speedup_gate(run: &KernelRun, config: &EncoderConfig) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        std::env::set_var("IMT_THREADS", "1");
        let serial = batched_encode_ms(run, config);
        std::env::remove_var("IMT_THREADS");
        let parallel = batched_encode_ms(run, config);
        if parallel > 0.0 {
            best = best.max(serial / parallel);
        }
    }
    best
}

/// Asserts that the per-lane scalar oracle, the bit-sliced scalar pass
/// and the detected SIMD pass produce bit-identical encodings for every
/// kernel text at every Figure 6 block size. Returns the detected path
/// name for the report.
fn assert_bit_identity(scale: Scale, block_sizes: &[usize]) -> &'static str {
    let path = simd::detected_path();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let program = spec.assemble();
        let words: Vec<u64> = program.text.iter().map(|&w| u64::from(w)).collect();
        for &k in block_sizes {
            let codec =
                StreamCodec::new(StreamCodecConfig::block_size(k).expect("k 4..=7 is valid"));
            let oracle = SlicedEncoding::from_lanes(
                &encode_words(&words, 32, &codec).expect("width 32 is valid"),
            );
            for check in [SimdPath::Scalar, path] {
                let sliced =
                    encode_words_sliced_with(&words, 32, &codec, check).expect("width 32 is valid");
                assert_eq!(
                    sliced,
                    oracle,
                    "{} k={k}: {} sliced encode diverged from the scalar oracle",
                    spec.name,
                    check.name()
                );
            }
        }
    }
    path.name()
}

/// Deterministic loop-structured synthetic text: a small library of
/// seeded "loop bodies" revisited with random trip counts, mimicking the
/// vertical regularity of real instruction streams (the reason the
/// encoding works at all) at arbitrary scale.
fn synthetic_text(seed: u64, len: usize) -> Vec<u64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let bodies: Vec<Vec<u64>> = (0..8)
        .map(|_| {
            let body_len = rng.gen_range(16usize..64);
            (0..body_len).map(|_| u64::from(rng.gen::<u32>())).collect()
        })
        .collect();
    let mut words = Vec::with_capacity(len);
    while words.len() < len {
        let body = &bodies[rng.gen_range(0..bodies.len())];
        for _ in 0..rng.gen_range(1usize..8) {
            if words.len() + body.len() > len {
                words.extend_from_slice(&body[..len - words.len()]);
                break;
            }
            words.extend_from_slice(body);
        }
    }
    words
}

struct XlargePoint {
    k: usize,
    oracle_ms: f64,
    sliced_scalar_ms: f64,
    sliced_simd_ms: f64,
    block_positions: usize,
    lane_blocks: u64,
}

impl XlargePoint {
    fn speedup_vs_oracle(&self) -> f64 {
        if self.sliced_simd_ms == 0.0 {
            return 1.0;
        }
        self.oracle_ms / self.sliced_simd_ms
    }

    /// Per-lane codebook block solves per second on the SIMD pass — the
    /// unit the ≥10× floor is asserted in.
    fn lane_blocks_per_sec(&self) -> f64 {
        if self.sliced_simd_ms == 0.0 {
            return 0.0;
        }
        self.lane_blocks as f64 / (self.sliced_simd_ms / 1e3)
    }
}

/// Modelled memory bandwidth of the streaming pass: bytes moved under the
/// [`SLICED_BYTES_PER_WORD`] traffic model over the measured wall time.
fn xlarge_bandwidth_gbps(words: usize, ms: f64) -> f64 {
    if ms == 0.0 {
        return 0.0;
    }
    words as f64 * SLICED_BYTES_PER_WORD / (ms / 1e3) / 1e9
}

/// Minimum-of-[`XLARGE_REPS`] wall time of one closure, in milliseconds,
/// with every rep also recorded under `perf.xlarge{label}`.
fn time_xlarge_ms<R>(label: &str, mut f: impl FnMut() -> R) -> f64 {
    let mut min_ms = f64::INFINITY;
    for _ in 0..XLARGE_REPS {
        let start = Instant::now();
        {
            let _span = imt_obs::span::timed_labeled("perf.xlarge", label);
            std::hint::black_box(f());
        }
        min_ms = min_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    min_ms
}

/// The xlarge sweep: one multi-million-word synthetic text pushed through
/// the per-lane scalar oracle, the bit-sliced scalar pass and the
/// detected SIMD pass at every Figure 6 block size, all three asserted
/// bit-identical. Returns the points plus the word count.
fn time_xlarge(scale: Scale, block_sizes: &[usize]) -> (Vec<XlargePoint>, usize) {
    let words = match scale {
        Scale::Paper => 1 << 20, // ≥ 1M instructions
        Scale::Test => 1 << 14,
    };
    let text = synthetic_text(0x1A7_CAFE, words);
    let path = simd::detected_path();
    let mut points = Vec::new();
    for &k in block_sizes {
        let codec = StreamCodec::new(StreamCodecConfig::block_size(k).expect("k 4..=7 is valid"));
        // Correctness outside the timed region: all three paths agree.
        let oracle = SlicedEncoding::from_lanes(
            &encode_words(&text, 32, &codec).expect("width 32 is valid"),
        );
        let scalar = encode_words_sliced_with(&text, 32, &codec, SimdPath::Scalar)
            .expect("width 32 is valid");
        assert_eq!(
            scalar, oracle,
            "xlarge k={k}: bit-sliced scalar diverged from the per-lane oracle"
        );
        let simd_enc =
            encode_words_sliced_with(&text, 32, &codec, path).expect("width 32 is valid");
        assert_eq!(
            simd_enc, oracle,
            "xlarge k={k}: SIMD pass diverged from the per-lane oracle"
        );
        let block_positions = simd_enc.block_count();

        let oracle_ms = time_xlarge_ms(&format!("k{k}/oracle"), || {
            encode_words(&text, 32, &codec).expect("width 32 is valid")
        });
        let sliced_scalar_ms = time_xlarge_ms(&format!("k{k}/sliced-scalar"), || {
            encode_words_sliced_with(&text, 32, &codec, SimdPath::Scalar)
                .expect("width 32 is valid")
        });
        let sliced_simd_ms = time_xlarge_ms(&format!("k{k}/sliced-simd"), || {
            encode_words_sliced_with(&text, 32, &codec, path).expect("width 32 is valid")
        });

        points.push(XlargePoint {
            k,
            oracle_ms,
            sliced_scalar_ms,
            sliced_simd_ms,
            block_positions,
            lane_blocks: block_positions as u64 * 32,
        });
    }
    (points, words)
}

fn main() {
    let scale = Scale::from_args();
    let config = EncoderConfig::default();
    let threads = thread_count();
    println!("E-P — encode pipeline wall-time, serial vs {threads} threads ({scale:?} scale)\n");

    let mut points = Vec::new();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let run = profiled_run(&spec);

        // Serial reference: the IMT_THREADS override is read per fan-out,
        // so flipping the variable around the calls is sufficient.
        std::env::set_var("IMT_THREADS", "1");
        let (serial_ms, serial_encoded) =
            time_encode(&format!("{}/serial", kernel.name()), &run, &config);
        std::env::remove_var("IMT_THREADS");
        let (parallel_ms, parallel_encoded) =
            time_encode(&format!("{}/parallel", kernel.name()), &run, &config);
        let speedup_gate = speedup_gate(&run, &config);

        assert_eq!(
            serial_encoded, parallel_encoded,
            "{}: parallel encode diverged from serial",
            spec.name
        );
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(config.block_size()).expect("default k is valid"),
        );
        let (codec_reference_ms, codec_fast_ms, codec_sliced_ms) =
            time_codec(kernel.name(), &run.program.text, &codec);
        points.push(PerfPoint {
            kernel: kernel.name(),
            text_words: run.program.text.len(),
            encoded_blocks: serial_encoded.report.encoded.len(),
            serial_ms,
            parallel_ms,
            speedup_gate,
            codec_reference_ms,
            codec_fast_ms,
            codec_sliced_ms,
        });
    }

    let mut table = Table::new(
        [
            "kernel",
            "text words",
            "blocks",
            "serial (ms)",
            "parallel (ms)",
            "speedup",
            "blocks/s",
            "codec ref (ms)",
            "codec fast (ms)",
            "codec sliced (ms)",
            "sliced speedup",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &points {
        table.row(vec![
            p.kernel.to_string(),
            p.text_words.to_string(),
            p.encoded_blocks.to_string(),
            format!("{:.2}", p.serial_ms),
            format!("{:.2}", p.parallel_ms),
            format!("{:.2}x", p.speedup()),
            format!("{:.0}", p.blocks_per_sec()),
            format!("{:.2}", p.codec_reference_ms),
            format!("{:.2}", p.codec_fast_ms),
            format!("{:.2}", p.codec_sliced_ms),
            format!("{:.1}x", p.sliced_speedup()),
        ]);
    }
    print!("{}", table.render());
    println!("\nreading: both thread modes produce bit-identical schedules, and the");
    println!("packed codebook codec matches the exhaustive reference stream for");
    println!("stream (both asserted above); the speedups change only wall-clock");
    println!("time. On a single-core host the thread speedup is ~1x by");
    println!("construction and the codec columns are the ones that matter.");
    if scale == Scale::Paper {
        // The fan-out floor fix: no kernel may regress from going
        // parallel. Min-of-reps so a single preempted rep cannot flake.
        for p in &points {
            assert!(
                p.speedup_gate >= 0.95,
                "{}: parallel speedup {:.3}x (best of {REPS} paired samples) is below the \
                 0.95 floor",
                p.kernel,
                p.speedup_gate
            );
        }
        println!("\nevery kernel's parallel speedup gate is >= 0.95 (asserted).");
    }

    println!("\nreplay evaluation vs full simulation — Figure 6 grid (k = 4..7)\n");
    let block_sizes = [4usize, 5, 6, 7];
    let replay_points: Vec<ReplayPoint> = Kernel::ALL
        .iter()
        .map(|&kernel| time_grid_slice(kernel, scale, &block_sizes))
        .collect();
    let mut replay_table = Table::new(
        [
            "kernel",
            "fetches",
            "edges",
            "full sim (ms)",
            "replay (ms)",
            "speedup",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &replay_points {
        replay_table.row(vec![
            p.kernel.to_string(),
            p.fetches.to_string(),
            p.distinct_edges.to_string(),
            format!("{:.2}", p.full_ms),
            format!("{:.2}", p.replay_ms),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    print!("{}", replay_table.render());
    let grid_full_ms: f64 = replay_points.iter().map(|p| p.full_ms).sum();
    let grid_replay_ms: f64 = replay_points.iter().map(|p| p.replay_ms).sum();
    let grid_speedup = if grid_replay_ms == 0.0 {
        1.0
    } else {
        grid_full_ms / grid_replay_ms
    };
    println!(
        "\ngrid total: full sim {grid_full_ms:.1} ms, replay {grid_replay_ms:.1} ms \
         ({grid_speedup:.2}x)"
    );
    println!("all 24 grid cells asserted bit-identical between the two paths");
    println!("(total and per-lane transitions, fetch split, program behaviour).");
    if scale == Scale::Paper {
        // The whole point of the replay engine: the grid must get at least
        // 5x cheaper at paper scale. At test scale the simulations are so
        // short that fixed costs dominate, so the floor applies here only.
        assert!(
            grid_speedup >= 5.0,
            "replay grid speedup {grid_speedup:.2}x is below the 5x floor"
        );
    }

    println!("\nbit-sliced streaming codec — xlarge synthetic text (k = 4..7)\n");
    let simd_path = assert_bit_identity(scale, &block_sizes);
    let (xlarge_points, xlarge_words) = time_xlarge(scale, &block_sizes);
    let mut xlarge_table = Table::new(
        [
            "k",
            "oracle (ms)",
            "sliced scalar (ms)",
            "sliced simd (ms)",
            "speedup",
            "Mlane-blk/s",
            "GB/s moved",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &xlarge_points {
        xlarge_table.row(vec![
            p.k.to_string(),
            format!("{:.1}", p.oracle_ms),
            format!("{:.1}", p.sliced_scalar_ms),
            format!("{:.1}", p.sliced_simd_ms),
            format!("{:.1}x", p.speedup_vs_oracle()),
            format!("{:.1}", p.lane_blocks_per_sec() / 1e6),
            format!(
                "{:.2}",
                xlarge_bandwidth_gbps(xlarge_words, p.sliced_simd_ms)
            ),
        ]);
    }
    print!("{}", xlarge_table.render());
    println!(
        "\nxlarge: {xlarge_words} words, simd path {simd_path}, min of {XLARGE_REPS} reps; \
         the streaming pass moves {SLICED_BYTES_PER_WORD:.0} B/word against \
         {USEFUL_BYTES_PER_WORD:.0} useful B/word ({:.1}x, vs ~21x for the per-lane oracle).",
        SLICED_BYTES_PER_WORD / USEFUL_BYTES_PER_WORD
    );
    // The stable line the CI smoke step greps for — keep the wording in
    // sync with .github/workflows/ci.yml.
    println!(
        "bit-identity ok: scalar oracle == bit-sliced == simd ({simd_path}) \
         across kernels and xlarge, k = 4..7"
    );
    if scale == Scale::Paper {
        // The tentpole floor: per-lane codebook block solves per second on
        // the streaming pass must beat 10x the best committed pipeline
        // throughput (sor, PR 5). Timing noise only ever slows the pass,
        // and the margin is large, so this is safe to assert in-binary.
        for p in &xlarge_points {
            assert!(
                p.lane_blocks_per_sec() >= 10.0 * BASELINE_BLOCKS_PER_SEC,
                "xlarge k={}: {:.0} lane-blocks/s is below 10x the {BASELINE_BLOCKS_PER_SEC:.0} \
                 blocks/s baseline",
                p.k,
                p.lane_blocks_per_sec()
            );
        }
        println!(
            "every k clears 10x the committed {BASELINE_BLOCKS_PER_SEC:.0} blocks/s \
             pipeline baseline (asserted)."
        );
    }

    // The artifact embeds its own obs manifest — spans included — so the
    // JSON is self-describing even when `IMT_OBS` is off.
    let mut manifest = imt_obs::manifest::Manifest::new("exp_perf");
    manifest.set(
        "environment",
        Json::obj(vec![
            ("threads", Json::U64(threads as u64)),
            ("reps", Json::U64(u64::from(REPS))),
        ]),
    );
    manifest.capture();
    let round = |ms: f64| Json::F64((ms * 1000.0).round() / 1000.0);
    let doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        ("threads", Json::U64(threads as u64)),
        ("reps", Json::U64(u64::from(REPS))),
        ("simd_path", Json::str(simd_path)),
        (
            "kernels",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("kernel", Json::str(p.kernel)),
                            ("text_words", Json::U64(p.text_words as u64)),
                            ("encoded_blocks", Json::U64(p.encoded_blocks as u64)),
                            ("serial_ms", round(p.serial_ms)),
                            ("parallel_ms", round(p.parallel_ms)),
                            ("speedup", round(p.speedup())),
                            ("speedup_gate", round(p.speedup_gate)),
                            ("blocks_per_sec", round(p.blocks_per_sec())),
                            ("codec_reference_ms", round(p.codec_reference_ms)),
                            ("codec_fast_ms", round(p.codec_fast_ms)),
                            ("codec_speedup", round(p.codec_speedup())),
                            ("codec_sliced_ms", round(p.codec_sliced_ms)),
                            ("codec_sliced_speedup", round(p.sliced_speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "xlarge",
            Json::obj(vec![
                ("words", Json::U64(xlarge_words as u64)),
                ("reps", Json::U64(u64::from(XLARGE_REPS))),
                ("baseline_blocks_per_sec", round(BASELINE_BLOCKS_PER_SEC)),
                (
                    "bytes_moved_per_useful_byte",
                    round(SLICED_BYTES_PER_WORD / USEFUL_BYTES_PER_WORD),
                ),
                ("bit_identical", Json::Bool(true)),
                (
                    "points",
                    Json::Arr(
                        xlarge_points
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("k", Json::U64(p.k as u64)),
                                    ("block_positions", Json::U64(p.block_positions as u64)),
                                    ("lane_blocks", Json::U64(p.lane_blocks)),
                                    ("oracle_ms", round(p.oracle_ms)),
                                    ("sliced_scalar_ms", round(p.sliced_scalar_ms)),
                                    ("sliced_simd_ms", round(p.sliced_simd_ms)),
                                    ("speedup_vs_oracle", round(p.speedup_vs_oracle())),
                                    ("lane_blocks_per_sec", round(p.lane_blocks_per_sec())),
                                    (
                                        "bandwidth_gbps",
                                        round(xlarge_bandwidth_gbps(
                                            xlarge_words,
                                            p.sliced_simd_ms,
                                        )),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("obs", manifest.to_json()),
    ]);
    let path = "results/BENCH_pipeline.json";
    match std::fs::write(path, format!("{}\n", doc.render_pretty())) {
        Ok(()) => println!("\nwrote {path}"),
        // Running from a different working directory is not an error worth
        // failing the experiment over; the numbers are on stdout too.
        Err(e) => println!("\ncould not write {path}: {e}"),
    }

    let mut replay_manifest = imt_obs::manifest::Manifest::new("exp_perf_replay");
    replay_manifest.set(
        "environment",
        Json::obj(vec![
            ("threads", Json::U64(threads as u64)),
            ("scale", Json::str(scale.name())),
        ]),
    );
    replay_manifest.capture();
    let replay_doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        (
            "block_sizes",
            Json::Arr(block_sizes.iter().map(|&k| Json::U64(k as u64)).collect()),
        ),
        (
            "kernels",
            Json::Arr(
                replay_points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("kernel", Json::str(p.kernel)),
                            ("fetches", Json::U64(p.fetches)),
                            ("distinct_edges", Json::U64(p.distinct_edges as u64)),
                            ("full_ms", round(p.full_ms)),
                            ("replay_ms", round(p.replay_ms)),
                            ("speedup", round(p.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "grid",
            Json::obj(vec![
                ("full_ms", round(grid_full_ms)),
                ("replay_ms", round(grid_replay_ms)),
                ("speedup", round(grid_speedup)),
                ("cells_bit_identical", Json::Bool(true)),
            ]),
        ),
        ("obs", replay_manifest.to_json()),
    ]);
    let replay_path = "results/BENCH_replay.json";
    match std::fs::write(replay_path, format!("{}\n", replay_doc.render_pretty())) {
        Ok(()) => println!("wrote {replay_path}"),
        Err(e) => println!("could not write {replay_path}: {e}"),
    }
    imt_bench::finish_run("exp_perf");
}
