//! Performance experiment **E-P**: wall-clock cost of the encode pipeline
//! itself, serial vs parallel.
//!
//! The paper's encoding is a compile-time step, but its cost still gates
//! design-space exploration (every Figure 6 cell is a full profile →
//! encode → evaluate run). This binary times `encode_program` for each
//! kernel with the worker fan-out disabled (`IMT_THREADS=1`) and enabled
//! (all cores), prints the comparison, and writes the machine-readable
//! numbers to `results/BENCH_pipeline.json`.
//!
//! It also times the codec layer itself both ways through the same
//! 32-lane text image: the seed's reference path (exhaustive per-block
//! search over `Vec<bool>` lanes) against the memoized-codebook packed
//! path — the algorithmic speedup that holds even on one core.
//!
//! All timings go through `imt-obs` always-on spans (`perf.encode`,
//! `perf.codec` and `perf.grid`, labelled `kernel/mode`), so the same
//! numbers land in the registry, the JSON artifact, and — under
//! `IMT_OBS` — the run manifest.
//!
//! The second section times the Figure 6 grid both ways: the seed's
//! per-cell path (one profiling simulation plus one full evaluation
//! simulation per cell) against the replay path (one fetch-edge recording
//! per kernel, closed-form replay per cell). Before any timing, every one
//! of the 24 grid evaluations is asserted **bit-identical** between the
//! two paths — total and per-lane transition counts, fetch split,
//! behaviour — and the grid speedup lands in `results/BENCH_replay.json`.
//!
//! The outputs of both modes are asserted identical word-for-word — the
//! speedup is free, not a different answer.

use imt_bench::runner::{profiled_run, Scale};
use imt_bench::table::Table;
use imt_bitcode::packed::PackedSeq;
use imt_bitcode::par::thread_count;
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use imt_core::eval::{evaluate, evaluate_replay};
use imt_core::{encode_program, EncodedProgram, EncoderConfig};
use imt_kernels::{Kernel, KernelRun};
use imt_obs::json::Json;
use imt_sim::edge::FetchEdgeProfile;

/// Timed repetitions per (kernel, mode); the mean is reported.
const REPS: u32 = 5;

struct PerfPoint {
    kernel: &'static str,
    text_words: usize,
    encoded_blocks: usize,
    serial_ms: f64,
    parallel_ms: f64,
    codec_reference_ms: f64,
    codec_fast_ms: f64,
}

impl PerfPoint {
    fn speedup(&self) -> f64 {
        if self.parallel_ms == 0.0 {
            return 1.0;
        }
        self.serial_ms / self.parallel_ms
    }

    fn codec_speedup(&self) -> f64 {
        if self.codec_fast_ms == 0.0 {
            return 1.0;
        }
        self.codec_reference_ms / self.codec_fast_ms
    }

    fn blocks_per_sec(&self) -> f64 {
        if self.parallel_ms == 0.0 {
            return 0.0;
        }
        self.encoded_blocks as f64 / (self.parallel_ms / 1e3)
    }
}

/// Mean milliseconds per rep recorded under `name{label}` — the span
/// totals replace the bespoke `Instant` arithmetic the seed carried.
fn span_mean_ms(name: &'static str, label: &str) -> f64 {
    let stat = imt_obs::registry::span_stat_labeled(name, label);
    debug_assert_eq!(stat.count(), u64::from(REPS), "{name}{{{label}}}");
    stat.total_ns() as f64 / f64::from(REPS) / 1e6
}

/// Total milliseconds recorded under `name{label}` (single-shot spans).
fn span_total_ms(name: &'static str, label: &str) -> f64 {
    imt_obs::registry::span_stat_labeled(name, label).total_ns() as f64 / 1e6
}

struct ReplayPoint {
    kernel: &'static str,
    fetches: u64,
    distinct_edges: usize,
    full_ms: f64,
    replay_ms: f64,
}

impl ReplayPoint {
    fn speedup(&self) -> f64 {
        if self.replay_ms == 0.0 {
            return 1.0;
        }
        self.full_ms / self.replay_ms
    }
}

/// One kernel's slice of the Figure 6 grid (block sizes 4–7), timed both
/// ways. The bit-identity of every cell is asserted first, outside the
/// timed regions, so the comparison times equal answers.
fn time_grid_slice(kernel: Kernel, scale: Scale, block_sizes: &[usize]) -> ReplayPoint {
    let spec = scale.spec(kernel);
    let program = spec.assemble();
    let edges = FetchEdgeProfile::record(&program, spec.max_steps)
        .unwrap_or_else(|e| panic!("{}: recording failed: {e}", spec.name));
    assert_eq!(
        edges.stdout(),
        spec.expected_output,
        "{}: kernel output diverged from the golden model",
        spec.name
    );
    let counts = edges.per_index_counts();
    let configs: Vec<EncoderConfig> = block_sizes
        .iter()
        .map(|&k| {
            EncoderConfig::default()
                .with_block_size(k)
                .expect("block sizes 4..=7 are valid")
        })
        .collect();

    // Correctness first: every grid cell must be bit-identical between
    // replay and full simulation — totals, all 32 lanes, fetch split.
    for config in &configs {
        let encoded = encode_program(&program, &counts, config).expect("encode failed");
        let full = evaluate(&program, &encoded, spec.max_steps).expect("full evaluation failed");
        let replay = evaluate_replay(&program, &encoded, &edges).expect("replay failed");
        assert_eq!(
            replay,
            full,
            "{} k={}: replay diverged from full simulation",
            spec.name,
            config.block_size()
        );
    }

    // The seed's per-cell path: one profiling simulation plus one full
    // evaluation simulation for every cell.
    let full_label = format!("{}/full", kernel.name());
    {
        let _span = imt_obs::span::timed_labeled("perf.grid", &full_label);
        for config in &configs {
            let run = spec.run().expect("profiling run failed");
            let encoded =
                encode_program(&run.program, &run.profile, config).expect("encode failed");
            std::hint::black_box(
                evaluate(&run.program, &encoded, spec.max_steps).expect("full evaluation failed"),
            );
        }
    }

    // The replay path: one recording per kernel, closed-form replay per
    // cell.
    let replay_label = format!("{}/replay", kernel.name());
    {
        let _span = imt_obs::span::timed_labeled("perf.grid", &replay_label);
        let edges = FetchEdgeProfile::record(&program, spec.max_steps).expect("recording failed");
        let counts = edges.per_index_counts();
        for config in &configs {
            let encoded = encode_program(&program, &counts, config).expect("encode failed");
            std::hint::black_box(
                evaluate_replay(&program, &encoded, &edges).expect("replay failed"),
            );
        }
    }

    ReplayPoint {
        kernel: kernel.name(),
        fetches: edges.fetches(),
        distinct_edges: edges.distinct_edges(),
        full_ms: span_total_ms("perf.grid", &full_label),
        replay_ms: span_total_ms("perf.grid", &replay_label),
    }
}

/// Times the codec layer over all 32 lanes of the text image both ways:
/// the seed's reference path (exhaustive search, `Vec<bool>` streams) and
/// the memoized-codebook packed path. Returns mean ms per full-image
/// encode, `(reference, fast)`.
fn time_codec(kernel: &'static str, text: &[u32], codec: &StreamCodec) -> (f64, f64) {
    let words: Vec<u64> = text.iter().map(|&w| u64::from(w)).collect();
    let lanes: Vec<PackedSeq> = (0..32)
        .map(|lane| PackedSeq::from_lane(&words, lane))
        .collect();

    let reference_streams: Vec<_> = lanes
        .iter()
        .map(|lane| codec.encode_reference(&lane.to_bitseq()))
        .collect();
    let reference_label = format!("{kernel}/reference");
    for _ in 0..REPS {
        let _span = imt_obs::span::timed_labeled("perf.codec", &reference_label);
        for lane in &lanes {
            std::hint::black_box(codec.encode_reference(&lane.to_bitseq()));
        }
    }

    let fast_streams: Vec<_> = lanes.iter().map(|lane| codec.encode_packed(lane)).collect();
    let fast_label = format!("{kernel}/packed");
    for _ in 0..REPS {
        let _span = imt_obs::span::timed_labeled("perf.codec", &fast_label);
        for lane in &lanes {
            std::hint::black_box(codec.encode_packed(lane));
        }
    }

    assert_eq!(
        reference_streams, fast_streams,
        "packed codec diverged from reference"
    );
    (
        span_mean_ms("perf.codec", &reference_label),
        span_mean_ms("perf.codec", &fast_label),
    )
}

/// Mean encode time in milliseconds over [`REPS`] runs (after one
/// warm-up, which also pre-builds the shared codebooks), recorded under
/// `perf.encode{label}`.
fn time_encode(label: &str, run: &KernelRun, config: &EncoderConfig) -> (f64, EncodedProgram) {
    let encoded = encode_program(&run.program, &run.profile, config).expect("encode failed");
    for _ in 0..REPS {
        let _span = imt_obs::span::timed_labeled("perf.encode", label);
        std::hint::black_box(
            encode_program(&run.program, &run.profile, config).expect("encode failed"),
        );
    }
    (span_mean_ms("perf.encode", label), encoded)
}

fn main() {
    let scale = Scale::from_args();
    let config = EncoderConfig::default();
    let threads = thread_count();
    println!("E-P — encode pipeline wall-time, serial vs {threads} threads ({scale:?} scale)\n");

    let mut points = Vec::new();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let run = profiled_run(&spec);

        // Serial reference: the IMT_THREADS override is read per fan-out,
        // so flipping the variable around the calls is sufficient.
        std::env::set_var("IMT_THREADS", "1");
        let (serial_ms, serial_encoded) =
            time_encode(&format!("{}/serial", kernel.name()), &run, &config);
        std::env::remove_var("IMT_THREADS");
        let (parallel_ms, parallel_encoded) =
            time_encode(&format!("{}/parallel", kernel.name()), &run, &config);

        assert_eq!(
            serial_encoded, parallel_encoded,
            "{}: parallel encode diverged from serial",
            spec.name
        );
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(config.block_size()).expect("default k is valid"),
        );
        let (codec_reference_ms, codec_fast_ms) =
            time_codec(kernel.name(), &run.program.text, &codec);
        points.push(PerfPoint {
            kernel: kernel.name(),
            text_words: run.program.text.len(),
            encoded_blocks: serial_encoded.report.encoded.len(),
            serial_ms,
            parallel_ms,
            codec_reference_ms,
            codec_fast_ms,
        });
    }

    let mut table = Table::new(
        [
            "kernel",
            "text words",
            "blocks",
            "serial (ms)",
            "parallel (ms)",
            "speedup",
            "blocks/s",
            "codec ref (ms)",
            "codec fast (ms)",
            "codec speedup",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &points {
        table.row(vec![
            p.kernel.to_string(),
            p.text_words.to_string(),
            p.encoded_blocks.to_string(),
            format!("{:.2}", p.serial_ms),
            format!("{:.2}", p.parallel_ms),
            format!("{:.2}x", p.speedup()),
            format!("{:.0}", p.blocks_per_sec()),
            format!("{:.2}", p.codec_reference_ms),
            format!("{:.2}", p.codec_fast_ms),
            format!("{:.1}x", p.codec_speedup()),
        ]);
    }
    print!("{}", table.render());
    println!("\nreading: both thread modes produce bit-identical schedules, and the");
    println!("packed codebook codec matches the exhaustive reference stream for");
    println!("stream (both asserted above); the speedups change only wall-clock");
    println!("time. On a single-core host the thread speedup is ~1x by");
    println!("construction and the codec columns are the ones that matter.");

    println!("\nreplay evaluation vs full simulation — Figure 6 grid (k = 4..7)\n");
    let block_sizes = [4usize, 5, 6, 7];
    let replay_points: Vec<ReplayPoint> = Kernel::ALL
        .iter()
        .map(|&kernel| time_grid_slice(kernel, scale, &block_sizes))
        .collect();
    let mut replay_table = Table::new(
        [
            "kernel",
            "fetches",
            "edges",
            "full sim (ms)",
            "replay (ms)",
            "speedup",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &replay_points {
        replay_table.row(vec![
            p.kernel.to_string(),
            p.fetches.to_string(),
            p.distinct_edges.to_string(),
            format!("{:.2}", p.full_ms),
            format!("{:.2}", p.replay_ms),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    print!("{}", replay_table.render());
    let grid_full_ms: f64 = replay_points.iter().map(|p| p.full_ms).sum();
    let grid_replay_ms: f64 = replay_points.iter().map(|p| p.replay_ms).sum();
    let grid_speedup = if grid_replay_ms == 0.0 {
        1.0
    } else {
        grid_full_ms / grid_replay_ms
    };
    println!(
        "\ngrid total: full sim {grid_full_ms:.1} ms, replay {grid_replay_ms:.1} ms \
         ({grid_speedup:.2}x)"
    );
    println!("all 24 grid cells asserted bit-identical between the two paths");
    println!("(total and per-lane transitions, fetch split, program behaviour).");
    if scale == Scale::Paper {
        // The whole point of the replay engine: the grid must get at least
        // 5x cheaper at paper scale. At test scale the simulations are so
        // short that fixed costs dominate, so the floor applies here only.
        assert!(
            grid_speedup >= 5.0,
            "replay grid speedup {grid_speedup:.2}x is below the 5x floor"
        );
    }

    // The artifact embeds its own obs manifest — spans included — so the
    // JSON is self-describing even when `IMT_OBS` is off.
    let mut manifest = imt_obs::manifest::Manifest::new("exp_perf");
    manifest.set(
        "environment",
        Json::obj(vec![
            ("threads", Json::U64(threads as u64)),
            ("reps", Json::U64(u64::from(REPS))),
        ]),
    );
    manifest.capture();
    let round = |ms: f64| Json::F64((ms * 1000.0).round() / 1000.0);
    let doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        ("threads", Json::U64(threads as u64)),
        ("reps", Json::U64(u64::from(REPS))),
        (
            "kernels",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("kernel", Json::str(p.kernel)),
                            ("text_words", Json::U64(p.text_words as u64)),
                            ("encoded_blocks", Json::U64(p.encoded_blocks as u64)),
                            ("serial_ms", round(p.serial_ms)),
                            ("parallel_ms", round(p.parallel_ms)),
                            ("speedup", round(p.speedup())),
                            ("blocks_per_sec", round(p.blocks_per_sec())),
                            ("codec_reference_ms", round(p.codec_reference_ms)),
                            ("codec_fast_ms", round(p.codec_fast_ms)),
                            ("codec_speedup", round(p.codec_speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("obs", manifest.to_json()),
    ]);
    let path = "results/BENCH_pipeline.json";
    match std::fs::write(path, format!("{}\n", doc.render_pretty())) {
        Ok(()) => println!("\nwrote {path}"),
        // Running from a different working directory is not an error worth
        // failing the experiment over; the numbers are on stdout too.
        Err(e) => println!("\ncould not write {path}: {e}"),
    }

    let mut replay_manifest = imt_obs::manifest::Manifest::new("exp_perf_replay");
    replay_manifest.set(
        "environment",
        Json::obj(vec![
            ("threads", Json::U64(threads as u64)),
            ("scale", Json::str(scale.name())),
        ]),
    );
    replay_manifest.capture();
    let replay_doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        (
            "block_sizes",
            Json::Arr(block_sizes.iter().map(|&k| Json::U64(k as u64)).collect()),
        ),
        (
            "kernels",
            Json::Arr(
                replay_points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("kernel", Json::str(p.kernel)),
                            ("fetches", Json::U64(p.fetches)),
                            ("distinct_edges", Json::U64(p.distinct_edges as u64)),
                            ("full_ms", round(p.full_ms)),
                            ("replay_ms", round(p.replay_ms)),
                            ("speedup", round(p.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "grid",
            Json::obj(vec![
                ("full_ms", round(grid_full_ms)),
                ("replay_ms", round(grid_replay_ms)),
                ("speedup", round(grid_speedup)),
                ("cells_bit_identical", Json::Bool(true)),
            ]),
        ),
        ("obs", replay_manifest.to_json()),
    ]);
    let replay_path = "results/BENCH_replay.json";
    match std::fs::write(replay_path, format!("{}\n", replay_doc.render_pretty())) {
        Ok(()) => println!("wrote {replay_path}"),
        Err(e) => println!("could not write {replay_path}: {e}"),
    }
    imt_bench::finish_run("exp_perf");
}
