//! Extension experiment **E-O**: compiler cooperation via transition-aware
//! instruction scheduling.
//!
//! The paper analyses fixed code; but a compiler that knows the encoder is
//! coming can *reorder independent instructions* inside each hot block so
//! the vertical bit streams become more compressible. This experiment
//! measures that headroom: each kernel is scheduled
//! (dependence-preserving, greedy Hamming-nearest ordering, keep-if-better
//! per block), then both versions run the full encode + verified-replay
//! pipeline. The scheduled program's checksum is asserted against the same
//! golden model — reordering provably changes nothing but the order.

use imt_bench::runner::Scale;
use imt_bench::table::Table;
use imt_core::schedule::schedule_program;
use imt_core::{encode_program, eval::evaluate, EncoderConfig};
use imt_kernels::Kernel;
use imt_sim::Cpu;

fn main() {
    experiment();
    imt_bench::finish_run("exp_schedule");
}

fn experiment() {
    let scale = Scale::from_args();
    println!("E-O — transition-aware instruction scheduling (k = 5, {scale:?} scale)\n");
    let mut table = Table::new(
        [
            "kernel",
            "blocks reordered",
            "encoded red. (plain)",
            "encoded red. (scheduled)",
            "extra transitions removed",
        ]
        .map(String::from)
        .to_vec(),
    );
    let config = EncoderConfig::default();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let program = spec.assemble();
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.run(spec.max_steps).expect("profile");
        assert_eq!(
            cpu.stdout(),
            spec.expected_output,
            "{}: golden mismatch",
            spec.name
        );
        let profile = cpu.profile().to_vec();

        // Plain pipeline.
        let encoded = encode_program(&program, &profile, &config).expect("encode");
        let plain = evaluate(&program, &encoded, spec.max_steps).expect("evaluate");

        // Scheduled pipeline: reorder, re-profile, encode, evaluate.
        let (scheduled, report) = schedule_program(&program, &profile, &config).expect("schedule");
        let mut cpu = Cpu::new(&scheduled).expect("load scheduled");
        cpu.run(spec.max_steps).expect("run scheduled");
        assert_eq!(
            cpu.stdout(),
            spec.expected_output,
            "{}: scheduling changed behaviour",
            spec.name
        );
        let sched_profile = cpu.profile().to_vec();
        let encoded =
            encode_program(&scheduled, &sched_profile, &config).expect("encode scheduled");
        let sched = evaluate(&scheduled, &encoded, spec.max_steps).expect("evaluate scheduled");
        assert_eq!(sched.decode_mismatches, 0);

        // Compare both encoded streams against the ORIGINAL program's raw
        // bus: scheduling changes the raw stream too, so its own baseline
        // would not be comparable.
        let original_baseline = plain.baseline_transitions as f64;
        let plain_red =
            (original_baseline - plain.encoded_transitions as f64) / original_baseline * 100.0;
        let sched_red =
            (original_baseline - sched.encoded_transitions as f64) / original_baseline * 100.0;
        let extra = plain.encoded_transitions as i64 - sched.encoded_transitions as i64;
        table.row(vec![
            kernel.name().to_string(),
            format!("{}/{}", report.reordered, report.considered),
            format!("{plain_red:.1}%"),
            format!("{sched_red:.1}%"),
            format!("{:.2} M", extra as f64 / 1e6),
        ]);
    }
    print!("{}", table.render());
    println!("\nreading: both reductions are against the ORIGINAL program's raw bus");
    println!("(scheduling changes the raw stream too, so its own baseline would");
    println!("mislead). A scheduling-aware compiler buys up to 6 further points of");
    println!("the original traffic (fft: 33.0 -> 39.1%) where blocks have slack,");
    println!("and nothing where dependence chains are tight (sor/ej/lu) — at zero");
    println!("run-time and hardware cost.");
    println!("Golden checksums are asserted on every scheduled binary, so the");
    println!("reorder is provably behaviour-preserving.");
}
