//! Regenerates the paper's **§6 experiment**: greedy chained encoding of
//! random 1000-bit sequences at block size five reduces transitions to
//! within 1 % of the theoretical 50 % expectation for uniform streams.
//!
//! The paper's "total reduction … within 1 % of the expected value of
//! 50 %" is the aggregate over the generated streams (individual streams
//! scatter a few percent either side, "both on the positive and the
//! negative side" as the paper notes). The bound holds under the
//! paper-literal stored-bit overlap history; the alternative decoded-bit
//! reading loses about 1.5 points, which is evidence the paper's wording
//! in §6 indeed means the stored bit.

use imt_bench::table::Table;
use imt_bitcode::gen::uniform;
use imt_bitcode::stream::{OverlapHistory, StreamCodec, StreamCodecConfig};
use rand::SeedableRng;

fn main() {
    experiment();
    imt_bench::finish_run("exp_sec6");
}

fn experiment() {
    let trials = 500usize;
    let bits = 1000usize;
    println!("§6 — greedy chained encoding of {trials} random {bits}-bit streams\n");
    let mut table = Table::new(
        [
            "k",
            "overlap",
            "total red(%)",
            "stream min",
            "stream max",
            "theory(%)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for k in [4usize, 5, 6, 7] {
        let theory =
            imt_bitcode::tables::CodeTable::build(k, imt_bitcode::TransformSet::CANONICAL_EIGHT)
                .expect("valid size")
                .improvement_percent();
        for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
            let codec = StreamCodec::new(
                StreamCodecConfig::block_size(k)
                    .expect("valid size")
                    .with_overlap(overlap),
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EC6_2003);
            let mut original_total = 0u64;
            let mut encoded_total = 0u64;
            let mut min = f64::MAX;
            let mut max = f64::MIN;
            for _ in 0..trials {
                let stream = uniform(&mut rng, bits);
                let encoded = codec.encode(&stream);
                original_total += encoded.original_transitions();
                encoded_total += encoded.transitions();
                let reduction = encoded.reduction_percent();
                min = min.min(reduction);
                max = max.max(reduction);
            }
            let total = (original_total - encoded_total) as f64 / original_total as f64 * 100.0;
            table.row(vec![
                k.to_string(),
                format!("{overlap:?}"),
                format!("{total:.2}"),
                format!("{min:.2}"),
                format!("{max:.2}"),
                format!("{theory:.1}"),
            ]);
            if overlap == OverlapHistory::Stored {
                // The paper's claim, for its own (stored-bit) semantics —
                // at every block size the aggregate tracks the theoretical
                // expectation within 1 %.
                assert!(
                    (total - theory).abs() < 1.0,
                    "k={k}: total {total:.2}% deviates more than 1% from theory {theory:.1}%"
                );
            }
        }
    }
    print!("{}", table.render());
    println!("\npaper: at k=5 the total reduction was within 1% of the expected 50%;");
    println!("reproduced under the stored-bit overlap history (49.9% aggregate).");
}
