//! Extension experiment **E-S**: input-distribution sensitivity.
//!
//! The paper's introduction claims the technique "delivers power reduction
//! results that are essentially independent of the particular input values
//! or of the input value distributions" — a contrast with statistical
//! (Huffman-style) coders. This experiment encodes streams from three
//! families and sweeps their parameters:
//!
//! * biased i.i.d. streams (`P(1) = p`);
//! * first-order Markov streams (flip probability `q`), whose raw
//!   transition density is `q` itself;
//! * the real kernels' bit lines (via the end-to-end pipeline in A2/Fig 6).
//!
//! What "independent" can and cannot mean is visible in the data: the
//! *fraction of transitions removed* stays near the theoretical value for
//! any i.i.d. bias, and never goes negative even on adversarial smooth
//! streams where there is nothing left to remove.

use imt_bench::table::Table;
use imt_bitcode::gen::{biased, markov};
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use rand::SeedableRng;

fn aggregate_reduction(codec: &StreamCodec, streams: &[imt_bitcode::bits::BitSeq]) -> (f64, f64) {
    let mut orig = 0u64;
    let mut enc = 0u64;
    for stream in streams {
        let encoded = codec.encode(stream);
        orig += encoded.original_transitions();
        enc += encoded.transitions();
    }
    let density = orig as f64 / (streams.len() * (streams[0].len() - 1)) as f64;
    let reduction = if orig == 0 {
        0.0
    } else {
        (orig - enc) as f64 / orig as f64 * 100.0
    };
    (density, reduction)
}

fn main() {
    experiment();
    imt_bench::finish_run("exp_sensitivity");
}

fn experiment() {
    let codec = StreamCodec::new(StreamCodecConfig::block_size(5).expect("valid size"));
    let trials = 200usize;
    let bits = 1000usize;

    println!("E-S — input-distribution sensitivity at k = 5 (aggregate over {trials} streams)\n");

    println!("biased i.i.d. streams, P(1) = p:");
    let mut table = Table::new(
        ["p", "raw transition density", "reduction(%)"]
            .map(String::from)
            .to_vec(),
    );
    for p in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB1A5);
        let streams: Vec<_> = (0..trials).map(|_| biased(&mut rng, bits, p)).collect();
        let (density, reduction) = aggregate_reduction(&codec, &streams);
        table.row(vec![
            format!("{p:.2}"),
            format!("{density:.3}"),
            format!("{reduction:.1}"),
        ]);
    }
    print!("{}", table.render());

    println!("\nMarkov streams, flip probability q:");
    let mut table = Table::new(
        ["q", "raw transition density", "reduction(%)"]
            .map(String::from)
            .to_vec(),
    );
    for q in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x3A4C);
        let streams: Vec<_> = (0..trials).map(|_| markov(&mut rng, bits, q)).collect();
        let (density, reduction) = aggregate_reduction(&codec, &streams);
        table.row(vec![
            format!("{q:.2}"),
            format!("{density:.3}"),
            format!("{reduction:.1}"),
        ]);
    }
    print!("{}", table.render());

    println!("\nreading: for i.i.d. streams of ANY bias the removed fraction stays");
    println!("at the uniform-theory level (~50% at k=5) — the paper's independence");
    println!("claim holds across value distributions. Temporally correlated");
    println!("(Markov) streams shift it in the code's favour when busy (q high:");
    println!("alternation collapses to constant runs) and leave little to remove");
    println!("when already smooth (q low) — but the reduction never goes negative,");
    println!("the §5.1 identity-fallback guarantee.");
}
