//! Serving experiment **E-V**: throughput and latency of the batched
//! encode/eval service under load.
//!
//! The paper's tables are reprogrammed *per application*; a fleet doing
//! that concurrently is a job service, and this experiment measures the
//! one in `imt-serve`. A seeded workload of encode/eval requests (every
//! kernel × block sizes 4–7, deterministically shuffled) is driven
//! through the service two ways:
//!
//! * **closed loop** — a fixed pool of client threads, each submitting
//!   and waiting, against worker pools of 1/2/4/8. Reports throughput,
//!   p50/p90/p99 latency, mean batch size.
//! * **open loop** — timed arrivals at ~4× the service's capacity into a
//!   small queue under rejecting admission, demonstrating backpressure:
//!   the overload is shed as typed `Overloaded` refusals while every
//!   accepted request still completes correctly.
//!
//! **Honesty note on scaling.** This host pins the whole process to one
//! core, so worker scaling cannot come from parallel compute. The service
//! is configured with a simulated *delivery stall* (`delivery_latency`):
//! after computing a result, a worker stays occupied as if streaming the
//! TT/BBIT images over a device-programming link. Extra workers overlap
//! exactly that stall — the classic latency-hiding shape — and the
//! speedup gate below applies to this configuration. The stall length is
//! printed and recorded in `BENCH_serve.json`.
//!
//! Every response is additionally checked **bit-identical** to a direct
//! serial `encode_program` + `evaluate_auto` call for the same cell —
//! batching, queueing and threads must change wall-clock only, never the
//! answer.
//!
//! Writes `results/exp_serve.txt` (stdout) and the machine-readable
//! `results/BENCH_serve.json`. Timing numbers vary run to run (like
//! `exp_perf`); the workload, its order, and every evaluation result are
//! deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use imt_bench::runner::{kernel_profile, Scale};
use imt_bench::table::Table;
use imt_core::eval::{evaluate_auto, EvalNeeds, Evaluation};
use imt_core::{encode_program, EncoderConfig};
use imt_kernels::Kernel;
use imt_obs::json::Json;
use imt_serve::request::{Request, Response};
use imt_serve::service::{Admission, Service, ServiceConfig, StatsSnapshot};
use imt_serve::ServeError;

const BLOCK_SIZES: std::ops::RangeInclusive<usize> = 4..=7;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CLIENTS: usize = 16;

/// Requests per closed-loop sweep.
fn request_count(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 48,
        Scale::Test => 24,
    }
}

/// The simulated device-delivery stall each successful job occupies its
/// worker for (see the module docs).
fn delivery_latency(scale: Scale) -> Duration {
    match scale {
        Scale::Paper => Duration::from_millis(150),
        Scale::Test => Duration::from_millis(20),
    }
}

/// One workload cell: a kernel at one block size.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    kernel: Kernel,
    block_size: usize,
}

/// The fixed, seeded workload: every kernel × block size, repeated to
/// `n` items, Fisher–Yates-shuffled with a documented xorshift seed so
/// reruns submit the identical sequence.
fn workload(n: usize) -> Vec<WorkItem> {
    let mut items: Vec<WorkItem> = Vec::with_capacity(n);
    let cells: Vec<WorkItem> = Kernel::ALL
        .iter()
        .flat_map(|&kernel| BLOCK_SIZES.map(move |block_size| WorkItem { kernel, block_size }))
        .collect();
    for i in 0..n {
        items.push(cells[i % cells.len()]);
    }
    let mut state = 0x5345_5256_2003u64; // "SERV" + the paper's year
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
    items
}

fn build_request(scale: Scale, item: WorkItem) -> Request {
    let config = EncoderConfig::default()
        .with_block_size(item.block_size)
        .expect("block sizes 4..=7 are valid");
    Request::new(scale.spec(item.kernel), config).with_deadline(Duration::from_secs(120))
}

/// The serial references every service response must match bit for bit:
/// direct `encode_program` + `evaluate_auto` per cell, no service, no
/// threads. Keyed by (kernel name, block size).
fn serial_references(scale: Scale) -> HashMap<(String, usize), Evaluation> {
    let mut references = HashMap::new();
    for kernel in Kernel::ALL {
        let spec = scale.spec(kernel);
        let profile = kernel_profile(&spec);
        for block_size in BLOCK_SIZES {
            let config = EncoderConfig::default()
                .with_block_size(block_size)
                .expect("block sizes 4..=7 are valid");
            let encoded = encode_program(&profile.program, &profile.profile, &config)
                .unwrap_or_else(|e| panic!("{}: encoding failed: {e}", spec.name));
            let (evaluation, _) = evaluate_auto(
                &profile.program,
                &encoded,
                spec.max_steps,
                Some(&profile.edges),
                EvalNeeds::transitions_only(),
            )
            .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", spec.name));
            references.insert((spec.name.clone(), block_size), evaluation);
        }
    }
    references
}

/// One closed-loop sweep's measurements.
struct SweepResult {
    workers: usize,
    wall: Duration,
    latencies_ns: Vec<u64>,
    stats: StatsSnapshot,
    mismatches: usize,
}

impl SweepResult {
    fn throughput_rps(&self) -> f64 {
        self.stats.completed as f64 / self.wall.as_secs_f64()
    }
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

/// Drives the full workload through a fresh service with `workers`
/// workers, `CLIENTS` closed-loop clients.
fn closed_loop_sweep(
    scale: Scale,
    workers: usize,
    items: &[WorkItem],
    references: &HashMap<(String, usize), Evaluation>,
) -> SweepResult {
    let service = Service::start(
        ServiceConfig::default()
            .with_workers(workers)
            .with_queue_capacity(32)
            .with_max_batch(8)
            .with_admission(Admission::Block)
            .with_delivery_latency(delivery_latency(scale)),
    );
    let next = AtomicUsize::new(0);
    let responses: Mutex<Vec<Response>> = Mutex::new(Vec::with_capacity(items.len()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&item) = items.get(i) else { break };
                let ticket = service
                    .submit(build_request(scale, item))
                    .expect("blocking admission only fails at shutdown");
                let response = ticket.wait();
                responses
                    .lock()
                    .expect("response collection lock")
                    .push(response);
            });
        }
    });
    let wall = started.elapsed();
    let stats = service.stats();
    service.shutdown();

    let responses = responses.into_inner().expect("response collection lock");
    assert_eq!(responses.len(), items.len(), "every request must answer");
    let mut mismatches = 0usize;
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(responses.len());
    for response in &responses {
        latencies_ns.push(response.latency_ns());
        let done = response
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed under load: {e}", response.kernel));
        let reference = &references[&(response.kernel.clone(), response.block_size)];
        if &done.evaluation != reference {
            mismatches += 1;
        }
    }
    latencies_ns.sort_unstable();
    SweepResult {
        workers,
        wall,
        latencies_ns,
        stats,
        mismatches,
    }
}

/// Open-loop overload: timed arrivals at ~4× capacity into a 4-deep
/// queue under rejecting admission.
struct OverloadResult {
    offered: usize,
    rejected: usize,
    completed: usize,
    interval: Duration,
}

fn open_loop_overload(scale: Scale, items: &[WorkItem]) -> OverloadResult {
    let stall = delivery_latency(scale);
    // Two workers each hold a job ≥ `stall`, so capacity ≤ 2 jobs per
    // stall; offering 8 per stall is a 4× overload.
    let interval = stall / 8;
    let service = Service::start(
        ServiceConfig::default()
            .with_workers(2)
            .with_queue_capacity(4)
            .with_max_batch(8)
            .with_admission(Admission::Reject)
            .with_delivery_latency(stall),
    );
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for &item in items {
        match service.submit(build_request(scale, item)) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected admission failure: {e}"),
        }
        std::thread::sleep(interval);
    }
    let mut completed = 0usize;
    for ticket in tickets {
        let response = ticket.wait();
        response
            .outcome
            .unwrap_or_else(|e| panic!("accepted request failed: {e}"));
        completed += 1;
    }
    service.shutdown();
    OverloadResult {
        offered: items.len(),
        rejected,
        completed,
        interval,
    }
}

fn sweep_json(sweep: &SweepResult) -> Json {
    let round = |v: f64| Json::F64((v * 1000.0).round() / 1000.0);
    Json::obj(vec![
        ("workers", Json::U64(sweep.workers as u64)),
        ("wall_ms", round(sweep.wall.as_secs_f64() * 1e3)),
        ("throughput_rps", round(sweep.throughput_rps())),
        ("p50_ms", round(percentile_ms(&sweep.latencies_ns, 50.0))),
        ("p90_ms", round(percentile_ms(&sweep.latencies_ns, 90.0))),
        ("p99_ms", round(percentile_ms(&sweep.latencies_ns, 99.0))),
        ("completed", Json::U64(sweep.stats.completed)),
        ("failed", Json::U64(sweep.stats.failed)),
        ("deadline_missed", Json::U64(sweep.stats.deadline_missed)),
        ("batches", Json::U64(sweep.stats.batches)),
        ("mean_batch_size", round(sweep.stats.mean_batch_size())),
        ("peak_queue_depth", Json::U64(sweep.stats.peak_depth)),
        (
            "bit_identity_mismatches",
            Json::U64(sweep.mismatches as u64),
        ),
    ])
}

fn main() {
    let _guard = imt_bench::begin_run("exp_serve");
    let scale = Scale::from_args();
    let n = request_count(scale);
    let stall = delivery_latency(scale);
    println!(
        "E-V — batched encode/eval service under load: {n} requests, \
         {CLIENTS} closed-loop clients, {}ms simulated delivery stall \
         ({} scale)\n",
        stall.as_millis(),
        scale.name(),
    );
    println!("single-core host: worker scaling comes from overlapping the");
    println!("delivery stall, not parallel compute (see EXPERIMENTS.md E-V).\n");

    let items = workload(n);
    let references = serial_references(scale);

    let sweeps: Vec<SweepResult> = WORKER_COUNTS
        .iter()
        .map(|&workers| closed_loop_sweep(scale, workers, &items, &references))
        .collect();

    let mut table = Table::new(
        [
            "workers",
            "wall ms",
            "req/s",
            "p50 ms",
            "p90 ms",
            "p99 ms",
            "mean batch",
            "peak queue",
            "failed",
            "missed",
        ]
        .map(String::from)
        .to_vec(),
    );
    for sweep in &sweeps {
        table.row(vec![
            sweep.workers.to_string(),
            format!("{:.0}", sweep.wall.as_secs_f64() * 1e3),
            format!("{:.1}", sweep.throughput_rps()),
            format!("{:.1}", percentile_ms(&sweep.latencies_ns, 50.0)),
            format!("{:.1}", percentile_ms(&sweep.latencies_ns, 90.0)),
            format!("{:.1}", percentile_ms(&sweep.latencies_ns, 99.0)),
            format!("{:.2}", sweep.stats.mean_batch_size()),
            sweep.stats.peak_depth.to_string(),
            sweep.stats.failed.to_string(),
            sweep.stats.deadline_missed.to_string(),
        ]);
    }
    print!("{}", table.render());

    let overload = open_loop_overload(scale, &items[..items.len().min(40)]);
    println!(
        "\nopen-loop overload: {} arrivals every {}ms into queue(4), 2 workers, rejecting admission:",
        overload.offered,
        overload.interval.as_millis(),
    );
    println!(
        "  accepted+completed = {}, shed as Overloaded = {} (backpressure the caller sees)",
        overload.completed, overload.rejected
    );

    // Acceptance gates, in-binary so a regression fails loudly.
    let total_responses: usize = sweeps.iter().map(|s| s.latencies_ns.len()).sum();
    let mismatches: usize = sweeps.iter().map(|s| s.mismatches).sum();
    let failed: u64 = sweeps.iter().map(|s| s.stats.failed).sum();
    let missed: u64 = sweeps.iter().map(|s| s.stats.deadline_missed).sum();
    assert_eq!(
        mismatches, 0,
        "batched results must be bit-identical to serial execution"
    );
    assert_eq!(failed, 0, "no request may fail under this workload");
    assert_eq!(missed, 0, "the 120s deadline must never be missed");
    for sweep in &sweeps {
        assert!(
            sweep.throughput_rps() > 0.0,
            "throughput must be nonzero at {} workers",
            sweep.workers
        );
    }
    assert!(overload.rejected > 0, "a 4x overload must shed load");
    assert_eq!(
        overload.completed + overload.rejected,
        overload.offered,
        "every offered request is either served or refused, never lost"
    );
    let t1 = sweeps[0].throughput_rps();
    let t8 = sweeps[sweeps.len() - 1].throughput_rps();
    let speedup = t8 / t1;
    if scale == Scale::Paper {
        assert!(
            speedup >= 3.0,
            "1→8 workers must give ≥3x throughput (got {speedup:.2}x)"
        );
    }
    println!(
        "\nchecks: bit-identity mismatches = {mismatches} across {total_responses} responses; \
         failed = {failed}; deadline missed = {missed}"
    );
    println!(
        "throughput 1→8 workers: {t1:.1} → {t8:.1} req/s (speedup {speedup:.2}x, \
         gate ≥3x at paper scale)"
    );

    let mut manifest = imt_obs::manifest::Manifest::new("exp_serve");
    manifest.set(
        "settings",
        Json::obj(vec![
            ("requests", Json::U64(n as u64)),
            ("clients", Json::U64(CLIENTS as u64)),
            ("delivery_latency_ms", Json::U64(stall.as_millis() as u64)),
        ]),
    );
    manifest.capture();
    let doc = Json::obj(vec![
        ("scale", Json::str(scale.name())),
        ("requests", Json::U64(n as u64)),
        ("clients", Json::U64(CLIENTS as u64)),
        ("delivery_latency_ms", Json::U64(stall.as_millis() as u64)),
        ("sweeps", Json::Arr(sweeps.iter().map(sweep_json).collect())),
        (
            "speedup_1_to_8",
            Json::F64((speedup * 100.0).round() / 100.0),
        ),
        (
            "overload",
            Json::obj(vec![
                ("offered", Json::U64(overload.offered as u64)),
                (
                    "interval_ms",
                    Json::U64(overload.interval.as_millis() as u64),
                ),
                ("completed", Json::U64(overload.completed as u64)),
                ("rejected", Json::U64(overload.rejected as u64)),
            ]),
        ),
        ("obs", manifest.to_json()),
    ]);
    let path = "results/BENCH_serve.json";
    match std::fs::write(path, format!("{}\n", doc.render_pretty())) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
    imt_bench::finish_run("exp_serve");
}
