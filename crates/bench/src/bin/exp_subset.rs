//! Checks the paper's **§5.2 claim** by exact set cover: a fixed small
//! subset of the 16 two-input functions achieves the unrestricted optimum
//! for every block word of every size up to 7.
//!
//! The paper reports a unique sufficient subset of **8**; the exact search
//! sharpens this to a unique minimal subset of **6** (identity, inversion,
//! XOR, XNOR, NOR, NAND — the canonical eight without y and ȳ). The
//! canonical eight is verified sufficient as well.

use imt_bitcode::tables::{minimal_optimal_subset, CodeTable};
use imt_bitcode::TransformSet;

fn main() {
    experiment();
    imt_bench::finish_run("exp_subset");
}

fn experiment() {
    println!("§5.2 — minimal transformation subsets (exact set cover)\n");
    for max_k in 2..=7 {
        let minimal = minimal_optimal_subset(max_k);
        println!(
            "block sizes 2..={max_k}: minimum {} functions, {} subset(s) of that size: {}",
            minimal.set.len(),
            minimal.count_of_minimum_size,
            minimal.set
        );
    }
    println!();
    for k in 2..=7 {
        let full = CodeTable::build(k, TransformSet::ALL_SIXTEEN).expect("valid");
        let eight = CodeTable::build(k, TransformSet::CANONICAL_EIGHT).expect("valid");
        let minimal = minimal_optimal_subset(7).set;
        let six = CodeTable::build(k, minimal).expect("valid");
        println!(
            "k={k}: RTN all-16 = {:>3}   canonical-8 = {:>3}   minimal-6 = {:>3}",
            full.reduced_transitions(),
            eight.reduced_transitions(),
            six.reduced_transitions()
        );
        assert_eq!(full.reduced_transitions(), eight.reduced_transitions());
        assert_eq!(full.reduced_transitions(), six.reduced_transitions());
    }
    println!("\nconclusion: the canonical eight (paper) is sufficient for global");
    println!("optimality at every k <= 7; the exact minimum is the unique 6-subset");
    println!("{{x, x̄, x⊕y, x⊕̄y, NOR, NAND}} — a strict strengthening of §5.2.");
}
