//! One-screen reproduction scorecard: recomputes every fast-to-check paper
//! claim from scratch and prints PASS/FAIL. The slow Figure 6/7 pipeline
//! claims are covered by `exp_fig6`/`exp_fig7` and the `--ignored`
//! integration test; everything here runs in a few seconds.

use imt_bitcode::gen::uniform;
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use imt_bitcode::tables::{minimal_optimal_subset, theoretical_ttn, CodeTable};
use imt_bitcode::TransformSet;
use rand::SeedableRng;

fn check(name: &str, pass: bool, detail: String) -> bool {
    println!(
        "  [{}] {name}: {detail}",
        if pass { "PASS" } else { "FAIL" }
    );
    pass
}

fn main() {
    experiment();
    imt_bench::finish_run("exp_summary");
}

fn experiment() {
    println!("reproduction scorecard — Petrov & Orailoglu, DATE 2003\n");
    let mut all = true;

    // Figure 2: exact table values.
    let fig2 = CodeTable::build(3, TransformSet::CANONICAL_EIGHT).expect("valid");
    all &= check(
        "Figure 2 (k=3 table)",
        fig2.total_transitions() == 8 && fig2.reduced_transitions() == 2,
        format!(
            "TTN={} RTN={} (paper: 8/2)",
            fig2.total_transitions(),
            fig2.reduced_transitions()
        ),
    );

    // Figure 3: TTN closed form + RTN optima for every size.
    let mut fig3_ok = true;
    let mut rtns = Vec::new();
    for k in 2..=7usize {
        let table = CodeTable::build(k, TransformSet::ALL_SIXTEEN).expect("valid");
        fig3_ok &= table.total_transitions() == theoretical_ttn(k);
        rtns.push(table.reduced_transitions());
    }
    all &= check(
        "Figure 3 (TTN/RTN, k=2..7)",
        fig3_ok && rtns == [0, 2, 10, 32, 90, 236],
        format!("RTN = {rtns:?} (paper: 0,2,10,32,180*,234* — see EXPERIMENTS.md)"),
    );

    // Figure 4: the k=5 restriction loses nothing, per word.
    let full = CodeTable::build(5, TransformSet::ALL_SIXTEEN).expect("valid");
    let eight = CodeTable::build(5, TransformSet::CANONICAL_EIGHT).expect("valid");
    let fig4_ok = full
        .entries()
        .iter()
        .zip(eight.entries())
        .all(|(a, b)| a.code_transitions == b.code_transitions);
    all &= check(
        "Figure 4 (k=5, 8-subset optimal per word)",
        fig4_ok,
        format!(
            "RTN {} = {}",
            full.reduced_transitions(),
            eight.reduced_transitions()
        ),
    );

    // §5.2: subset claims.
    let minimal = minimal_optimal_subset(7);
    all &= check(
        "§5.2 (restricted subset)",
        minimal.set.len() == 6
            && minimal.count_of_minimum_size == 1
            && minimal.set.intersection(TransformSet::CANONICAL_EIGHT) == minimal.set,
        format!(
            "canonical 8 sufficient; exact minimum = unique {}-subset {}",
            minimal.set.len(),
            minimal.set
        ),
    );

    // §6: chained random streams within 1% of 50% at k=5.
    let codec = StreamCodec::new(StreamCodecConfig::block_size(5).expect("valid"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EC6_2003);
    let (mut orig, mut enc) = (0u64, 0u64);
    for _ in 0..200 {
        let stream = uniform(&mut rng, 1000);
        let encoded = codec.encode(&stream);
        orig += encoded.original_transitions();
        enc += encoded.transitions();
    }
    let sec6 = (orig - enc) as f64 / orig as f64 * 100.0;
    all &= check(
        "§6 (random 1000-bit streams, k=5)",
        (sec6 - 50.0).abs() < 1.0,
        format!("{sec6:.2}% (claim: within 1% of 50%)"),
    );

    // Hardware claims: 3 control bits, ~single-gate restore logic.
    let cost = imt_bitcode::gates::restore_cell_cost(TransformSet::CANONICAL_EIGHT);
    all &= check(
        "§5.2/§7.2 (hardware frugality)",
        TransformSet::CANONICAL_EIGHT.control_bits() == 3 && cost.total_gates() < 60,
        format!(
            "3 control bits; per-lane cell = {} NAND2-equivalents, depth {}",
            cost.total_gates(),
            cost.depth
        ),
    );

    // End-to-end spot check on the paper-scale fft (fast).
    let spec = imt_kernels::Kernel::Fft.paper_spec();
    let program = spec.assemble();
    let mut cpu = imt_sim::Cpu::new(&program).expect("load");
    cpu.run(spec.max_steps).expect("run");
    let golden = cpu.stdout() == spec.expected_output;
    let encoded =
        imt_core::encode_program(&program, cpu.profile(), &imt_core::EncoderConfig::default())
            .expect("encode");
    let eval = imt_core::eval::evaluate(&program, &encoded, spec.max_steps).expect("evaluate");
    all &= check(
        "end-to-end (fft-256, k=5)",
        golden && eval.decode_mismatches == 0 && eval.reduction_percent() > 15.0,
        format!(
            "golden={golden}, decoder exact, {:.1}% reduction",
            eval.reduction_percent()
        ),
    );

    println!(
        "\noverall: {}  (run exp_fig6/exp_fig7 for the full kernel grid)",
        if all {
            "ALL CHECKS PASS"
        } else {
            "FAILURES PRESENT"
        }
    );
    if !all {
        std::process::exit(1);
    }
}
