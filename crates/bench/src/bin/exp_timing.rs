//! Extension experiment **E-T**: the cost of being in the critical path.
//!
//! The paper's §1/§9 claim: the restore logic ("a single bit logic gate")
//! introduces "no impact to the critical fetch stage", unlike dictionary
//! lookup which must sit between the bus and the decoder. A first-order
//! front-end timing model makes the claim's consequence measurable: the
//! one extra stage a dictionary needs deepens every control-flow redirect
//! by one bubble, so loop-heavy code pays per iteration. Combined with the
//! transition counts this yields the energy–delay comparison the paper's
//! argument implies.

use imt_baselines::DictionaryBus;
use imt_bench::runner::{profiled_run, run_kernel_point, Scale};
use imt_bench::table::Table;
use imt_core::EncoderConfig;
use imt_kernels::Kernel;
use imt_sim::cpu::Tee;
use imt_sim::timing::{FrontEndTiming, TimingSink};
use imt_sim::Cpu;

fn main() {
    experiment();
    imt_bench::finish_run("exp_timing");
}

fn experiment() {
    let scale = Scale::from_args();
    println!("E-T — front-end timing: IMT (no added stage) vs dictionary (+1 stage)");
    println!("({scale:?} scale, redirect penalty 2 vs 3, 4 KiB I-cache, 20-cycle miss)\n");
    let mut table = Table::new(
        [
            "kernel",
            "base cycles (M)",
            "IMT cycles (M)",
            "dict cycles (M)",
            "dict slowdown",
            "IMT EDP gain",
            "dict EDP gain",
        ]
        .map(String::from)
        .to_vec(),
    );
    for kernel in Kernel::ALL {
        let point = run_kernel_point(kernel, scale, &EncoderConfig::default());
        let spec = scale.spec(kernel);
        let run = profiled_run(&spec);
        let mut cpu = Cpu::new(&run.program).expect("load");
        let mut imt_timing = TimingSink::new(FrontEndTiming::imt_default());
        let mut dict_timing = TimingSink::new(FrontEndTiming::dictionary_default());
        let mut dict_bus = DictionaryBus::from_profile(&run.program.text, &run.profile, 16);
        let mut sinks = Tee(&mut imt_timing, Tee(&mut dict_timing, &mut dict_bus));
        cpu.run_with_sink(spec.max_steps, &mut sinks)
            .expect("replay");

        // The IMT front end is cycle-identical to the baseline: the gate
        // adds no stage. The dictionary front end is one stage deeper.
        let base_cycles = imt_timing.cycles();
        let imt_cycles = imt_timing.cycles();
        let dict_cycles = dict_timing.cycles();
        let slowdown = (dict_cycles as f64 / base_cycles as f64 - 1.0) * 100.0;

        // Energy–delay product, using bus transitions as the energy proxy
        // the paper uses.
        let base_edp = point.evaluation.baseline_transitions as f64 * base_cycles as f64;
        let imt_edp = point.evaluation.encoded_transitions as f64 * imt_cycles as f64;
        let dict_edp = dict_bus.total_transitions() as f64 * dict_cycles as f64;
        table.row(vec![
            kernel.name().to_string(),
            format!("{:.2}", base_cycles as f64 / 1e6),
            format!("{:.2}", imt_cycles as f64 / 1e6),
            format!("{:.2}", dict_cycles as f64 / 1e6),
            format!("+{slowdown:.1}%"),
            format!("{:.2}x", base_edp / imt_edp),
            format!("{:.2}x", base_edp / dict_edp),
        ]);
        assert_eq!(
            imt_cycles, base_cycles,
            "IMT must not change the cycle count"
        );
    }
    print!("{}", table.render());
    println!("\nreading: IMT's restore gate is free in time — cycles are identical");
    println!("to the baseline — so its whole transition reduction converts to an");
    println!("energy-delay gain. The dictionary's extra stage costs a few percent");
    println!("of runtime on these loop-dominated kernels (every taken branch pays");
    println!("one more bubble); on its best kernels its larger raw bus savings can");
    println!("still win EDP, at the price of a word-wide CAM and the slowdown.");
}
