//! Perf-history sentinel: scale-stamped summaries of the committed
//! `BENCH_*.json` artifacts, appended to `results/BENCH_history.jsonl`
//! by `imt bench --record` and compared by `imt obs regress`.
//!
//! ## Why a sentinel
//!
//! The bench artifacts are point-in-time snapshots; nothing relates one
//! PR's numbers to the last PR's. The sentinel closes that loop: each
//! recorded entry is one JSONL line
//!
//! ```json
//! {"schema": "imt-bench-history/v1", "scale": "paper",
//!  "simd_path": "avx2", "threads": 8,
//!  "metrics": {"serve.throughput_rps": 512.0, ...}}
//! ```
//!
//! and [`regress`] compares the *current* artifacts against the **median
//! of the last N same-scale entries** (noise-aware: one outlier run in
//! the history cannot move the baseline) with per-metric tolerances —
//! throughput-like metrics regress when they fall more than their
//! tolerance below baseline, latency-like (`*_ms`) metrics when they
//! rise more than theirs above it.
//!
//! Entries are stamped with the scale read from the artifacts
//! themselves, not from CLI flags: recording at `--test-scale` with
//! paper-scale artifacts on disk stamps `paper`, which is what the
//! numbers actually are.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use imt_obs::json::Json;

/// The history entry schema identifier.
pub const SCHEMA: &str = "imt-bench-history/v1";

/// History file name under the results directory.
pub const FILE: &str = "BENCH_history.jsonl";

/// Default number of most-recent same-scale entries the baseline median
/// is taken over.
pub const DEFAULT_WINDOW: usize = 5;

/// The parsed `BENCH_*.json` artifacts present in a results directory.
pub struct BenchDocs {
    /// `BENCH_pipeline.json`, if present.
    pub pipeline: Option<Json>,
    /// `BENCH_replay.json`, if present.
    pub replay: Option<Json>,
    /// `BENCH_serve.json`, if present.
    pub serve: Option<Json>,
    /// `BENCH_net.json`, if present.
    pub net: Option<Json>,
    /// `BENCH_arena.json`, if present.
    pub arena: Option<Json>,
}

impl BenchDocs {
    /// Whether no artifact was found at all.
    pub fn is_empty(&self) -> bool {
        self.pipeline.is_none()
            && self.replay.is_none()
            && self.serve.is_none()
            && self.net.is_none()
            && self.arena.is_none()
    }
}

/// Loads whichever `BENCH_*.json` artifacts exist under `results`.
///
/// # Errors
///
/// An artifact that exists but does not parse is an error (a silently
/// skipped file would record a misleadingly sparse entry).
pub fn load_docs(results: &Path) -> Result<BenchDocs, String> {
    let load = |name: &str| -> Result<Option<Json>, String> {
        let path = results.join(name);
        if !path.exists() {
            return Ok(None);
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Json::parse(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    };
    Ok(BenchDocs {
        pipeline: load("BENCH_pipeline.json")?,
        replay: load("BENCH_replay.json")?,
        serve: load("BENCH_serve.json")?,
        net: load("BENCH_net.json")?,
        arena: load("BENCH_arena.json")?,
    })
}

fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(values[values.len() / 2])
}

/// Median of `key` over an artifact's per-kernel rows.
fn median_over(doc: &Json, rows_key: &str, key: &str) -> Option<f64> {
    let rows = doc.get(rows_key)?.as_array()?;
    median(
        rows.iter()
            .filter_map(|row| row.get(key).and_then(Json::as_f64))
            .collect(),
    )
}

/// Summarizes the artifacts into the flat metric map a history entry
/// carries. Missing artifacts simply contribute no metrics.
///
/// # Errors
///
/// Disagreeing `scale` stamps across artifacts (the numbers would not be
/// comparable to any single baseline), or no artifacts at all.
pub fn summarize(docs: &BenchDocs) -> Result<Json, String> {
    if docs.is_empty() {
        return Err("no BENCH_*.json artifacts found; run `imt bench` first".to_string());
    }
    let mut scale: Option<String> = None;
    let mut simd_path: Option<String> = None;
    let mut threads: Option<u64> = None;
    for doc in [
        &docs.pipeline,
        &docs.replay,
        &docs.serve,
        &docs.net,
        &docs.arena,
    ]
    .into_iter()
    .flatten()
    {
        if let Some(s) = doc.get("scale").and_then(Json::as_str) {
            match &scale {
                Some(prev) if prev != s => {
                    return Err(format!(
                        "artifacts disagree on scale ({prev} vs {s}); regenerate them together"
                    ));
                }
                _ => scale = Some(s.to_string()),
            }
        }
        if let Some(p) = doc.get("simd_path").and_then(Json::as_str) {
            simd_path = Some(p.to_string());
        }
        if let Some(t) = doc.get("threads").and_then(Json::as_u64) {
            threads = Some(t);
        }
    }
    let scale = scale.ok_or("no artifact carries a `scale` stamp")?;

    let mut metrics: Vec<(String, Json)> = Vec::new();
    let mut push = |name: &str, value: Option<f64>| {
        if let Some(v) = value {
            metrics.push((name.to_string(), Json::F64(v)));
        }
    };
    if let Some(pipeline) = &docs.pipeline {
        push(
            "pipeline.blocks_per_sec",
            median_over(pipeline, "kernels", "blocks_per_sec"),
        );
        push(
            "pipeline.codec_speedup",
            median_over(pipeline, "kernels", "codec_speedup"),
        );
        push(
            "pipeline.codec_sliced_speedup",
            median_over(pipeline, "kernels", "codec_sliced_speedup"),
        );
    }
    if let Some(replay) = &docs.replay {
        push("replay.speedup", median_over(replay, "kernels", "speedup"));
    }
    if let Some(serve) = &docs.serve {
        // Best sweep point by throughput; its tail latency rides along so
        // a PR cannot buy throughput with unbounded p99.
        let best = serve
            .get("sweeps")
            .and_then(Json::as_array)
            .and_then(|sweeps| {
                sweeps
                    .iter()
                    .filter_map(|s| {
                        s.get("throughput_rps")
                            .and_then(Json::as_f64)
                            .map(|t| (t, s))
                    })
                    .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            });
        if let Some((throughput, sweep)) = best {
            push("serve.throughput_rps", Some(throughput));
            push("serve.p99_ms", sweep.get("p99_ms").and_then(Json::as_f64));
        }
    }
    if let Some(net) = &docs.net {
        // The network path's capacity and its open-loop tail latency:
        // a PR may not slow the wire without tripping the sentinel.
        push(
            "net.saturation_rps",
            net.get("saturation_rps").and_then(Json::as_f64),
        );
        let open = net.get("open_loop");
        push(
            "net.p99_ms",
            open.and_then(|o| o.get("p99_ms")).and_then(Json::as_f64),
        );
        push(
            "net.p999_ms",
            open.and_then(|o| o.get("p999_ms")).and_then(Json::as_f64),
        );
        // Per-mode: the reactor front-end's saturation and its
        // 10⁶-request open-loop tail, so an event-loop regression fires
        // the sentinel independently of the blocking-mode numbers.
        let reactor = net.get("reactor");
        push(
            "net.reactor.saturation_rps",
            reactor
                .and_then(|r| r.get("saturation_rps"))
                .and_then(Json::as_f64),
        );
        let mega = reactor.and_then(|r| r.get("open_loop_1m"));
        push(
            "net.reactor.p99_ms",
            mega.and_then(|o| o.get("p99_ms")).and_then(Json::as_f64),
        );
        push(
            "net.reactor.p999_ms",
            mega.and_then(|o| o.get("p999_ms")).and_then(Json::as_f64),
        );
    }
    if let Some(arena) = &docs.arena {
        // The arena's quality floor: auto-select and the best single
        // scheme must keep eliminating transitions. These are exact
        // (replay-derived) numbers, so the default tolerance is pure
        // headroom against intentional re-baselining, not noise.
        let nested = |outer: &str| {
            let rows = arena.get("kernels")?.as_array()?;
            median(
                rows.iter()
                    .filter_map(|row| {
                        row.get(outer)?
                            .get("reduction_percent")
                            .and_then(Json::as_f64)
                    })
                    .collect(),
            )
        };
        push("arena.auto_reduction_percent", nested("auto"));
        push("arena.best_single_reduction_percent", nested("best_single"));
    }
    if metrics.is_empty() {
        return Err("artifacts carried no recognized metrics".to_string());
    }

    let mut pairs = vec![
        ("schema".to_string(), Json::str(SCHEMA)),
        ("scale".to_string(), Json::str(scale)),
    ];
    if let Some(p) = simd_path {
        pairs.push(("simd_path".to_string(), Json::str(p)));
    }
    if let Some(t) = threads {
        pairs.push(("threads".to_string(), Json::U64(t)));
    }
    pairs.push(("metrics".to_string(), Json::Obj(metrics)));
    Ok(Json::Obj(pairs))
}

/// Appends `entry` to `<results>/BENCH_history.jsonl`, creating the file.
/// Returns the path and the 1-based entry number.
///
/// # Errors
///
/// I/O failure opening or writing the history file.
pub fn append(results: &Path, entry: &Json) -> Result<(PathBuf, usize), String> {
    let path = results.join(FILE);
    std::fs::create_dir_all(results).map_err(|e| format!("{}: {e}", results.display()))?;
    let existing = match std::fs::read_to_string(&path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
        Err(_) => 0,
    };
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(file, "{}", entry.render()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((path, existing + 1))
}

/// Reads and parses every entry of `<results>/BENCH_history.jsonl`
/// (empty when the file does not exist).
///
/// # Errors
///
/// A line that is not valid JSON or carries a different schema.
pub fn read_history(results: &Path) -> Result<Vec<Json>, String> {
    let path = results.join(FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => return Ok(Vec::new()),
    };
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc =
            Json::parse(line).map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!(
                "{} line {}: schema `{schema}`, expected `{SCHEMA}`",
                path.display(),
                i + 1
            ));
        }
        entries.push(doc);
    }
    Ok(entries)
}

/// How one metric is judged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPolicy {
    /// Relative tolerance around the baseline (e.g. 0.15 = 15 %).
    pub tolerance: f64,
    /// Whether larger values are better (throughput) or worse (latency).
    pub higher_is_better: bool,
}

/// Per-metric regression policy. Tolerances are deliberately asymmetric
/// with the metric's noise: wall-clock throughput on shared CI runners
/// jitters by ~10 %, speedup *ratios* (both sides jitter) a bit more,
/// and tail latency the most.
pub fn policy(metric: &str) -> MetricPolicy {
    if metric.ends_with("_ms") {
        return MetricPolicy {
            tolerance: 0.50,
            higher_is_better: false,
        };
    }
    let tolerance = match metric {
        "serve.throughput_rps" => 0.15,
        _ => 0.25, // blocks_per_sec and the speedup ratios
    };
    MetricPolicy {
        tolerance,
        higher_is_better: true,
    }
}

/// One metric's verdict from [`regress`].
#[derive(Debug, Clone)]
pub struct Check {
    /// Metric name, e.g. `serve.throughput_rps`.
    pub metric: String,
    /// Median of the baseline window (`NaN`-free; absent metrics are
    /// skipped, not zero).
    pub baseline: f64,
    /// The current artifacts' value.
    pub current: f64,
    /// History entries the baseline median was taken over.
    pub samples: usize,
    /// Applied policy.
    pub policy: MetricPolicy,
    /// Whether the current value crossed the tolerance the wrong way.
    pub regressed: bool,
}

impl Check {
    /// The bound the current value was held to.
    pub fn bound(&self) -> f64 {
        if self.policy.higher_is_better {
            self.baseline * (1.0 - self.policy.tolerance)
        } else {
            self.baseline * (1.0 + self.policy.tolerance)
        }
    }
}

/// Compares `current` (a [`summarize`] entry) against the history:
/// for each current metric with at least one same-scale baseline sample,
/// the baseline is the median of the last `window` samples and the
/// verdict follows [`policy`]. Metrics with no history are skipped —
/// a new metric cannot regress.
pub fn regress(history: &[Json], current: &Json, window: usize) -> Vec<Check> {
    let window = window.max(1);
    let scale = current.get("scale").and_then(Json::as_str).unwrap_or("");
    let same_scale: Vec<&Json> = history
        .iter()
        .filter(|e| e.get("scale").and_then(Json::as_str) == Some(scale))
        .collect();
    let Some(metrics) = current.get("metrics").and_then(Json::as_object) else {
        return Vec::new();
    };
    let mut checks = Vec::new();
    for (metric, value) in metrics {
        let Some(current_value) = value.as_f64() else {
            continue;
        };
        let samples: Vec<f64> = same_scale
            .iter()
            .rev()
            .filter_map(|e| {
                e.get("metrics")
                    .and_then(|m| m.get(metric))
                    .and_then(Json::as_f64)
            })
            .take(window)
            .collect();
        let Some(baseline) = median(samples.clone()) else {
            continue;
        };
        let policy = policy(metric);
        let regressed = if policy.higher_is_better {
            current_value < baseline * (1.0 - policy.tolerance)
        } else {
            current_value > baseline * (1.0 + policy.tolerance)
        };
        checks.push(Check {
            metric: metric.clone(),
            baseline,
            current: current_value,
            samples: samples.len(),
            policy,
            regressed,
        });
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scale: &str, metrics: Vec<(&str, f64)>) -> Json {
        Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("scale", Json::str(scale)),
            (
                "metrics",
                Json::Obj(
                    metrics
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::F64(v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn net_doc(scale: &str, saturation: f64, p99: f64) -> Json {
        Json::obj(vec![
            ("scale", Json::str(scale)),
            ("saturation_rps", Json::F64(saturation)),
            (
                "open_loop",
                Json::obj(vec![
                    ("p99_ms", Json::F64(p99)),
                    ("p999_ms", Json::F64(p99 * 2.0)),
                ]),
            ),
            (
                "reactor",
                Json::obj(vec![
                    ("saturation_rps", Json::F64(saturation * 3.0)),
                    (
                        "open_loop_1m",
                        Json::obj(vec![
                            ("p99_ms", Json::F64(p99 / 2.0)),
                            ("p999_ms", Json::F64(p99)),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    fn serve_doc(scale: &str, throughput: f64, p99: f64) -> Json {
        Json::obj(vec![
            ("scale", Json::str(scale)),
            (
                "sweeps",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("workers", Json::U64(1)),
                        ("throughput_rps", Json::F64(throughput / 2.0)),
                        ("p99_ms", Json::F64(p99 * 2.0)),
                    ]),
                    Json::obj(vec![
                        ("workers", Json::U64(4)),
                        ("throughput_rps", Json::F64(throughput)),
                        ("p99_ms", Json::F64(p99)),
                    ]),
                ]),
            ),
        ])
    }

    fn arena_doc(scale: &str, auto: &[f64], best: &[f64]) -> Json {
        Json::obj(vec![
            ("scale", Json::str(scale)),
            (
                "kernels",
                Json::Arr(
                    auto.iter()
                        .zip(best)
                        .map(|(&a, &b)| {
                            Json::obj(vec![
                                ("auto", Json::obj(vec![("reduction_percent", Json::F64(a))])),
                                (
                                    "best_single",
                                    Json::obj(vec![("reduction_percent", Json::F64(b))]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn summarize_takes_medians_and_best_sweep() {
        let pipeline = Json::obj(vec![
            ("scale", Json::str("paper")),
            ("simd_path", Json::str("avx2")),
            ("threads", Json::U64(8)),
            (
                "kernels",
                Json::Arr(
                    [10.0, 30.0, 20.0]
                        .iter()
                        .map(|&b| {
                            Json::obj(vec![
                                ("blocks_per_sec", Json::F64(b)),
                                ("codec_sliced_speedup", Json::F64(b / 10.0)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let docs = BenchDocs {
            pipeline: Some(pipeline),
            replay: None,
            serve: Some(serve_doc("paper", 100.0, 4.0)),
            net: Some(net_doc("paper", 900.0, 12.0)),
            arena: Some(arena_doc("paper", &[40.0, 50.0, 45.0], &[38.0, 48.0, 43.0])),
        };
        let entry = summarize(&docs).unwrap();
        assert_eq!(entry.get("scale").and_then(Json::as_str), Some("paper"));
        assert_eq!(entry.get("simd_path").and_then(Json::as_str), Some("avx2"));
        let metrics = entry.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("pipeline.blocks_per_sec")
                .and_then(Json::as_f64),
            Some(20.0),
            "median, not mean"
        );
        assert_eq!(
            metrics.get("serve.throughput_rps").and_then(Json::as_f64),
            Some(100.0),
            "best sweep point"
        );
        assert_eq!(
            metrics.get("serve.p99_ms").and_then(Json::as_f64),
            Some(4.0),
            "p99 of the best-throughput sweep"
        );
        assert_eq!(
            metrics.get("net.saturation_rps").and_then(Json::as_f64),
            Some(900.0)
        );
        assert_eq!(metrics.get("net.p99_ms").and_then(Json::as_f64), Some(12.0));
        assert_eq!(
            metrics.get("net.p999_ms").and_then(Json::as_f64),
            Some(24.0)
        );
        assert_eq!(
            metrics
                .get("net.reactor.saturation_rps")
                .and_then(Json::as_f64),
            Some(2700.0),
            "reactor saturation recorded per mode"
        );
        assert_eq!(
            metrics.get("net.reactor.p99_ms").and_then(Json::as_f64),
            Some(6.0)
        );
        assert_eq!(
            metrics.get("net.reactor.p999_ms").and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(
            metrics
                .get("arena.auto_reduction_percent")
                .and_then(Json::as_f64),
            Some(45.0),
            "median over the per-kernel auto reductions"
        );
        assert_eq!(
            metrics
                .get("arena.best_single_reduction_percent")
                .and_then(Json::as_f64),
            Some(43.0)
        );
    }

    #[test]
    fn summarize_rejects_disagreeing_scales() {
        let docs = BenchDocs {
            pipeline: Some(Json::obj(vec![
                ("scale", Json::str("test")),
                ("kernels", Json::Arr(vec![])),
            ])),
            replay: None,
            serve: Some(serve_doc("paper", 100.0, 4.0)),
            net: None,
            arena: None,
        };
        let err = summarize(&docs).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
    }

    #[test]
    fn sentinel_fires_on_a_20_percent_throughput_regression() {
        let history: Vec<Json> = (0..5)
            .map(|_| entry("paper", vec![("serve.throughput_rps", 100.0)]))
            .collect();
        let slowed = entry("paper", vec![("serve.throughput_rps", 80.0)]);
        let checks = regress(&history, &slowed, DEFAULT_WINDOW);
        assert_eq!(checks.len(), 1);
        assert!(
            checks[0].regressed,
            "a 20% drop must cross the 15% throughput tolerance"
        );
        assert_eq!(checks[0].baseline, 100.0);

        // The recorded baseline itself passes.
        let same = entry("paper", vec![("serve.throughput_rps", 100.0)]);
        assert!(!regress(&history, &same, DEFAULT_WINDOW)[0].regressed);
        // ...as does ordinary noise inside the tolerance.
        let noisy = entry("paper", vec![("serve.throughput_rps", 90.0)]);
        assert!(!regress(&history, &noisy, DEFAULT_WINDOW)[0].regressed);
    }

    #[test]
    fn baseline_median_shrugs_off_one_outlier_run() {
        let mut history: Vec<Json> = (0..4)
            .map(|_| entry("paper", vec![("serve.throughput_rps", 100.0)]))
            .collect();
        // One anomalously fast run must not raise the bar...
        history.push(entry("paper", vec![("serve.throughput_rps", 500.0)]));
        let current = entry("paper", vec![("serve.throughput_rps", 95.0)]);
        let checks = regress(&history, &current, DEFAULT_WINDOW);
        assert_eq!(checks[0].baseline, 100.0, "median ignores the outlier");
        assert!(!checks[0].regressed);
        // ...and only the window's most recent entries count.
        let checks = regress(&history, &current, 1);
        assert_eq!(checks[0].baseline, 500.0, "window=1 sees only the outlier");
        assert!(checks[0].regressed);
    }

    #[test]
    fn latency_regresses_upward_and_other_scales_are_ignored() {
        let history = vec![
            entry("test", vec![("serve.p99_ms", 1.0)]),
            entry("paper", vec![("serve.p99_ms", 10.0)]),
        ];
        // p99 doubled versus the paper-scale baseline: above the 50%
        // latency tolerance. The test-scale entry must not dilute it.
        let current = entry("paper", vec![("serve.p99_ms", 20.0)]);
        let checks = regress(&history, &current, DEFAULT_WINDOW);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].baseline, 10.0);
        assert!(checks[0].regressed);
        assert!(!checks[0].policy.higher_is_better);

        // A brand-new metric has no baseline and cannot regress.
        let novel = entry("paper", vec![("pipeline.blocks_per_sec", 1.0)]);
        assert!(regress(&history, &novel, DEFAULT_WINDOW).is_empty());
    }

    #[test]
    fn history_file_round_trips_through_append_and_read() {
        let dir = std::env::temp_dir().join("imt-bench-history-test");
        let _ = std::fs::remove_dir_all(&dir);
        let e = entry("paper", vec![("serve.throughput_rps", 100.0)]);
        let (path, n1) = append(&dir, &e).unwrap();
        let (_, n2) = append(&dir, &e).unwrap();
        assert_eq!((n1, n2), (1, 2));
        assert_eq!(path, dir.join(FILE));
        let entries = read_history(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], e);

        // A corrupted line fails loudly instead of silently shrinking
        // the baseline window.
        std::fs::write(&path, "{\"schema\":\"other/v1\"}\n").unwrap();
        assert!(read_history(&dir).unwrap_err().contains("schema"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_results_dir_reads_as_empty_history() {
        let dir = std::env::temp_dir().join("imt-bench-history-absent");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(read_history(&dir).unwrap().is_empty());
        assert!(load_docs(&dir).unwrap().is_empty());
        assert!(summarize(&load_docs(&dir).unwrap()).is_err());
    }
}
