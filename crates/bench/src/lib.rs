//! # imt-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index), all built on the helpers here:
//!
//! * [`runner`] — profile → encode → evaluate for one kernel and one
//!   configuration, the unit of work behind Figures 6 and 7 and the
//!   ablations;
//! * [`table`] — plain-text table and ASCII-bar-chart rendering shared by
//!   the experiment binaries.
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp_fig2` | Figure 2 (optimal codes, block size 3) |
//! | `exp_fig3` | Figure 3 (TTN/RTN/improvement, sizes 2–7) |
//! | `exp_fig4` | Figure 4 (optimal codes, block size 5, 8 functions) |
//! | `exp_subset` | §5.2 minimal-subset claim (exact set cover) |
//! | `exp_sec6` | §6 random-stream experiment (50 % ± 1 %) |
//! | `exp_fig6` | Figure 6 (six kernels × block sizes 4–7) |
//! | `exp_fig7` | Figure 7 (bar chart of Figure 6) |
//! | `exp_ablation_tt` | TT-capacity sweep (A1) |
//! | `exp_ablation_overlap` | overlap semantics & τ-set size (A2) |
//! | `exp_baselines` | comparison against bus-invert / T0 / Gray (A3) |
//! | `exp_history` | §5.1 history-depth generalisation (E-H) |
//! | `exp_icache` | §8 storage-type claim with an I-cache (E-C) |
//! | `exp_sensitivity` | §1 input-distribution independence (E-S) |
//! | `exp_extra` | fir/dct/crc32 generality suite (E-K) |
//! | `exp_combined` | data + address interconnect composition (E-X) |
//! | `exp_lanes` | per-lane anatomy + hardware budget (E-L) |
//! | `exp_timing` | critical-path timing, IMT vs dictionary (E-T) |
//! | `exp_schedule` | compiler cooperation via scheduling (E-O) |
//! | `exp_gates` | exact NAND2 synthesis of the restore cell (E-G) |
//! | `exp_perf` | encode-pipeline wall-time, serial vs parallel (E-P) |
//! | `exp_fault` | TT/BBIT upset campaigns, protection sweep (E-F) |
//! | `exp_serve` | batched service-layer load generator (E-V) |
//! | `exp_arena` | encoder arena: schemes × kernels, Pareto + auto-select (E-A) |
//! | `exp_summary` | one-screen PASS/FAIL reproduction scorecard |
//!
//! Binaries accept `--test-scale` to run on the small kernel instances
//! (used by integration tests); the default is the paper's problem sizes.

pub mod arena;
pub mod history;
pub mod runner;
pub mod table;

/// Ends an experiment run under the active `IMT_OBS` mode: no-op when
/// off, stderr report for `report`, manifest + JSONL under `IMT_OBS_PATH`
/// (default `results/obs`) for `json`. Never touches stdout — the
/// `results/*.txt` artifacts stay byte-identical with observability on —
/// and never fails the experiment over a sink I/O error.
/// Arms a crash guard for `run`: if the experiment panics before
/// [`finish_run`] defuses it, a partial manifest with
/// `status: "aborted"` is flushed under the obs dir (JSON mode only),
/// so half-finished runs are visible to `imt obs check` instead of
/// vanishing. Call first thing in `main` and keep the guard alive.
pub fn begin_run(run: &str) -> imt_obs::manifest::RunGuard {
    imt_obs::manifest::RunGuard::begin(run)
}

pub fn finish_run(run: &str) {
    use imt_obs::json::Json;
    let extra = vec![(
        "environment",
        Json::obj(vec![
            (
                "threads",
                Json::U64(imt_bitcode::par::thread_count() as u64),
            ),
            (
                "scale",
                Json::str(if std::env::args().any(|a| a == "--test-scale") {
                    "test"
                } else {
                    "paper"
                }),
            ),
            (
                "simd_path",
                Json::str(imt_bitcode::simd::active_path().name()),
            ),
        ]),
    )];
    if let Err(error) = imt_obs::manifest::finish_run(run, extra) {
        eprintln!("imt-obs: failed to write manifest for {run}: {error}");
    }
}
