//! Profile → encode → evaluate plumbing shared by the experiments.
//!
//! Since the dynamic PC sequence is invariant under every encoding (decode
//! is exact), each (kernel, scale) is simulated **once** into a
//! [`FetchEdgeProfile`]; every grid cell then evaluates its encoded image
//! in closed form through [`imt_core::eval::evaluate_replay`] — O(static
//! edges) per cell instead of O(dynamic fetches). Profiles are memoized in
//! process and shared across binaries via the on-disk
//! [`imt_core::profile_cache`]; `--no-profile-cache` on any binary (or
//! `IMT_PROFILE_CACHE=off`) restores the uncached per-call behaviour.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use imt_bitcode::par::par_map_coarse;
use imt_core::eval::{evaluate_auto, EvalNeeds, Evaluation};
use imt_core::{encode_program, profile_cache, EncodedProgram, EncoderConfig};
use imt_isa::Program;
use imt_kernels::{Kernel, KernelRun, KernelSpec};
use imt_sim::edge::FetchEdgeProfile;

/// Which problem sizes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes (§8): mmul 100, sor 256, ej 128, fft 256, tri 128,
    /// lu 128.
    Paper,
    /// Small instances for tests and smoke runs.
    Test,
}

impl Scale {
    /// Parses `--test-scale` from a binary's argument list.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--test-scale") {
            Scale::Test
        } else {
            Scale::Paper
        }
    }

    /// The kernel spec at this scale.
    pub fn spec(self, kernel: Kernel) -> KernelSpec {
        match self {
            Scale::Paper => kernel.paper_spec(),
            Scale::Test => kernel.test_spec(),
        }
    }

    /// The canonical lowercase name embedded in every `BENCH_*.json`
    /// (`"scale"` field) and asserted by `tests/results_scale.rs`:
    /// committed artifacts must say `"paper"`.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Test => "test",
        }
    }
}

/// One kernel's recorded run: the assembled program, its fetch-edge
/// profile (which carries stdout, exit code and fetch count), and the
/// per-instruction counts the encoder's hot-loop selection consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// The spec the profile was recorded for.
    pub spec: KernelSpec,
    /// The assembled program.
    pub program: Program,
    /// The weighted fetch-pair multiset.
    pub edges: FetchEdgeProfile,
    /// Per-instruction execution counts (derived from `edges`; identical
    /// to [`imt_sim::Cpu::profile`]).
    pub profile: Vec<u64>,
}

impl KernelProfile {
    /// The profile as the legacy [`KernelRun`] shape.
    pub fn to_run(&self) -> KernelRun {
        KernelRun {
            program: self.program.clone(),
            profile: self.profile.clone(),
            stdout: self.edges.stdout().to_string(),
            instructions: self.edges.fetches(),
        }
    }
}

/// Whether profile caching (memo + disk) is active for this process:
/// disabled by `--no-profile-cache` in the argument list or by
/// `IMT_PROFILE_CACHE=off`.
pub fn profile_cache_enabled() -> bool {
    !std::env::args().any(|a| a == "--no-profile-cache") && profile_cache::enabled()
}

fn memo() -> &'static Mutex<HashMap<String, Arc<KernelProfile>>> {
    static MEMO: OnceLock<Mutex<HashMap<String, Arc<KernelProfile>>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The fetch-edge profile for one kernel spec, recorded at most once per
/// (kernel, scale) per process and shared across processes through the
/// on-disk cache. The golden-output check runs here — once per profile,
/// not once per grid cell — and also re-validates disk hits, so a stale
/// or colliding cache entry is discarded and re-recorded, never trusted.
///
/// # Panics
///
/// Panics if the kernel misbehaves (simulation fault, wrong checksum) —
/// experiments must not silently produce numbers from a broken run.
pub fn kernel_profile(spec: &KernelSpec) -> Arc<KernelProfile> {
    let caching = profile_cache_enabled();
    if caching {
        if let Some(hit) = memo()
            .lock()
            .expect("profile memo poisoned")
            .get(&spec.name)
        {
            if imt_obs::enabled() {
                imt_obs::counter!("bench.profile.memo_hits").inc();
            }
            return Arc::clone(hit);
        }
    }
    let program = spec.assemble();
    let disk_hit = if caching {
        profile_cache::load(&program, spec.max_steps)
            .filter(|edges| edges.stdout() == spec.expected_output)
    } else {
        None
    };
    let edges = match disk_hit {
        Some(edges) => edges,
        None => {
            let recorded = {
                let _span = imt_obs::span!("bench.profile");
                FetchEdgeProfile::record(&program, spec.max_steps)
                    .unwrap_or_else(|e| panic!("{}: run failed: {e}", spec.name))
            };
            assert_eq!(
                recorded.stdout(),
                spec.expected_output,
                "{}: kernel output diverged from the golden model",
                spec.name
            );
            if caching {
                if let Err(e) = profile_cache::store(&program, spec.max_steps, &recorded) {
                    eprintln!("imt-bench: could not cache profile for {}: {e}", spec.name);
                }
            }
            recorded
        }
    };
    let profile = Arc::new(KernelProfile {
        spec: spec.clone(),
        program,
        profile: edges.per_index_counts(),
        edges,
    });
    if caching {
        memo()
            .lock()
            .expect("profile memo poisoned")
            .insert(spec.name.clone(), Arc::clone(&profile));
    }
    profile
}

/// The full pipeline result for one kernel × configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Kernel short name (`mmul`, …).
    pub kernel: &'static str,
    /// Parameterised instance name (`mmul-100`, …).
    pub instance: String,
    /// The configuration used.
    pub config: EncoderConfig,
    /// The dynamic evaluation (transitions, reduction, verification).
    pub evaluation: Evaluation,
    /// The static schedule that produced it.
    pub encoded: EncodedProgram,
}

impl KernelPoint {
    /// Baseline transitions in millions — the paper's `#TR` row unit.
    pub fn baseline_millions(&self) -> f64 {
        self.evaluation.baseline_transitions as f64 / 1e6
    }

    /// Encoded transitions in millions.
    pub fn encoded_millions(&self) -> f64 {
        self.evaluation.encoded_transitions as f64 / 1e6
    }

    /// Reduction percentage.
    pub fn reduction_percent(&self) -> f64 {
        self.evaluation.reduction_percent()
    }
}

/// Runs one kernel through profiling, encoding and evaluation.
///
/// The profile comes from [`kernel_profile`] (recorded once, golden
/// output asserted there); the evaluation replays it in closed form,
/// falling back to full simulation only if the profile turns out
/// replay-infeasible.
///
/// # Panics
///
/// Panics if the kernel misbehaves (wrong checksum, simulation fault,
/// decode mismatch) — experiments must not silently produce numbers from a
/// broken run.
pub fn run_kernel_point(kernel: Kernel, scale: Scale, config: &EncoderConfig) -> KernelPoint {
    let spec = scale.spec(kernel);
    let profile = kernel_profile(&spec);
    // Label every metric this cell publishes with its grid coordinates
    // (`mmul-100/k5`); cells running on worker threads land in distinct,
    // deterministic registry slots. The label (and its String) is only
    // built when obs is on.
    let _cell = imt_obs::push_label_lazy(|| format!("{}/k{}", spec.name, config.block_size()));
    let encoded = {
        let _span = imt_obs::span!("bench.encode");
        encode_program(&profile.program, &profile.profile, config)
            .unwrap_or_else(|e| panic!("{}: encoding failed: {e}", spec.name))
    };
    let _span = imt_obs::span!("bench.evaluate");
    let (evaluation, _path) = evaluate_auto(
        &profile.program,
        &encoded,
        spec.max_steps,
        Some(&profile.edges),
        EvalNeeds::transitions_only(),
    )
    .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", spec.name));
    drop(_span);
    if imt_obs::enabled() {
        imt_obs::counter!("bench.cells_done").inc();
    }
    KernelPoint {
        kernel: kernel.name(),
        instance: spec.name,
        config: *config,
        evaluation,
        encoded,
    }
}

/// Runs and validates a kernel, returning its profile in the legacy
/// [`KernelRun`] shape. Served from the profile cache: the kernel is
/// simulated at most once per (kernel, scale) per process.
///
/// # Panics
///
/// Panics if the run faults or its output disagrees with the golden model.
pub fn profiled_run(spec: &KernelSpec) -> KernelRun {
    kernel_profile(spec).to_run()
}

/// Records the profiles for `kernels` (deduplicated) in parallel, so a
/// following cell fan-out finds every profile memoized instead of racing
/// to record the same kernel on several workers.
fn warm_profiles(kernels: impl IntoIterator<Item = Kernel>, scale: Scale) {
    if !profile_cache_enabled() {
        return;
    }
    let mut unique: Vec<Kernel> = Vec::new();
    for kernel in kernels {
        if !unique.contains(&kernel) {
            unique.push(kernel);
        }
    }
    // Coarse fan-out: a handful of whole-kernel simulations, each far
    // heavier than the global fan-out floor is calibrated for.
    par_map_coarse(&unique, 1, |_, &kernel| {
        kernel_profile(&scale.spec(kernel));
    });
}

/// The Figure 6 grid: every kernel × block sizes 4–7, at the paper's TT
/// capacity of 16 entries.
///
/// The 24 grid points are independent pipeline runs, so they fan out
/// across worker threads; the index-ordered merge keeps the grid (and
/// every artifact rendered from it) identical to the serial evaluation.
pub fn figure6_grid(scale: Scale) -> Vec<Vec<KernelPoint>> {
    const BLOCK_SIZES: std::ops::RangeInclusive<usize> = 4..=7;
    let cells: Vec<(Kernel, usize)> = Kernel::ALL
        .iter()
        .flat_map(|&kernel| BLOCK_SIZES.map(move |k| (kernel, k)))
        .collect();
    warm_profiles(Kernel::ALL, scale);
    let points = par_map_coarse(&cells, 1, |_, &(kernel, k)| {
        let config = EncoderConfig::default()
            .with_block_size(k)
            .expect("block sizes 4..=7 are valid");
        run_kernel_point(kernel, scale, &config)
    });
    let per_kernel = BLOCK_SIZES.count();
    let mut grid: Vec<Vec<KernelPoint>> = Vec::with_capacity(Kernel::ALL.len());
    let mut points = points.into_iter();
    for _ in Kernel::ALL {
        grid.push(points.by_ref().take(per_kernel).collect());
    }
    grid
}

/// Runs every `(kernel, config)` cell of an experiment grid in parallel,
/// returning the points in the input order.
///
/// This is the shared fan-out for the ablation sweeps: each cell is one
/// encode + replay evaluation (profiles are recorded once per kernel
/// up front), embarrassingly parallel and deterministic per cell, so the
/// merged vector is byte-for-byte the serial result.
pub fn run_grid(cells: &[(Kernel, EncoderConfig)], scale: Scale) -> Vec<KernelPoint> {
    warm_profiles(cells.iter().map(|&(kernel, _)| kernel), scale);
    par_map_coarse(cells, 1, |_, &(kernel, ref config)| {
        run_kernel_point(kernel, scale, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_point_reduces_and_verifies() {
        let point = run_kernel_point(Kernel::Tri, Scale::Test, &EncoderConfig::default());
        assert_eq!(point.kernel, "tri");
        assert_eq!(point.evaluation.decode_mismatches, 0);
        assert!(point.evaluation.encoded_transitions <= point.evaluation.baseline_transitions);
        assert!(point.baseline_millions() > 0.0);
        // The replay path carries the real run's output through.
        assert_eq!(
            point.evaluation.stdout,
            Scale::Test.spec(Kernel::Tri).expected_output
        );
    }

    #[test]
    fn scale_selects_spec_sizes() {
        let paper = Scale::Paper.spec(Kernel::Fft);
        let test = Scale::Test.spec(Kernel::Fft);
        assert!(paper.source.len() > test.source.len());
    }

    #[test]
    fn kernel_profile_is_memoized_and_matches_a_direct_run() {
        let spec = Scale::Test.spec(Kernel::Fft);
        let first = kernel_profile(&spec);
        let second = kernel_profile(&spec);
        if profile_cache_enabled() {
            assert!(
                Arc::ptr_eq(&first, &second),
                "second lookup must be a memo hit"
            );
        }
        let direct = spec.run().expect("direct run failed");
        assert_eq!(first.to_run(), direct);
    }
}
