//! Profile → encode → evaluate plumbing shared by the experiments.

use imt_core::eval::{evaluate, Evaluation};
use imt_core::{encode_program, EncodedProgram, EncoderConfig};
use imt_kernels::{Kernel, KernelRun, KernelSpec};

/// Which problem sizes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes (§8): mmul 100, sor 256, ej 128, fft 256, tri 128,
    /// lu 128.
    Paper,
    /// Small instances for tests and smoke runs.
    Test,
}

impl Scale {
    /// Parses `--test-scale` from a binary's argument list.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--test-scale") {
            Scale::Test
        } else {
            Scale::Paper
        }
    }

    /// The kernel spec at this scale.
    pub fn spec(self, kernel: Kernel) -> KernelSpec {
        match self {
            Scale::Paper => kernel.paper_spec(),
            Scale::Test => kernel.test_spec(),
        }
    }
}

/// The full pipeline result for one kernel × configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Kernel short name (`mmul`, …).
    pub kernel: &'static str,
    /// Parameterised instance name (`mmul-100`, …).
    pub instance: String,
    /// The configuration used.
    pub config: EncoderConfig,
    /// The dynamic evaluation (transitions, reduction, verification).
    pub evaluation: Evaluation,
    /// The static schedule that produced it.
    pub encoded: EncodedProgram,
}

impl KernelPoint {
    /// Baseline transitions in millions — the paper's `#TR` row unit.
    pub fn baseline_millions(&self) -> f64 {
        self.evaluation.baseline_transitions as f64 / 1e6
    }

    /// Encoded transitions in millions.
    pub fn encoded_millions(&self) -> f64 {
        self.evaluation.encoded_transitions as f64 / 1e6
    }

    /// Reduction percentage.
    pub fn reduction_percent(&self) -> f64 {
        self.evaluation.reduction_percent()
    }
}

/// Runs one kernel through profiling, encoding and evaluation.
///
/// # Panics
///
/// Panics if the kernel misbehaves (wrong checksum, simulation fault,
/// decode mismatch) — experiments must not silently produce numbers from a
/// broken run.
pub fn run_kernel_point(kernel: Kernel, scale: Scale, config: &EncoderConfig) -> KernelPoint {
    let spec = scale.spec(kernel);
    let run = profiled_run(&spec);
    let encoded = encode_program(&run.program, &run.profile, config)
        .unwrap_or_else(|e| panic!("{}: encoding failed: {e}", spec.name));
    let evaluation = evaluate(&run.program, &encoded, spec.max_steps)
        .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", spec.name));
    assert_eq!(
        evaluation.stdout, spec.expected_output,
        "{}: evaluation run diverged from the golden model",
        spec.name
    );
    KernelPoint {
        kernel: kernel.name(),
        instance: spec.name,
        config: *config,
        evaluation,
        encoded,
    }
}

/// Runs and validates a kernel, returning its profile.
///
/// # Panics
///
/// Panics if the run faults or its output disagrees with the golden model.
pub fn profiled_run(spec: &KernelSpec) -> KernelRun {
    let run = spec.run().unwrap_or_else(|e| panic!("{}: run failed: {e}", spec.name));
    assert_eq!(
        run.stdout, spec.expected_output,
        "{}: kernel output diverged from the golden model",
        spec.name
    );
    run
}

/// The Figure 6 grid: every kernel × block sizes 4–7, at the paper's TT
/// capacity of 16 entries.
pub fn figure6_grid(scale: Scale) -> Vec<Vec<KernelPoint>> {
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            (4..=7)
                .map(|k| {
                    let config = EncoderConfig::default()
                        .with_block_size(k)
                        .expect("block sizes 4..=7 are valid");
                    run_kernel_point(kernel, scale, &config)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_point_reduces_and_verifies() {
        let point = run_kernel_point(Kernel::Tri, Scale::Test, &EncoderConfig::default());
        assert_eq!(point.kernel, "tri");
        assert_eq!(point.evaluation.decode_mismatches, 0);
        assert!(point.evaluation.encoded_transitions <= point.evaluation.baseline_transitions);
        assert!(point.baseline_millions() > 0.0);
    }

    #[test]
    fn scale_selects_spec_sizes() {
        let paper = Scale::Paper.spec(Kernel::Fft);
        let test = Scale::Test.spec(Kernel::Fft);
        assert!(paper.source.len() > test.source.len());
    }
}
