//! Profile → encode → evaluate plumbing shared by the experiments.

use imt_bitcode::par::par_map;
use imt_core::eval::{evaluate, Evaluation};
use imt_core::{encode_program, EncodedProgram, EncoderConfig};
use imt_kernels::{Kernel, KernelRun, KernelSpec};

/// Which problem sizes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes (§8): mmul 100, sor 256, ej 128, fft 256, tri 128,
    /// lu 128.
    Paper,
    /// Small instances for tests and smoke runs.
    Test,
}

impl Scale {
    /// Parses `--test-scale` from a binary's argument list.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--test-scale") {
            Scale::Test
        } else {
            Scale::Paper
        }
    }

    /// The kernel spec at this scale.
    pub fn spec(self, kernel: Kernel) -> KernelSpec {
        match self {
            Scale::Paper => kernel.paper_spec(),
            Scale::Test => kernel.test_spec(),
        }
    }
}

/// The full pipeline result for one kernel × configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Kernel short name (`mmul`, …).
    pub kernel: &'static str,
    /// Parameterised instance name (`mmul-100`, …).
    pub instance: String,
    /// The configuration used.
    pub config: EncoderConfig,
    /// The dynamic evaluation (transitions, reduction, verification).
    pub evaluation: Evaluation,
    /// The static schedule that produced it.
    pub encoded: EncodedProgram,
}

impl KernelPoint {
    /// Baseline transitions in millions — the paper's `#TR` row unit.
    pub fn baseline_millions(&self) -> f64 {
        self.evaluation.baseline_transitions as f64 / 1e6
    }

    /// Encoded transitions in millions.
    pub fn encoded_millions(&self) -> f64 {
        self.evaluation.encoded_transitions as f64 / 1e6
    }

    /// Reduction percentage.
    pub fn reduction_percent(&self) -> f64 {
        self.evaluation.reduction_percent()
    }
}

/// Runs one kernel through profiling, encoding and evaluation.
///
/// # Panics
///
/// Panics if the kernel misbehaves (wrong checksum, simulation fault,
/// decode mismatch) — experiments must not silently produce numbers from a
/// broken run.
pub fn run_kernel_point(kernel: Kernel, scale: Scale, config: &EncoderConfig) -> KernelPoint {
    let spec = scale.spec(kernel);
    // Label every metric this cell publishes with its grid coordinates
    // (`mmul-100/k5`); cells running on worker threads land in distinct,
    // deterministic registry slots.
    let _cell = imt_obs::push_label(format!("{}/k{}", spec.name, config.block_size()));
    let run = {
        let _span = imt_obs::span!("bench.profile");
        profiled_run(&spec)
    };
    let encoded = {
        let _span = imt_obs::span!("bench.encode");
        encode_program(&run.program, &run.profile, config)
            .unwrap_or_else(|e| panic!("{}: encoding failed: {e}", spec.name))
    };
    let _span = imt_obs::span!("bench.evaluate");
    let evaluation = evaluate(&run.program, &encoded, spec.max_steps)
        .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", spec.name));
    drop(_span);
    assert_eq!(
        evaluation.stdout, spec.expected_output,
        "{}: evaluation run diverged from the golden model",
        spec.name
    );
    if imt_obs::enabled() {
        imt_obs::counter!("bench.cells_done").inc();
    }
    KernelPoint {
        kernel: kernel.name(),
        instance: spec.name,
        config: *config,
        evaluation,
        encoded,
    }
}

/// Runs and validates a kernel, returning its profile.
///
/// # Panics
///
/// Panics if the run faults or its output disagrees with the golden model.
pub fn profiled_run(spec: &KernelSpec) -> KernelRun {
    let run = spec
        .run()
        .unwrap_or_else(|e| panic!("{}: run failed: {e}", spec.name));
    assert_eq!(
        run.stdout, spec.expected_output,
        "{}: kernel output diverged from the golden model",
        spec.name
    );
    run
}

/// The Figure 6 grid: every kernel × block sizes 4–7, at the paper's TT
/// capacity of 16 entries.
///
/// The 24 grid points are independent pipeline runs, so they fan out
/// across worker threads; the index-ordered merge keeps the grid (and
/// every artifact rendered from it) identical to the serial evaluation.
pub fn figure6_grid(scale: Scale) -> Vec<Vec<KernelPoint>> {
    const BLOCK_SIZES: std::ops::RangeInclusive<usize> = 4..=7;
    let cells: Vec<(Kernel, usize)> = Kernel::ALL
        .iter()
        .flat_map(|&kernel| BLOCK_SIZES.map(move |k| (kernel, k)))
        .collect();
    let points = par_map(&cells, 1, |_, &(kernel, k)| {
        let config = EncoderConfig::default()
            .with_block_size(k)
            .expect("block sizes 4..=7 are valid");
        run_kernel_point(kernel, scale, &config)
    });
    let per_kernel = BLOCK_SIZES.count();
    let mut grid: Vec<Vec<KernelPoint>> = Vec::with_capacity(Kernel::ALL.len());
    let mut points = points.into_iter();
    for _ in Kernel::ALL {
        grid.push(points.by_ref().take(per_kernel).collect());
    }
    grid
}

/// Runs every `(kernel, config)` cell of an experiment grid in parallel,
/// returning the points in the input order.
///
/// This is the shared fan-out for the ablation sweeps: each cell is one
/// full profile → encode → evaluate pipeline, embarrassingly parallel and
/// deterministic per cell, so the merged vector is byte-for-byte the
/// serial result.
pub fn run_grid(cells: &[(Kernel, EncoderConfig)], scale: Scale) -> Vec<KernelPoint> {
    par_map(cells, 1, |_, &(kernel, ref config)| {
        run_kernel_point(kernel, scale, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_point_reduces_and_verifies() {
        let point = run_kernel_point(Kernel::Tri, Scale::Test, &EncoderConfig::default());
        assert_eq!(point.kernel, "tri");
        assert_eq!(point.evaluation.decode_mismatches, 0);
        assert!(point.evaluation.encoded_transitions <= point.evaluation.baseline_transitions);
        assert!(point.baseline_millions() > 0.0);
    }

    #[test]
    fn scale_selects_spec_sizes() {
        let paper = Scale::Paper.spec(Kernel::Fft);
        let test = Scale::Test.spec(Kernel::Fft);
        assert!(paper.source.len() > test.source.len());
    }
}
