//! Plain-text rendering helpers for the experiment binaries.

/// A simple fixed-width text table.
///
/// ```
/// use imt_bench::table::Table;
///
/// let mut table = Table::new(vec!["k".into(), "TTN".into()]);
/// table.row(vec!["3".into(), "8".into()]);
/// let text = table.render();
/// assert!(text.contains("TTN"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with a separator line under the header.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}"));
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as comma-separated values (for plotting scripts).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(&self.rows) {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart: one labelled bar per entry,
/// scaled so the largest value spans `width` characters.
///
/// ```
/// use imt_bench::table::bar_chart;
///
/// let chart = bar_chart(&[("a".into(), 50.0), ("b".into(), 25.0)], 20, "%");
/// assert!(chart.lines().next().unwrap().contains("####################"));
/// ```
pub fn bar_chart(entries: &[(String, f64)], width: usize, unit: &str) -> String {
    let max = entries.iter().map(|(_, v)| *v).fold(f64::EPSILON, f64::max);
    let label_width = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let bars = ((value / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:<label_width$} |{} {value:.1}{unit}\n",
            "#".repeat(bars)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_padding() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Right-aligned "x" under "name".
        assert!(lines[2].contains(" x"));
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(&[("big".into(), 10.0), ("small".into(), 5.0)], 10, "");
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
    }

    #[test]
    fn bar_chart_handles_zeroes() {
        let chart = bar_chart(&[("zero".into(), 0.0)], 10, "%");
        assert!(chart.contains("0.0%"));
    }
}
