//! Per-lane stream analysis.
//!
//! Instruction encodings give each bus line a very different personality:
//! opcode lines (the top bits) are heavily biased and slow-moving, while
//! immediate/register-field lines toggle often. These statistics expose
//! that structure — it is exactly what the vertical, per-line encoding
//! exploits — and power the `exp_lanes` experiment and the CLI's
//! `analyze` view.

use crate::bits::BitSeq;

/// Statistics of one bit line over a word stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    /// Lane (bit) index.
    pub lane: usize,
    /// Number of bits observed (stream length).
    pub len: usize,
    /// Count of 1 bits.
    pub ones: usize,
    /// 0↔1 transitions along the lane.
    pub transitions: u64,
    /// Length of the longest constant run.
    pub longest_run: usize,
}

impl LaneStats {
    /// Computes the statistics of one lane sequence.
    pub fn of(lane: usize, stream: &BitSeq) -> LaneStats {
        let mut ones = 0usize;
        let mut longest_run = 0usize;
        let mut run = 0usize;
        let mut previous: Option<bool> = None;
        for bit in stream.iter() {
            ones += bit as usize;
            if previous == Some(bit) {
                run += 1;
            } else {
                run = 1;
            }
            longest_run = longest_run.max(run);
            previous = Some(bit);
        }
        LaneStats {
            lane,
            len: stream.len(),
            ones,
            transitions: stream.transitions(),
            longest_run,
        }
    }

    /// Fraction of 1 bits, in `[0, 1]`.
    pub fn bias(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.ones as f64 / self.len as f64
    }

    /// Transitions per opportunity (`len - 1`), in `[0, 1]`.
    pub fn transition_density(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        self.transitions as f64 / (self.len - 1) as f64
    }
}

/// Per-lane statistics of a word stream (`width` lanes).
///
/// ```
/// use imt_bitcode::analysis::analyze_lanes;
///
/// // Lane 0 alternates, lane 1 is constant.
/// let words = [0b01u64, 0b10, 0b11, 0b10];
/// let stats = analyze_lanes(&words, 2);
/// assert_eq!(stats[0].transitions, 3);
/// assert!(stats[1].transition_density() < stats[0].transition_density());
/// ```
///
/// # Panics
///
/// Panics if `width` is outside `1..=64`.
pub fn analyze_lanes(words: &[u64], width: usize) -> Vec<LaneStats> {
    assert!((1..=64).contains(&width), "width {width} outside 1..=64");
    (0..width)
        .map(|lane| LaneStats::of(lane, &BitSeq::from_lane(words, lane)))
        .collect()
}

/// Renders a compact lane table: bias, density, longest run per lane.
pub fn render_lane_table(stats: &[LaneStats]) -> String {
    let mut out = String::from("lane    ones%  trans/op  longest-run\n");
    for s in stats {
        out.push_str(&format!(
            "{:>4}  {:>6.1}  {:>8.3}  {:>11}\n",
            s.lane,
            s.bias() * 100.0,
            s.transition_density(),
            s.longest_run
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitSeq;

    #[test]
    fn stats_of_simple_streams() {
        let s = BitSeq::from_str_time("0011 0111".replace(' ', "").as_str()).unwrap();
        let stats = LaneStats::of(3, &s);
        assert_eq!(stats.lane, 3);
        assert_eq!(stats.len, 8);
        assert_eq!(stats.ones, 5);
        assert_eq!(stats.transitions, 3);
        assert_eq!(stats.longest_run, 3);
        assert!((stats.bias() - 0.625).abs() < 1e-12);
        assert!((stats.transition_density() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_streams() {
        let empty = LaneStats::of(0, &BitSeq::new());
        assert_eq!(empty.bias(), 0.0);
        assert_eq!(empty.transition_density(), 0.0);
        let one = LaneStats::of(0, &BitSeq::repeat(true, 1));
        assert_eq!(one.transition_density(), 0.0);
        assert_eq!(one.longest_run, 1);
    }

    #[test]
    fn instruction_words_have_structured_lanes() {
        // A realistic observation on real code: top (opcode) lanes are more
        // biased than the bottom (immediate) lanes in loop bodies built
        // from I-format instructions.
        let words: Vec<u64> = (0..64u64)
            .map(|i| 0x2400_0000 | (i * 37) & 0xFFFF) // addiu-shaped
            .collect();
        let stats = analyze_lanes(&words, 32);
        let low_density: f64 = stats[..8]
            .iter()
            .map(LaneStats::transition_density)
            .sum::<f64>()
            / 8.0;
        let high_density: f64 = stats[26..]
            .iter()
            .map(LaneStats::transition_density)
            .sum::<f64>()
            / 6.0;
        assert!(low_density > high_density);
        let table = render_lane_table(&stats);
        assert_eq!(table.lines().count(), 33);
    }
}
