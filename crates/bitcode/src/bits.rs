//! Bit sequences in *time order* and their transition counts.
//!
//! Throughout this crate, index 0 of a sequence is the **earliest** bit — the
//! bit carried by the bus line in the first cycle. The paper prints block
//! words the other way around (leftmost character is the *latest* bit, as in
//! its Figures 2 and 4); [`BitSeq::to_paper_string`] and
//! [`BitSeq::from_str_paper`] convert to and from that convention.

use std::fmt;
use std::ops::Index;

use crate::CodecError;

/// A sequence of bits on a single bus line, index 0 = earliest cycle.
///
/// `BitSeq` is the common currency of the codec: original vertical bit
/// sequences, encoded (stored) sequences, and decoded sequences are all
/// `BitSeq`s. The type is a thin, ergonomic wrapper over `Vec<bool>` that
/// adds transition counting and the two string conventions used by the
/// paper.
///
/// ```
/// use imt_bitcode::bits::BitSeq;
///
/// # fn main() -> Result<(), imt_bitcode::CodecError> {
/// let seq = BitSeq::from_str_time("1010")?;
/// assert_eq!(seq.transitions(), 3);
/// // The paper would print this block word reversed:
/// assert_eq!(seq.to_paper_string(), "0101");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSeq {
    bits: Vec<bool>,
}

impl BitSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        BitSeq { bits: Vec::new() }
    }

    /// Creates a sequence of `len` copies of `bit`.
    ///
    /// ```
    /// use imt_bitcode::bits::BitSeq;
    /// assert_eq!(BitSeq::repeat(true, 3).transitions(), 0);
    /// ```
    pub fn repeat(bit: bool, len: usize) -> Self {
        BitSeq {
            bits: vec![bit; len],
        }
    }

    /// Parses a bit string written in time order (leftmost character is the
    /// earliest bit).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::ParseBit`] if the string contains a character
    /// other than `'0'` or `'1'`.
    pub fn from_str_time(s: &str) -> Result<Self, CodecError> {
        let mut bits = Vec::with_capacity(s.len());
        for (position, ch) in s.chars().enumerate() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                found => return Err(CodecError::ParseBit { position, found }),
            }
        }
        Ok(BitSeq { bits })
    }

    /// Parses a bit string written in the paper's convention (leftmost
    /// character is the **latest** bit, as in Figures 2 and 4).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::ParseBit`] if the string contains a character
    /// other than `'0'` or `'1'`.
    pub fn from_str_paper(s: &str) -> Result<Self, CodecError> {
        let mut seq = Self::from_str_time(s)?;
        seq.bits.reverse();
        Ok(seq)
    }

    /// Extracts the vertical sequence of bit `lane` from a slice of machine
    /// words: element `i` is bit `lane` of `words[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn from_lane(words: &[u64], lane: usize) -> Self {
        assert!(lane < 64, "lane {lane} out of range for u64 words");
        BitSeq {
            bits: words.iter().map(|w| (w >> lane) & 1 == 1).collect(),
        }
    }

    /// Number of bits in the sequence.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits in time order.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Appends a bit at the latest end.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Returns bit `i`, or `None` if out of range.
    pub fn get(&self, i: usize) -> Option<bool> {
        self.bits.get(i).copied()
    }

    /// Number of 0↔1 transitions between consecutive bits.
    ///
    /// This is the quantity the encoding minimises: each transition charges
    /// or discharges the bus line capacitance once.
    ///
    /// ```
    /// use imt_bitcode::bits::BitSeq;
    /// # fn main() -> Result<(), imt_bitcode::CodecError> {
    /// assert_eq!(BitSeq::from_str_time("0011")?.transitions(), 1);
    /// assert_eq!(BitSeq::from_str_time("0101")?.transitions(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn transitions(&self) -> u64 {
        self.bits.windows(2).filter(|w| w[0] != w[1]).count() as u64
    }

    /// Iterates over the bits in time order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Renders the sequence in the paper's convention (latest bit leftmost).
    pub fn to_paper_string(&self) -> String {
        self.bits
            .iter()
            .rev()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// Renders the sequence in time order (earliest bit leftmost).
    pub fn to_time_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }
}

impl Index<usize> for BitSeq {
    type Output = bool;

    fn index(&self, i: usize) -> &bool {
        &self.bits[i]
    }
}

impl fmt::Display for BitSeq {
    /// Displays in time order (earliest bit leftmost).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_time_string())
    }
}

impl From<Vec<bool>> for BitSeq {
    fn from(bits: Vec<bool>) -> Self {
        BitSeq { bits }
    }
}

impl From<BitSeq> for Vec<bool> {
    fn from(seq: BitSeq) -> Self {
        seq.bits
    }
}

impl FromIterator<bool> for BitSeq {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitSeq {
            bits: iter.into_iter().collect(),
        }
    }
}

impl Extend<bool> for BitSeq {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        self.bits.extend(iter);
    }
}

impl<'a> IntoIterator for &'a BitSeq {
    type Item = bool;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, bool>>;

    fn into_iter(self) -> Self::IntoIter {
        self.bits.iter().copied()
    }
}

impl IntoIterator for BitSeq {
    type Item = bool;
    type IntoIter = std::vec::IntoIter<bool>;

    fn into_iter(self) -> Self::IntoIter {
        self.bits.into_iter()
    }
}

/// Counts transitions in a plain bool slice (time order).
///
/// Convenience for callers that have not materialised a [`BitSeq`].
pub fn transitions(bits: &[bool]) -> u64 {
    bits.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_time_and_paper_are_reverses() {
        let time = BitSeq::from_str_time("0010").unwrap();
        let paper = BitSeq::from_str_paper("0010").unwrap();
        assert_eq!(time.as_slice(), &[false, false, true, false]);
        assert_eq!(paper.as_slice(), &[false, true, false, false]);
        assert_eq!(time.to_paper_string(), "0100");
        assert_eq!(paper.to_paper_string(), "0010");
    }

    #[test]
    fn parse_rejects_non_bits() {
        let err = BitSeq::from_str_time("01x1").unwrap_err();
        assert_eq!(
            err,
            CodecError::ParseBit {
                position: 2,
                found: 'x'
            }
        );
    }

    #[test]
    fn transition_counts() {
        assert_eq!(BitSeq::new().transitions(), 0);
        assert_eq!(BitSeq::repeat(true, 10).transitions(), 0);
        assert_eq!(BitSeq::from_str_time("01").unwrap().transitions(), 1);
        assert_eq!(BitSeq::from_str_time("010101").unwrap().transitions(), 5);
        assert_eq!(BitSeq::from_str_time("001100").unwrap().transitions(), 2);
    }

    #[test]
    fn paper_example_word_010_has_two_transitions() {
        // Figure 2: block word 010 has T_x = 2.
        let word = BitSeq::from_str_paper("010").unwrap();
        assert_eq!(word.transitions(), 2);
    }

    #[test]
    fn from_lane_extracts_vertical_sequence() {
        // Figure 1a: the leftmost bit column of 1 1 … 0 / 0 0 … 1 / 1 0 … 1 / 0 0 … 0
        // is 1,0,1,0 over time.
        let words = [0b10u64, 0b00, 0b10, 0b00];
        let lane1 = BitSeq::from_lane(&words, 1);
        assert_eq!(lane1.to_time_string(), "1010");
        assert_eq!(lane1.transitions(), 3);
    }

    #[test]
    fn collect_and_extend() {
        let mut seq: BitSeq = [true, false].into_iter().collect();
        seq.extend([true]);
        assert_eq!(seq.to_time_string(), "101");
        let bits: Vec<bool> = seq.clone().into();
        assert_eq!(bits.len(), 3);
        assert!(seq[2]);
    }

    #[test]
    fn display_uses_time_order() {
        let seq = BitSeq::from_str_time("0011").unwrap();
        assert_eq!(format!("{seq}"), "0011");
    }
}
