//! Optimal encoding of a single block word (§5.1 of the paper).
//!
//! Given an original block of bits, the encoder searches for the stored
//! (code) word with the fewest transitions such that some allowed
//! transformation `τ` maps the code word back to the original under the
//! decode recurrence. Candidates are enumerated in order of increasing
//! transition count, so the first feasible candidate is optimal; the
//! identity transform guarantees a solution at least as good as the
//! original word (the paper's worst-case guarantee).
//!
//! Two block positions exist in a chained stream:
//!
//! * an **initial** block (start of a bit line, or start of a basic block in
//!   the full system): its first bit is the seed, stored unchanged
//!   (`x₁ = x̃₁`);
//! * a **chained** block that overlaps the previous block by one bit (§6):
//!   the overlap bit was already assigned a stored value by the previous
//!   block, and the first decode equation of the new block uses that bit as
//!   history — either its *stored* value (the paper's literal description:
//!   “`τ₂` uses `x̃ₙ` instead of `xₙ`”) or its *decoded* original value; both
//!   semantics are implemented, see [`OverlapHistory`].

use crate::bits::transitions;
use crate::transform::{PartialTransform, Transform, TransformSet};

/// Upper bound on the block size accepted by the exhaustive search.
///
/// The search enumerates up to `2^(k-1)` candidate code words, so sizes are
/// capped well below where that becomes expensive. The paper only evaluates
/// sizes 2–7; larger sizes are supported for sensitivity studies.
pub const MAX_BLOCK_SIZE: usize = 16;

/// Which value of the one-bit overlap a chained block uses as its initial
/// decode history (§6).
///
/// Within a block the history argument of `τ` is always the previous
/// **original** (restored) bit; the choice below only affects the first
/// equation of each non-initial block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum OverlapHistory {
    /// The first equation uses the overlap bit **as stored** on the bus
    /// (`x̃ₙ`). This follows the paper's wording in §6 and corresponds to
    /// hardware that re-seeds the history flip-flop from the raw bus line at
    /// a block switch.
    #[default]
    Stored,
    /// The first equation uses the overlap bit's restored original value
    /// (`xₙ`), i.e. the history flip-flop is never re-seeded.
    Decoded,
}

/// Where a block sits relative to its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockContext {
    /// First block of a line (or basic block): bit 0 is the seed and is
    /// stored unchanged.
    Initial,
    /// Continuation block overlapping the previous block by one bit.
    Chained {
        /// Stored value the previous block assigned to the overlap bit.
        prev_stored: bool,
        /// Original value of the overlap bit.
        prev_original: bool,
        /// Which of the two the first decode equation uses as history.
        history: OverlapHistory,
    },
}

/// Result of encoding one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEncoding {
    /// Stored bits for this block's positions (for an initial block this
    /// includes the seed; for a chained block only the new, non-overlap
    /// positions).
    pub code: Vec<bool>,
    /// The transform the decoder should apply — the preferred member of
    /// [`BlockEncoding::compatible`].
    pub transform: Transform,
    /// Every allowed transform consistent with this code word.
    pub compatible: TransformSet,
    /// Transitions charged to this block by the original bits (including
    /// the boundary transition from the previous block, if chained).
    pub original_transitions: u64,
    /// Transitions charged to this block by the code bits (same accounting).
    pub code_transitions: u64,
}

impl BlockEncoding {
    /// Transitions saved by this block (never negative: the identity
    /// transform bounds the code by the original).
    pub fn saved_transitions(&self) -> u64 {
        self.original_transitions - self.code_transitions
    }
}

/// Encodes one block optimally.
///
/// `original` holds the block's original bits in time order. For
/// [`BlockContext::Chained`] these are only the *new* bits — the overlap bit
/// itself belongs to the previous block and its original/stored values are
/// carried in the context.
///
/// The returned encoding minimises the number of transitions charged to the
/// block: internal transitions of the code bits, plus — when chained — the
/// boundary transition against the previous stored bit. Ties between equally
/// cheap code words are broken by candidate enumeration order (transition
/// positions in lexicographic order), and ties between compatible transforms
/// by the preference order of [`Transform::ALL`]; together these reproduce
/// the paper's Figures 2 and 4 exactly.
///
/// # Panics
///
/// Panics if `original` is empty or longer than [`MAX_BLOCK_SIZE`].
///
/// ```
/// use imt_bitcode::block::{encode_block, BlockContext};
/// use imt_bitcode::{Transform, TransformSet};
///
/// // Figure 2: block word 010 (paper order) = [0,1,0] in time order
/// // encodes to 000 with τ = ȳ, eliminating both transitions.
/// let enc = encode_block(&[false, true, false], BlockContext::Initial,
///                        TransformSet::CANONICAL_EIGHT);
/// assert_eq!(enc.code, vec![false, false, false]);
/// assert_eq!(enc.transform, Transform::NOT_Y);
/// assert_eq!(enc.original_transitions, 2);
/// assert_eq!(enc.code_transitions, 0);
/// ```
pub fn encode_block(
    original: &[bool],
    context: BlockContext,
    allowed: TransformSet,
) -> BlockEncoding {
    encode_block_constrained(original, context, allowed, None)
        .expect("unconstrained encoding always has the identity fallback")
}

/// [`encode_block`] without the codebook: always runs the exhaustive
/// candidate search. Reference oracle for the memoized path.
///
/// # Panics
///
/// As [`encode_block`].
pub fn encode_block_exhaustive(
    original: &[bool],
    context: BlockContext,
    allowed: TransformSet,
) -> BlockEncoding {
    encode_block_constrained_exhaustive(original, context, allowed, None)
        .expect("unconstrained encoding always has the identity fallback")
}

/// Like [`encode_block`], but optionally pins the **final stored bit** of
/// the code word to `final_bit`.
///
/// This is the primitive behind exact chain encoding
/// ([`crate::stream::ChainStrategy::Optimal`]): the only coupling between
/// consecutive overlapping blocks is the stored value of the shared bit,
/// so a dynamic program over that one-bit state needs the cheapest code
/// word *per final-bit value*.
///
/// Returns `None` when no allowed transformation can decode any code word
/// with the requested final bit (e.g. an initial block of one bit whose
/// seed differs from the requested value).
///
/// # Panics
///
/// As [`encode_block`].
pub fn encode_block_constrained(
    original: &[bool],
    context: BlockContext,
    allowed: TransformSet,
    final_bit: Option<bool>,
) -> Option<BlockEncoding> {
    let n = original.len();
    assert!(n >= 1, "cannot encode an empty block");
    assert!(!allowed.is_empty(), "allowed transform set is empty");
    if n <= crate::codebook::CODEBOOK_MAX_LEN {
        // O(1) table lookup; the table is built by the exhaustive solver
        // below, so the result is bit-identical to a fresh search.
        let book = crate::codebook::codebook_for(n, allowed);
        let word = crate::codebook::pack_word(original);
        return book
            .entry(word, context, final_bit)
            .map(|e| e.to_encoding(n));
    }
    encode_block_constrained_exhaustive(original, context, allowed, final_bit)
}

/// [`encode_block_constrained`] without the codebook: always runs the
/// exhaustive candidate search. This is both the reference oracle the
/// equivalence tests compare against and the builder the codebook tables
/// are populated from.
///
/// # Panics
///
/// As [`encode_block`].
pub fn encode_block_constrained_exhaustive(
    original: &[bool],
    context: BlockContext,
    allowed: TransformSet,
    final_bit: Option<bool>,
) -> Option<BlockEncoding> {
    let n = original.len();
    assert!(n >= 1, "cannot encode an empty block");
    assert!(
        n <= MAX_BLOCK_SIZE,
        "block of {n} bits exceeds MAX_BLOCK_SIZE"
    );
    assert!(!allowed.is_empty(), "allowed transform set is empty");

    // Transitions the original bits charge to this block.
    let original_transitions = match context {
        BlockContext::Initial => transitions(original),
        BlockContext::Chained { prev_original, .. } => {
            transitions(original) + (prev_original != original[0]) as u64
        }
    };

    // An initial block of one bit is pure seed: no equations constrain τ.
    if n == 1 {
        if let BlockContext::Initial = context {
            if final_bit.is_some_and(|bit| bit != original[0]) {
                return None;
            }
            return Some(BlockEncoding {
                code: vec![original[0]],
                transform: allowed.preferred()?,
                compatible: allowed,
                original_transitions,
                code_transitions: 0,
            });
        }
    }

    // Free code bits and the "anchor" the transition chain hangs from.
    // Initial: code[0] is pinned to original[0]; gaps are between code bits.
    // Chained: all code bits are free; the first gap is against prev_stored.
    let (free_bits, anchor) = match context {
        BlockContext::Initial => (n - 1, original[0]),
        BlockContext::Chained { prev_stored, .. } => (n, prev_stored),
    };

    let mut best: Option<BlockEncoding> = None;
    let mut gaps = Vec::with_capacity(free_bits);
    'by_cost: for cost in 0..=free_bits {
        let mut done = init_combination(&mut gaps, cost);
        while !done {
            if let Some(enc) = try_candidate(
                original,
                context,
                allowed,
                anchor,
                &gaps,
                original_transitions,
                cost as u64,
                final_bit,
            ) {
                best = Some(enc);
                break 'by_cost;
            }
            done = !next_combination(&mut gaps, free_bits);
        }
    }
    best
}

/// Builds the candidate for a given set of transition gap positions, and
/// checks τ-feasibility. Gap `g` means the stored chain flips between chain
/// position `g` and `g + 1`, where chain position 0 is the anchor.
#[allow(clippy::too_many_arguments)] // internal hot helper; a struct would obscure it
fn try_candidate(
    original: &[bool],
    context: BlockContext,
    allowed: TransformSet,
    anchor: bool,
    gaps: &[usize],
    original_transitions: u64,
    cost: u64,
    final_bit: Option<bool>,
) -> Option<BlockEncoding> {
    let n = original.len();
    let mut code = Vec::with_capacity(n);
    let mut current = anchor;
    let mut gap_iter = gaps.iter().peekable();

    // Materialise the chained code bits from the gap pattern.
    let free_start = match context {
        BlockContext::Initial => {
            code.push(anchor);
            1
        }
        BlockContext::Chained { .. } => 0,
    };
    for chain_pos in 0..(n - free_start) {
        if gap_iter.peek() == Some(&&chain_pos) {
            current = !current;
            gap_iter.next();
        }
        code.push(current);
    }
    debug_assert_eq!(code.len(), n);
    if final_bit.is_some_and(|bit| bit != code[n - 1]) {
        return None;
    }

    // Solve for τ.
    let mut partial = PartialTransform::new();
    let feasible = match context {
        BlockContext::Initial => {
            (1..n).all(|i| partial.constrain(code[i], original[i - 1], original[i]))
        }
        BlockContext::Chained {
            prev_stored,
            prev_original,
            history,
        } => {
            let first_history = match history {
                OverlapHistory::Stored => prev_stored,
                OverlapHistory::Decoded => prev_original,
            };
            partial.constrain(code[0], first_history, original[0])
                && (1..n).all(|i| partial.constrain(code[i], original[i - 1], original[i]))
        }
    };
    if !feasible {
        return None;
    }
    let compatible = partial.compatible().intersection(allowed);
    let transform = compatible.preferred()?;
    Some(BlockEncoding {
        code,
        transform,
        compatible,
        original_transitions,
        code_transitions: cost,
    })
}

/// Initialises `gaps` to the lexicographically first `t`-combination
/// `[0, 1, …, t-1]`. Returns `true` when there is no combination at all
/// (never happens for `t = 0`, which yields the empty combination).
fn init_combination(gaps: &mut Vec<usize>, t: usize) -> bool {
    gaps.clear();
    gaps.extend(0..t);
    false
}

/// Advances `gaps` to the next `t`-combination of `0..n` in lexicographic
/// order. Returns `false` when the last combination has been passed.
fn next_combination(gaps: &mut [usize], n: usize) -> bool {
    let t = gaps.len();
    if t == 0 {
        return false;
    }
    let mut i = t;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if gaps[i] < n - (t - i) {
            gaps[i] += 1;
            for j in i + 1..t {
                gaps[j] = gaps[j - 1] + 1;
            }
            return true;
        }
    }
}

/// Decodes one block: the inverse of [`encode_block`].
///
/// `prev_original` must be `None` for an initial block. For a chained block
/// it carries the restored original value of the overlap bit, and
/// `prev_stored` its stored value; `history` selects which one seeds the
/// first equation.
///
/// ```
/// use imt_bitcode::block::{decode_block, BlockContext, encode_block};
/// use imt_bitcode::TransformSet;
///
/// let original = [true, true, false, true, false];
/// let enc = encode_block(&original, BlockContext::Initial, TransformSet::CANONICAL_EIGHT);
/// let decoded = decode_block(&enc.code, enc.transform, BlockContext::Initial);
/// assert_eq!(decoded, original);
/// ```
pub fn decode_block(code: &[bool], transform: Transform, context: BlockContext) -> Vec<bool> {
    let mut out = Vec::with_capacity(code.len());
    match context {
        BlockContext::Initial => {
            if code.is_empty() {
                return out;
            }
            out.push(code[0]);
            for i in 1..code.len() {
                let prev = out[i - 1];
                out.push(transform.apply(code[i], prev));
            }
        }
        BlockContext::Chained {
            prev_stored,
            prev_original,
            history,
        } => {
            let mut prev = match history {
                OverlapHistory::Stored => prev_stored,
                OverlapHistory::Decoded => prev_original,
            };
            for &c in code {
                let bit = transform.apply(c, prev);
                out.push(bit);
                // After the first equation, history is always the restored
                // original bit.
                prev = bit;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitSeq;

    fn paper_word(s: &str) -> Vec<bool> {
        BitSeq::from_str_paper(s).unwrap().into()
    }

    fn encode_paper(s: &str) -> BlockEncoding {
        encode_block(
            &paper_word(s),
            BlockContext::Initial,
            TransformSet::CANONICAL_EIGHT,
        )
    }

    fn code_as_paper(enc: &BlockEncoding) -> String {
        BitSeq::from(enc.code.clone()).to_paper_string()
    }

    #[test]
    fn figure2_word_001() {
        let enc = encode_paper("001");
        assert_eq!(code_as_paper(&enc), "111");
        assert_eq!(enc.transform, Transform::NOT_X);
        assert_eq!(enc.original_transitions, 1);
        assert_eq!(enc.code_transitions, 0);
    }

    #[test]
    fn figure2_word_010() {
        let enc = encode_paper("010");
        assert_eq!(code_as_paper(&enc), "000");
        assert_eq!(enc.transform, Transform::NOT_Y);
        assert_eq!(enc.original_transitions, 2);
        assert_eq!(enc.code_transitions, 0);
    }

    #[test]
    fn figure2_word_011_keeps_identity() {
        let enc = encode_paper("011");
        assert_eq!(code_as_paper(&enc), "011");
        assert_eq!(enc.transform, Transform::IDENTITY);
        assert_eq!(enc.original_transitions, 1);
        assert_eq!(enc.code_transitions, 1);
    }

    #[test]
    fn figure2_word_101() {
        let enc = encode_paper("101");
        assert_eq!(code_as_paper(&enc), "111");
        assert_eq!(enc.transform, Transform::NOT_Y);
        assert_eq!(enc.original_transitions, 2);
        assert_eq!(enc.code_transitions, 0);
    }

    #[test]
    fn figure2_word_110() {
        let enc = encode_paper("110");
        assert_eq!(code_as_paper(&enc), "000");
        assert_eq!(enc.transform, Transform::NOT_X);
        assert_eq!(enc.original_transitions, 1);
        assert_eq!(enc.code_transitions, 0);
    }

    #[test]
    fn figure4_word_00101_uses_xor() {
        let enc = encode_paper("00101");
        assert_eq!(code_as_paper(&enc), "01111");
        assert_eq!(enc.transform, Transform::XOR);
        assert_eq!(enc.original_transitions, 3);
        assert_eq!(enc.code_transitions, 1);
    }

    #[test]
    fn figure4_word_01001_uses_nor() {
        let enc = encode_paper("01001");
        assert_eq!(code_as_paper(&enc), "00111");
        assert_eq!(enc.transform, Transform::NOR);
        assert_eq!(enc.original_transitions, 3);
        assert_eq!(enc.code_transitions, 1);
    }

    #[test]
    fn figure4_word_01011_uses_xnor() {
        let enc = encode_paper("01011");
        assert_eq!(code_as_paper(&enc), "00011");
        assert_eq!(enc.transform, Transform::XNOR);
        assert_eq!(enc.original_transitions, 3);
        assert_eq!(enc.code_transitions, 1);
    }

    #[test]
    fn figure4_word_01101_two_transition_code() {
        let enc = encode_paper("01101");
        assert_eq!(code_as_paper(&enc), "10011");
        assert_eq!(enc.transform, Transform::NOT_X);
        assert_eq!(enc.original_transitions, 3);
        assert_eq!(enc.code_transitions, 2);
    }

    #[test]
    fn identity_bounds_code_transitions() {
        // The code word can never be worse than the original (§5.1).
        for bits in 0u32..(1 << 7) {
            let original: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
            let enc = encode_block(
                &original,
                BlockContext::Initial,
                TransformSet::CANONICAL_EIGHT,
            );
            assert!(enc.code_transitions <= enc.original_transitions);
        }
    }

    #[test]
    fn roundtrip_all_words_up_to_six_bits() {
        for len in 1..=6usize {
            for bits in 0u32..(1 << len) {
                let original: Vec<bool> = (0..len).map(|i| bits >> i & 1 == 1).collect();
                for allowed in [TransformSet::ALL_SIXTEEN, TransformSet::CANONICAL_EIGHT] {
                    let enc = encode_block(&original, BlockContext::Initial, allowed);
                    let decoded = decode_block(&enc.code, enc.transform, BlockContext::Initial);
                    assert_eq!(decoded, original, "word {bits:0len$b} with {allowed}");
                }
            }
        }
    }

    #[test]
    fn chained_roundtrip_both_histories() {
        for history in [OverlapHistory::Stored, OverlapHistory::Decoded] {
            for prev_stored in [false, true] {
                for prev_original in [false, true] {
                    for bits in 0u32..(1 << 4) {
                        let original: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                        let ctx = BlockContext::Chained {
                            prev_stored,
                            prev_original,
                            history,
                        };
                        let enc = encode_block(&original, ctx, TransformSet::CANONICAL_EIGHT);
                        let decoded = decode_block(&enc.code, enc.transform, ctx);
                        assert_eq!(decoded, original);
                        // Boundary accounting: the cost includes the flip
                        // against prev_stored.
                        let mut chain = vec![prev_stored];
                        chain.extend(&enc.code);
                        assert_eq!(crate::bits::transitions(&chain), enc.code_transitions);
                    }
                }
            }
        }
    }

    #[test]
    fn chained_encoding_never_worse_than_identity() {
        for bits in 0u32..(1 << 5) {
            let original: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            for prev in [false, true] {
                let ctx = BlockContext::Chained {
                    prev_stored: prev,
                    prev_original: prev,
                    history: OverlapHistory::Stored,
                };
                let enc = encode_block(&original, ctx, TransformSet::CANONICAL_EIGHT);
                let mut identity_chain = vec![prev];
                identity_chain.extend(&original);
                assert!(enc.code_transitions <= crate::bits::transitions(&identity_chain));
            }
        }
    }

    #[test]
    fn restricting_to_identity_only_passes_through() {
        let original = paper_word("0101");
        let enc = encode_block(
            &original,
            BlockContext::Initial,
            TransformSet::IDENTITY_ONLY,
        );
        assert_eq!(enc.code, original);
        assert_eq!(enc.transform, Transform::IDENTITY);
        assert_eq!(enc.code_transitions, enc.original_transitions);
    }

    #[test]
    fn combination_iterator_is_lexicographic() {
        let mut gaps = Vec::new();
        init_combination(&mut gaps, 2);
        let mut seen = vec![gaps.clone()];
        while next_combination(&mut gaps, 4) {
            seen.push(gaps.clone());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    #[should_panic(expected = "empty block")]
    fn empty_block_panics() {
        encode_block(&[], BlockContext::Initial, TransformSet::ALL_SIXTEEN);
    }

    #[test]
    fn constrained_final_bit_is_honoured() {
        for bits in 0u32..(1 << 5) {
            let original: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            for final_bit in [false, true] {
                let enc = encode_block_constrained(
                    &original,
                    BlockContext::Initial,
                    TransformSet::CANONICAL_EIGHT,
                    Some(final_bit),
                );
                // Identity decodes any word, so a code word ending either
                // way always exists for 2+-bit blocks... unless the only
                // identity-cost candidate ends the other way; feasibility
                // is word-dependent, so just check honesty when it exists.
                if let Some(enc) = enc {
                    assert_eq!(*enc.code.last().unwrap(), final_bit);
                    assert_eq!(
                        decode_block(&enc.code, enc.transform, BlockContext::Initial),
                        original
                    );
                }
            }
            // The unconstrained optimum equals the better of the two
            // constrained optima.
            let free = encode_block(
                &original,
                BlockContext::Initial,
                TransformSet::CANONICAL_EIGHT,
            );
            let best_constrained = [false, true]
                .into_iter()
                .filter_map(|b| {
                    encode_block_constrained(
                        &original,
                        BlockContext::Initial,
                        TransformSet::CANONICAL_EIGHT,
                        Some(b),
                    )
                })
                .map(|e| e.code_transitions)
                .min()
                .expect("at least one final bit is feasible");
            assert_eq!(free.code_transitions, best_constrained);
        }
    }

    #[test]
    fn constrained_single_bit_initial_block() {
        let enc = encode_block_constrained(
            &[true],
            BlockContext::Initial,
            TransformSet::CANONICAL_EIGHT,
            Some(false),
        );
        assert!(enc.is_none(), "a seed bit cannot be stored inverted");
        let enc = encode_block_constrained(
            &[true],
            BlockContext::Initial,
            TransformSet::CANONICAL_EIGHT,
            Some(true),
        );
        assert!(enc.is_some());
    }
}
