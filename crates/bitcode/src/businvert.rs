//! Bus-invert drive logic (Stan & Burleson, 1995) as a pure step
//! function over 32 data lanes plus one invert line.
//!
//! Unlike every other scheme in the encoder arena, bus-invert leaves
//! instruction memory untouched: the transformation happens at drive
//! time, and the decision for each word depends on the **current
//! physical bus state** — i.e. on the entire fetch history. That makes
//! it the arena's canonical per-cycle-state scheme: it can never be
//! scored from a stateless edge profile, only by full simulation.
//!
//! The fast step uses XOR+popcount over whole words; the naive oracle
//! re-derives the same decision bit by bit, counting majority votes the
//! way the comparator hardware would.

/// One drive decision: what ends up on the wires and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveStep {
    /// Physical data-line state after the drive (possibly complemented).
    pub bus: u32,
    /// Invert line state after the drive.
    pub invert: bool,
    /// Transitions on the data lines this cycle.
    pub data_transitions: u64,
    /// Transition on the invert line this cycle (0 or 1).
    pub invert_transitions: u64,
}

/// Stateful bus-invert driver over a 32-line data bus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusInvertState {
    bus: Option<u32>,
    invert: bool,
}

impl BusInvertState {
    /// Power-on state: lines undriven, invert line low.
    pub fn new() -> BusInvertState {
        BusInvertState::default()
    }

    /// Drives `word`, complemented iff that strictly lowers the Hamming
    /// distance to the current bus state (tie-break toward not
    /// inverting, as in the original paper).
    pub fn drive(&mut self, word: u32) -> DriveStep {
        let step = match self.bus {
            None => DriveStep {
                bus: word,
                invert: false,
                data_transitions: 0,
                invert_transitions: 0,
            },
            Some(bus) => {
                let plain = u64::from((bus ^ word).count_ones());
                let inverted = u64::from((bus ^ !word).count_ones());
                let (next_bus, next_invert, data) = if inverted < plain {
                    (!word, true, inverted)
                } else {
                    (word, false, plain)
                };
                DriveStep {
                    bus: next_bus,
                    invert: next_invert,
                    data_transitions: data,
                    invert_transitions: u64::from(next_invert != self.invert),
                }
            }
        };
        self.bus = Some(step.bus);
        self.invert = step.invert;
        step
    }

    /// What the receiver restores: the driven word, complemented back
    /// when the invert line is high. Exact by construction.
    pub fn restore(step: &DriveStep) -> u32 {
        if step.invert {
            !step.bus
        } else {
            step.bus
        }
    }
}

/// Naive per-bit oracle for [`BusInvertState`]: the same decision made
/// by counting differing lanes one at a time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusInvertNaive {
    bus: Option<u32>,
    invert: bool,
}

impl BusInvertNaive {
    /// Power-on state.
    pub fn new() -> BusInvertNaive {
        BusInvertNaive::default()
    }

    /// Per-bit re-derivation of [`BusInvertState::drive`].
    pub fn drive(&mut self, word: u32) -> DriveStep {
        let step = match self.bus {
            None => DriveStep {
                bus: word,
                invert: false,
                data_transitions: 0,
                invert_transitions: 0,
            },
            Some(bus) => {
                let mut plain = 0u64;
                let mut inverted = 0u64;
                for lane in 0..32u32 {
                    let b = (bus >> lane) & 1;
                    let w = (word >> lane) & 1;
                    if b != w {
                        plain += 1;
                    }
                    if b == w {
                        inverted += 1;
                    }
                }
                let (next_bus, next_invert, data) = if inverted < plain {
                    (!word, true, inverted)
                } else {
                    (word, false, plain)
                };
                DriveStep {
                    bus: next_bus,
                    invert: next_invert,
                    data_transitions: data,
                    invert_transitions: u64::from(next_invert != self.invert),
                }
            }
        };
        self.bus = Some(step.bus);
        self.invert = step.invert;
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_beats_wide_flips() {
        let mut s = BusInvertState::new();
        s.drive(0x0000_0000);
        let step = s.drive(0xFFFF_FFFF);
        assert!(step.invert);
        assert_eq!(step.data_transitions, 0);
        assert_eq!(step.invert_transitions, 1);
        assert_eq!(BusInvertState::restore(&step), 0xFFFF_FFFF);
    }

    #[test]
    fn tie_breaks_toward_not_inverting() {
        let mut s = BusInvertState::new();
        s.drive(0x0000_0000);
        let step = s.drive(0x0000_FFFF); // exactly half the lanes flip
        assert!(!step.invert);
        assert_eq!(step.data_transitions, 16);
    }

    #[test]
    fn fast_matches_naive_on_a_sweep() {
        let mut fast = BusInvertState::new();
        let mut naive = BusInvertNaive::new();
        let mut w = 0x9E37_79B9u32;
        for _ in 0..10_000 {
            let a = fast.drive(w);
            let b = naive.drive(w);
            assert_eq!(a, b, "word {w:#010x}");
            assert_eq!(BusInvertState::restore(&a), w);
            w = w.wrapping_mul(0x85EB_CA6B).rotate_left(13) ^ 0x27D4_EB2F;
        }
    }
}
