//! Memoized block codebooks: precomputed optimal encodings for every block
//! word.
//!
//! The paper's premise (§5, Figures 2–4) is that per-block optimal codes
//! for small `k` form a tiny enumerable table, and the deployment
//! literature (Valentini & Chiani) implements the codec as lookup
//! hardware. This module is the software analogue: for a given block
//! length, transformation universe, context shape and optional pinned
//! final bit, the optimal [`BlockEncoding`] of **every** `2^len` block
//! word is computed once by the exhaustive solver
//! ([`crate::block::encode_block_constrained_exhaustive`]) and then served
//! as an O(1) table lookup.
//!
//! Because the tables are *built by* the exhaustive solver — whose
//! candidate enumeration order and transform preference order are
//! deterministic — a codebook lookup is bit-identical to a fresh
//! exhaustive solve; the exhaustive path stays available as the reference
//! oracle and as the fallback for block lengths above
//! [`CODEBOOK_MAX_LEN`].
//!
//! Layout: one leaked [`Codebook`] per `(len, TransformSet)` pair, found
//! through a global map; inside a codebook, one lazily-built dense slot
//! per `(context variant, final-bit constraint)` pair. There are nine
//! context variants (one [`BlockContext::Initial`] plus the eight
//! `Chained` combinations of `prev_stored` × `prev_original` × `history`)
//! and three final-bit constraints (`None`, `Some(false)`, `Some(true)`),
//! so a fully-populated codebook holds `27 · 2^len` entries — at the
//! default `k = 5` that is 864 entries, and the greedy encoder only ever
//! touches 5 of the 27 slots.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use crate::block::{
    encode_block_constrained_exhaustive, BlockContext, BlockEncoding, OverlapHistory,
};
use crate::transform::{Transform, TransformSet};

/// Largest block length served from codebooks.
///
/// Above this, [`crate::block::encode_block`] falls back to the exhaustive
/// search: a length-`L` slot holds `2^L` entries, so the table size (and
/// one-time build cost) doubles per extra bit while the paper's sweet spot
/// is `k = 5..7`.
pub const CODEBOOK_MAX_LEN: usize = 9;

const CONTEXT_VARIANTS: usize = 9;
const FINAL_VARIANTS: usize = 3;

/// One precomputed optimal block encoding, in packed form.
///
/// `code_bits` holds the stored bits with bit `i` = code bit `i` (time
/// order), which doubles as the natural input to a packed bit-lane writer.
/// Use [`CodebookEntry::to_encoding`] to materialise a [`BlockEncoding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodebookEntry {
    /// Stored code bits; bit `i` is the block's `i`-th stored bit.
    pub code_bits: u16,
    /// The transform the decoder should apply.
    pub transform: Transform,
    /// Every allowed transform consistent with the code word.
    pub compatible: TransformSet,
    /// Transitions charged to the block by the original bits.
    pub original_transitions: u8,
    /// Transitions charged to the block by the code bits.
    pub code_transitions: u8,
}

impl CodebookEntry {
    /// Expands the packed entry into the [`BlockEncoding`] the exhaustive
    /// solver would have returned for the same query.
    pub fn to_encoding(self, len: usize) -> BlockEncoding {
        BlockEncoding {
            code: (0..len).map(|i| self.code_bits >> i & 1 == 1).collect(),
            transform: self.transform,
            compatible: self.compatible,
            original_transitions: u64::from(self.original_transitions),
            code_transitions: u64::from(self.code_transitions),
        }
    }
}

/// Packs a block word (time order) into the codebook's integer index.
///
/// Inverse of the bit expansion in [`CodebookEntry::to_encoding`]: bit `i`
/// of the result is `bits[i]`.
pub fn pack_word(bits: &[bool]) -> u16 {
    debug_assert!(bits.len() <= 16);
    bits.iter()
        .enumerate()
        .fold(0u16, |acc, (i, &b)| acc | (u16::from(b) << i))
}

fn context_index(context: BlockContext) -> usize {
    match context {
        BlockContext::Initial => 0,
        BlockContext::Chained {
            prev_stored,
            prev_original,
            history,
        } => {
            let h = match history {
                OverlapHistory::Stored => 0,
                OverlapHistory::Decoded => 1,
            };
            1 + h * 4 + usize::from(prev_stored) * 2 + usize::from(prev_original)
        }
    }
}

#[cfg(test)]
fn context_from_index(index: usize) -> BlockContext {
    if index == 0 {
        return BlockContext::Initial;
    }
    let index = index - 1;
    BlockContext::Chained {
        prev_stored: index & 2 != 0,
        prev_original: index & 1 != 0,
        history: if index & 4 != 0 {
            OverlapHistory::Decoded
        } else {
            OverlapHistory::Stored
        },
    }
}

fn final_index(final_bit: Option<bool>) -> usize {
    match final_bit {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

/// One lazily-built table: the optimal encoding of every block word for a
/// fixed `(context variant, final-bit constraint)` slot.
type Slot = OnceLock<Box<[Option<CodebookEntry>]>>;

/// All optimal encodings for one block length under one transformation
/// universe. Obtained from [`codebook_for`]; slots fill lazily on first
/// use and are shared process-wide.
pub struct Codebook {
    len: usize,
    allowed: TransformSet,
    slots: [[Slot; FINAL_VARIANTS]; CONTEXT_VARIANTS],
}

impl Codebook {
    fn new(len: usize, allowed: TransformSet) -> Self {
        Codebook {
            len,
            allowed,
            slots: std::array::from_fn(|_| std::array::from_fn(|_| OnceLock::new())),
        }
    }

    /// The block length this codebook serves (always ≥ 1; a codebook is
    /// never empty, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The transformation universe this codebook was built for.
    pub fn allowed(&self) -> TransformSet {
        self.allowed
    }

    fn slot(&self, context: BlockContext, final_bit: Option<bool>) -> &[Option<CodebookEntry>] {
        self.slots[context_index(context)][final_index(final_bit)].get_or_init(|| {
            // Slot builds are the codebook's miss events: lookups that hit a
            // built slot are free, so hits ≈ blocks encoded − slot builds.
            if imt_obs::enabled() {
                imt_obs::counter!("bitcode.codebook.slot_builds").inc();
                imt_obs::counter!("bitcode.codebook.entries_built").add(1u64 << self.len);
            }
            let mut entries = Vec::with_capacity(1usize << self.len);
            let mut bits = vec![false; self.len];
            for word in 0..(1u32 << self.len) {
                for (i, bit) in bits.iter_mut().enumerate() {
                    *bit = word >> i & 1 == 1;
                }
                let entry =
                    encode_block_constrained_exhaustive(&bits, context, self.allowed, final_bit)
                        .map(|enc| CodebookEntry {
                            code_bits: pack_word(&enc.code),
                            transform: enc.transform,
                            compatible: enc.compatible,
                            original_transitions: enc.original_transitions as u8,
                            code_transitions: enc.code_transitions as u8,
                        });
                entries.push(entry);
            }
            entries.into_boxed_slice()
        })
    }

    /// O(1) lookup of the optimal encoding for `word` (packed time-order
    /// bits) in `context`, optionally with the final stored bit pinned.
    ///
    /// Returns `None` exactly when the exhaustive
    /// [`crate::block::encode_block_constrained`] would: the constraint is
    /// infeasible under the allowed transforms.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 2^len`.
    pub fn entry(
        &self,
        word: u16,
        context: BlockContext,
        final_bit: Option<bool>,
    ) -> Option<CodebookEntry> {
        self.slot(context, final_bit)[word as usize]
    }
}

/// Returns the process-wide codebook for `(len, allowed)`, building the
/// (empty) codebook on first request.
///
/// # Panics
///
/// Panics if `len` is 0 or exceeds [`CODEBOOK_MAX_LEN`], or if `allowed`
/// is empty.
pub fn codebook_for(len: usize, allowed: TransformSet) -> &'static Codebook {
    assert!(
        (1..=CODEBOOK_MAX_LEN).contains(&len),
        "codebook length {len} outside 1..={CODEBOOK_MAX_LEN}"
    );
    assert!(!allowed.is_empty(), "allowed transform set is empty");

    // Lock-free fast path for the three named universes, which cover every
    // hot caller: the per-block lookup must not pay a hash + RwLock read.
    let named = [
        TransformSet::CANONICAL_EIGHT,
        TransformSet::ALL_SIXTEEN,
        TransformSet::IDENTITY_ONLY,
    ];
    if let Some(slot) = named.iter().position(|&set| set == allowed) {
        static COMMON: [[OnceLock<Codebook>; 3]; CODEBOOK_MAX_LEN] =
            [const { [const { OnceLock::new() }; 3] }; CODEBOOK_MAX_LEN];
        return COMMON[len - 1][slot].get_or_init(|| Codebook::new(len, allowed));
    }

    static CACHE: OnceLock<RwLock<HashMap<(usize, u16), &'static Codebook>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    let key = (len, allowed.mask());
    if let Some(book) = cache.read().expect("codebook cache poisoned").get(&key) {
        return book;
    }
    let mut map = cache.write().expect("codebook cache poisoned");
    // Double-checked: another thread may have inserted while we waited.
    map.entry(key)
        .or_insert_with(|| Box::leak(Box::new(Codebook::new(len, allowed))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{decode_block, encode_block_constrained_exhaustive};

    fn unpack(word: u16, len: usize) -> Vec<bool> {
        (0..len).map(|i| word >> i & 1 == 1).collect()
    }

    #[test]
    fn context_index_roundtrips() {
        for index in 0..CONTEXT_VARIANTS {
            assert_eq!(context_index(context_from_index(index)), index);
        }
    }

    #[test]
    fn entries_match_the_exhaustive_solver_exactly() {
        for len in 1..=6usize {
            for allowed in [
                TransformSet::CANONICAL_EIGHT,
                TransformSet::ALL_SIXTEEN,
                TransformSet::IDENTITY_ONLY,
            ] {
                let book = codebook_for(len, allowed);
                for ctx_index in 0..CONTEXT_VARIANTS {
                    let context = context_from_index(ctx_index);
                    for final_bit in [None, Some(false), Some(true)] {
                        for word in 0..(1u16 << len) {
                            let bits = unpack(word, len);
                            let oracle = encode_block_constrained_exhaustive(
                                &bits, context, allowed, final_bit,
                            );
                            let entry = book.entry(word, context, final_bit);
                            assert_eq!(
                                entry.map(|e| e.to_encoding(len)),
                                oracle,
                                "len={len} {allowed} ctx={context:?} final={final_bit:?} \
                                 word={word:b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn looked_up_codes_decode() {
        let book = codebook_for(5, TransformSet::CANONICAL_EIGHT);
        for word in 0..(1u16 << 5) {
            let entry = book
                .entry(word, BlockContext::Initial, None)
                .expect("unconstrained");
            let code = unpack(entry.code_bits, 5);
            assert_eq!(
                decode_block(&code, entry.transform, BlockContext::Initial),
                unpack(word, 5)
            );
        }
    }

    #[test]
    fn same_codebook_instance_is_shared() {
        let a = codebook_for(4, TransformSet::CANONICAL_EIGHT);
        let b = codebook_for(4, TransformSet::CANONICAL_EIGHT);
        assert!(std::ptr::eq(a, b));
        let c = codebook_for(4, TransformSet::ALL_SIXTEEN);
        assert!(!std::ptr::eq(a, c));
    }

    #[test]
    fn pack_word_matches_expansion() {
        let bits = [true, false, true, true];
        let word = pack_word(&bits);
        assert_eq!(word, 0b1101);
        assert_eq!(unpack(word, 4), bits);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_oversized_lengths() {
        codebook_for(CODEBOOK_MAX_LEN + 1, TransformSet::CANONICAL_EIGHT);
    }
}
