use std::error::Error;
use std::fmt;

/// Errors produced by the bit-line codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// A bit string contained a character other than `0` or `1`.
    ParseBit {
        /// Byte offset of the offending character.
        position: usize,
        /// The offending character.
        found: char,
    },
    /// A block size outside the supported range was requested.
    ///
    /// Block sizes must be at least 2 (a single bit cannot carry a
    /// transition) and at most [`MAX_BLOCK_SIZE`](crate::block::MAX_BLOCK_SIZE)
    /// (the exhaustive code-word search is exponential in the block size).
    BlockSize {
        /// The rejected block size.
        requested: usize,
    },
    /// An encoded stream's block descriptors do not tile its stored bits.
    ///
    /// Returned by decoding when block extents overlap by more or less than
    /// one bit, or do not cover the stored sequence exactly.
    MalformedBlocks {
        /// Index of the first block descriptor that is inconsistent.
        block_index: usize,
    },
    /// Word width outside `1..=64` was requested for lane encoding.
    LaneWidth {
        /// The rejected width.
        requested: usize,
    },
    /// A transformation set without the identity function was configured.
    ///
    /// The stream encoder's feasibility guarantee — any block can always
    /// be stored verbatim — hangs on the identity transform; a set
    /// without it can leave a block with no valid code word.
    TransformSet {
        /// The rejected set's 16-bit membership mask.
        mask: u16,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::ParseBit { position, found } => {
                write!(f, "invalid bit character {found:?} at position {position}")
            }
            CodecError::BlockSize { requested } => {
                write!(
                    f,
                    "block size {requested} outside supported range 2..={}",
                    crate::block::MAX_BLOCK_SIZE
                )
            }
            CodecError::MalformedBlocks { block_index } => {
                write!(
                    f,
                    "block descriptor {block_index} does not tile the stored bits"
                )
            }
            CodecError::LaneWidth { requested } => {
                write!(f, "lane width {requested} outside supported range 1..=64")
            }
            CodecError::TransformSet { mask } => {
                write!(
                    f,
                    "transformation set {mask:#06x} lacks the identity transform \
                     required as the encode fallback"
                )
            }
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = CodecError::ParseBit {
            position: 3,
            found: 'z',
        };
        let text = err.to_string();
        assert!(text.starts_with("invalid bit"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodecError>();
    }
}
