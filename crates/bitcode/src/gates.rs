//! Gate-level cost of the restore logic (exact NAND2 synthesis).
//!
//! The paper's hardware pitch is that each bus line needs only "a single
//! two-input logic gate" selected by 3 control bits. This module puts an
//! exact number on that: every transformation is synthesised into a
//! provably **minimal NAND2 network** (breadth-first search over derivable
//! function sets — exact, not heuristic, feasible because the function
//! space of two inputs has only 16 members), and the full per-lane restore
//! cell (the eight networks plus an 8:1 selection mux) is costed and
//! exhaustively verified against [`Transform::apply`].

use crate::transform::{Transform, TransformSet};

/// A signal inside a NAND network over inputs `x` and `y`.
///
/// Signals are identified by their 4-bit truth table over `(x, y)` — for a
/// two-input universe this is canonical and collision-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal(pub u8);

/// The input `x` (truth table 1100).
pub const X: Signal = Signal(0b1100);
/// The input `y` (truth table 1010).
pub const Y: Signal = Signal(0b1010);

fn nand(a: Signal, b: Signal) -> Signal {
    Signal(!(a.0 & b.0) & 0b1111)
}

/// One NAND2 gate: its two operand signals and the signal it produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NandGate {
    /// First operand.
    pub a: Signal,
    /// Second operand.
    pub b: Signal,
    /// Output (`!(a & b)`).
    pub out: Signal,
}

/// A minimal NAND2 network computing one two-input function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NandNetwork {
    /// The function computed.
    pub target: Transform,
    /// Gates in a valid topological order (operands are inputs or earlier
    /// gate outputs).
    pub gates: Vec<NandGate>,
    /// The output signal (an input passthrough for 0-gate networks).
    pub output: Signal,
}

impl NandNetwork {
    /// Number of NAND2 gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Longest input→output path in gates.
    pub fn depth(&self) -> usize {
        let mut depth_of = std::collections::HashMap::new();
        depth_of.insert(X, 0usize);
        depth_of.insert(Y, 0usize);
        for gate in &self.gates {
            let da = depth_of.get(&gate.a).copied().unwrap_or(0);
            let db = depth_of.get(&gate.b).copied().unwrap_or(0);
            let entry = depth_of.entry(gate.out).or_insert(0);
            *entry = (*entry).max(da.max(db) + 1);
        }
        depth_of.get(&self.output).copied().unwrap_or(0)
    }

    /// Evaluates the network.
    pub fn eval(&self, x: bool, y: bool) -> bool {
        let idx = ((x as u8) << 1) | y as u8;
        self.output.0 >> idx & 1 == 1
    }
}

/// Exact minimal-NAND2 synthesis of a transformation.
///
/// Breadth-first search over the set of derivable signals: level `g`
/// contains every function computable with `g` NAND2 gates from `{x, y}`
/// with full sharing. The first level containing the target gives the
/// minimal gate count; parent pointers reconstruct one witness network.
///
/// Constant functions (`0`, `1`) are synthesisable too (`1 = NAND(x, x̄)`),
/// so all 16 transforms succeed.
///
/// ```
/// use imt_bitcode::gates::synthesize_nand;
/// use imt_bitcode::Transform;
///
/// assert_eq!(synthesize_nand(Transform::IDENTITY).gate_count(), 0);
/// assert_eq!(synthesize_nand(Transform::NAND).gate_count(), 1);
/// assert_eq!(synthesize_nand(Transform::NOT_X).gate_count(), 1);
/// assert_eq!(synthesize_nand(Transform::XOR).gate_count(), 4);
/// ```
pub fn synthesize_nand(target: Transform) -> NandNetwork {
    let goal = Signal(target.table());
    let start: u16 = (1 << X.0) | (1 << Y.0);
    if start & (1 << goal.0) != 0 {
        return NandNetwork {
            target,
            gates: Vec::new(),
            output: goal,
        };
    }

    // BFS over states = sets of derived functions (bitmask over the 16
    // truth tables); each edge spends exactly one NAND2 gate. The first
    // state containing the goal is reached with the minimal gate count.
    use std::collections::{HashMap, VecDeque};
    let mut parent: HashMap<u16, (u16, NandGate)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(start);
    parent.insert(start, (start, NandGate { a: X, b: X, out: X })); // sentinel
    let mut goal_state = None;
    'bfs: while let Some(state) = queue.pop_front() {
        let available: Vec<Signal> = (0..16u8)
            .filter(|&t| state & (1 << t) != 0)
            .map(Signal)
            .collect();
        for i in 0..available.len() {
            for j in i..available.len() {
                let out = nand(available[i], available[j]);
                let next = state | 1 << out.0;
                if next == state || parent.contains_key(&next) {
                    continue;
                }
                let gate = NandGate {
                    a: available[i],
                    b: available[j],
                    out,
                };
                parent.insert(next, (state, gate));
                if next & (1 << goal.0) != 0 {
                    goal_state = Some(next);
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
    }

    // Walk the parent chain back to the start; the gates come out newest
    // first, so reverse for topological order.
    let mut gates = Vec::new();
    let mut state = goal_state.expect("NAND is universal; every function is reachable");
    while state != start {
        let (prev, gate) = parent[&state];
        gates.push(gate);
        state = prev;
    }
    gates.reverse();
    NandNetwork {
        target,
        gates,
        output: goal,
    }
}

/// Cost summary of the complete per-lane restore cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreCellCost {
    /// Per-transform minimal NAND2 counts, in the set's preference order.
    pub per_transform: Vec<(Transform, usize, usize)>,
    /// NAND2 gates if every network is instantiated separately.
    pub function_gates_naive: usize,
    /// NAND2 gates with full sharing across the networks (union of the
    /// distinct gates in all witness cones).
    pub function_gates_shared: usize,
    /// NAND2-equivalents for the selection mux (an `n:1` mux from 2:1
    /// NAND muxes: `n-1` muxes × 4 gates).
    pub mux_gates: usize,
    /// Worst-case function depth plus mux depth.
    pub depth: usize,
}

impl RestoreCellCost {
    /// Total NAND2-equivalents with sharing.
    pub fn total_gates(&self) -> usize {
        self.function_gates_shared + self.mux_gates
    }
}

/// Synthesises and costs the restore cell for a transformation set, and
/// exhaustively verifies every synthesised network against
/// [`Transform::apply`].
///
/// # Panics
///
/// Panics if a synthesised network misbehaves (cannot happen — the
/// verification is the point).
pub fn restore_cell_cost(set: TransformSet) -> RestoreCellCost {
    let members: Vec<Transform> = set.iter().collect();
    let mut per_transform = Vec::with_capacity(members.len());
    let mut shared: std::collections::HashSet<(Signal, Signal)> = std::collections::HashSet::new();
    let mut naive = 0usize;
    let mut max_depth = 0usize;
    for &t in &members {
        let network = synthesize_nand(t);
        for x in [false, true] {
            for y in [false, true] {
                assert_eq!(
                    network.eval(x, y),
                    t.apply(x, y),
                    "synthesised network for {t} is wrong at ({x}, {y})"
                );
            }
        }
        naive += network.gate_count();
        max_depth = max_depth.max(network.depth());
        for gate in &network.gates {
            shared.insert((gate.a, gate.b));
        }
        per_transform.push((t, network.gate_count(), network.depth()));
    }
    let n = members.len().max(1);
    let mux_gates = (n - 1) * 4;
    // A balanced n:1 mux of 2:1 stages has ⌈log2 n⌉ levels × 2 gate depths.
    let mux_depth = 2 * (usize::BITS - (n - 1).leading_zeros().max(1)) as usize;
    RestoreCellCost {
        per_transform,
        function_gates_naive: naive,
        function_gates_shared: shared.len(),
        mux_gates,
        depth: max_depth + mux_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_counts_match_the_classics() {
        // Known minimal NAND2 realisations of two-input functions.
        let expect = [
            (Transform::IDENTITY, 0),
            (Transform::Y, 0),
            (Transform::NAND, 1),
            (Transform::NOT_X, 1),
            (Transform::NOT_Y, 1),
            (Transform::AND, 2),
            (Transform::OR, 3),
            (Transform::NOR, 4),
            (Transform::XOR, 4),
            (Transform::XNOR, 5),
        ];
        for (t, gates) in expect {
            let network = synthesize_nand(t);
            assert_eq!(network.gate_count(), gates, "{t}");
        }
    }

    #[test]
    fn every_function_synthesises_and_verifies() {
        for t in Transform::ALL {
            let network = synthesize_nand(t);
            for x in [false, true] {
                for y in [false, true] {
                    assert_eq!(network.eval(x, y), t.apply(x, y), "{t} at ({x},{y})");
                }
            }
            // Gates are topologically ordered: operands precede outputs.
            let mut seen = vec![X, Y];
            for gate in &network.gates {
                assert!(seen.contains(&gate.a), "{t}: operand out of order");
                assert!(seen.contains(&gate.b), "{t}: operand out of order");
                seen.push(gate.out);
            }
        }
    }

    #[test]
    fn depth_is_bounded_by_gate_count() {
        for t in Transform::ALL {
            let n = synthesize_nand(t);
            assert!(n.depth() <= n.gate_count().max(1));
        }
    }

    #[test]
    fn canonical_cell_is_frugal() {
        let cost = restore_cell_cost(TransformSet::CANONICAL_EIGHT);
        assert_eq!(cost.per_transform.len(), 8);
        // Sharing strictly helps (x̄ and ȳ feed several functions).
        assert!(cost.function_gates_shared < cost.function_gates_naive);
        // The whole per-lane cell is a few dozen gate-equivalents.
        assert!(cost.total_gates() < 60, "cell costs {}", cost.total_gates());
        assert!(cost.depth <= 12);
    }

    #[test]
    fn identity_only_cell_is_free() {
        let cost = restore_cell_cost(TransformSet::IDENTITY_ONLY);
        assert_eq!(cost.function_gates_shared, 0);
        assert_eq!(cost.mux_gates, 0);
    }
}
