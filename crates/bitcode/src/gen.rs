//! Deterministic random bit-stream generators.
//!
//! Used by the §6 experiment (uniform 1000-bit streams), by sensitivity
//! ablations (biased and bursty streams), and by property tests. All
//! generators take an explicit RNG so experiments are reproducible from a
//! seed.

use rand::Rng;

use crate::bits::BitSeq;

/// A stream of independent fair coin flips — the paper's §6 workload.
///
/// ```
/// use imt_bitcode::gen::uniform;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let stream = uniform(&mut rng, 1000);
/// assert_eq!(stream.len(), 1000);
/// ```
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, len: usize) -> BitSeq {
    (0..len).map(|_| rng.gen_bool(0.5)).collect()
}

/// A stream of independent biased coin flips with `P(1) = p_one`.
///
/// Instruction bit lines are rarely uniform: opcode lines are heavily
/// biased. Biased streams probe how the codec behaves off the uniform
/// assumption underpinning Figure 3's expectations.
///
/// # Panics
///
/// Panics if `p_one` is not within `0.0..=1.0`.
pub fn biased<R: Rng + ?Sized>(rng: &mut R, len: usize, p_one: f64) -> BitSeq {
    assert!((0.0..=1.0).contains(&p_one), "p_one {p_one} outside [0, 1]");
    (0..len).map(|_| rng.gen_bool(p_one)).collect()
}

/// A first-order Markov stream: after a bit `b`, the next bit differs from
/// `b` with probability `p_flip`.
///
/// `p_flip = 0.5` degenerates to [`uniform`]; small `p_flip` produces the
/// long runs typical of high instruction bits; large `p_flip` produces the
/// near-alternating patterns where the codec shines.
///
/// # Panics
///
/// Panics if `p_flip` is not within `0.0..=1.0`.
pub fn markov<R: Rng + ?Sized>(rng: &mut R, len: usize, p_flip: f64) -> BitSeq {
    assert!(
        (0.0..=1.0).contains(&p_flip),
        "p_flip {p_flip} outside [0, 1]"
    );
    let mut out = BitSeq::new();
    if len == 0 {
        return out;
    }
    let mut current = rng.gen_bool(0.5);
    out.push(current);
    for _ in 1..len {
        if rng.gen_bool(p_flip) {
            current = !current;
        }
        out.push(current);
    }
    out
}

/// A periodic stream repeating `pattern` until `len` bits are emitted.
///
/// Models the vertical bit sequence a bus line sees while a tight loop of
/// `pattern.len()` instructions executes repeatedly — the paper's central
/// workload shape.
///
/// # Panics
///
/// Panics if `pattern` is empty and `len > 0`.
pub fn periodic(pattern: &[bool], len: usize) -> BitSeq {
    if len > 0 {
        assert!(!pattern.is_empty(), "cannot repeat an empty pattern");
    }
    (0..len).map(|i| pattern[i % pattern.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xDA7E_2003)
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let stream = uniform(&mut rng(), 10_000);
        let ones = stream.iter().filter(|&b| b).count();
        assert!((4_500..=5_500).contains(&ones), "ones = {ones}");
        // A uniform stream transitions about half the time.
        let t = stream.transitions();
        assert!((4_500..=5_500).contains(&(t as usize)), "transitions = {t}");
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform(&mut rng(), 100), uniform(&mut rng(), 100));
    }

    #[test]
    fn biased_extremes() {
        assert_eq!(biased(&mut rng(), 50, 0.0), BitSeq::repeat(false, 50));
        assert_eq!(biased(&mut rng(), 50, 1.0), BitSeq::repeat(true, 50));
    }

    #[test]
    fn markov_flip_probability_controls_transitions() {
        let calm = markov(&mut rng(), 10_000, 0.05);
        let busy = markov(&mut rng(), 10_000, 0.95);
        assert!(calm.transitions() < 1_000, "calm = {}", calm.transitions());
        assert!(busy.transitions() > 9_000, "busy = {}", busy.transitions());
    }

    #[test]
    fn periodic_repeats_pattern() {
        let stream = periodic(&[true, false, false], 7);
        assert_eq!(stream.to_time_string(), "1001001");
        assert_eq!(periodic(&[true], 0), BitSeq::new());
    }

    #[test]
    #[should_panic(expected = "empty pattern")]
    fn periodic_rejects_empty_pattern() {
        periodic(&[], 3);
    }
}
