//! Gray-code word sequencing: the memoryless `w ^ (w >> 1)` stored image.
//!
//! Gray coding is the classic address-bus trick (consecutive integers
//! differ in one bit); applied to the instruction **data** bus it becomes
//! a memoryless re-encoding of each stored word. The restore hardware is
//! a 31-gate XOR ripple from the MSB down: bit 31 passes through, bit
//! `l` is `stored[l] ^ decoded[l+1]`. No tables, no state — the cheapest
//! point in the encoder arena's hardware-cost axis.
//!
//! The word-parallel fast path (`gray_word` / `ungray_word`) is oracled
//! by per-bit reference implementations (`gray_word_naive` /
//! `ungray_word_naive`) that mirror the hardware description literally.

/// Gray-encodes one word: `w ^ (w >> 1)`.
#[inline]
pub fn gray_word(word: u32) -> u32 {
    word ^ (word >> 1)
}

/// Inverts [`gray_word`] with the word-parallel prefix-XOR ladder.
#[inline]
pub fn ungray_word(mut g: u32) -> u32 {
    g ^= g >> 1;
    g ^= g >> 2;
    g ^= g >> 4;
    g ^= g >> 8;
    g ^= g >> 16;
    g
}

/// Bit-by-bit reference encoder: bit `l` of the code is
/// `w[l] ^ w[l+1]` (bit 31 passes through). The oracle for
/// [`gray_word`].
pub fn gray_word_naive(word: u32) -> u32 {
    let mut out = 0u32;
    for lane in 0..32u32 {
        let hi = if lane == 31 {
            0
        } else {
            (word >> (lane + 1)) & 1
        };
        let bit = ((word >> lane) & 1) ^ hi;
        out |= bit << lane;
    }
    out
}

/// Bit-by-bit reference decoder: the MSB-down XOR ripple the restore
/// hardware implements. The oracle for [`ungray_word`].
pub fn ungray_word_naive(g: u32) -> u32 {
    let mut out = 0u32;
    let mut prev = 0u32;
    for lane in (0..32u32).rev() {
        let bit = ((g >> lane) & 1) ^ prev;
        out |= bit << lane;
        prev = bit;
    }
    out
}

/// Gray-encodes a whole text image.
pub fn gray_image(text: &[u32]) -> Vec<u32> {
    text.iter().map(|&w| gray_word(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_byte_boundary_pattern() {
        for w in [
            0u32,
            1,
            u32::MAX,
            0xAAAA_AAAA,
            0x5555_5555,
            0x8000_0000,
            0xDEAD_BEEF,
        ] {
            assert_eq!(ungray_word(gray_word(w)), w, "{w:#010x}");
        }
    }

    #[test]
    fn fast_matches_naive_on_a_sweep() {
        let mut w = 0x1234_5678u32;
        for _ in 0..10_000 {
            assert_eq!(gray_word(w), gray_word_naive(w), "encode {w:#010x}");
            assert_eq!(ungray_word(w), ungray_word_naive(w), "decode {w:#010x}");
            assert_eq!(ungray_word_naive(gray_word_naive(w)), w);
            // Deterministic xorshift sweep — no RNG dependency.
            w ^= w << 13;
            w ^= w >> 17;
            w ^= w << 5;
        }
    }

    #[test]
    fn consecutive_integers_differ_in_one_bit() {
        for w in 0..1000u32 {
            let diff = gray_word(w) ^ gray_word(w + 1);
            assert_eq!(diff.count_ones(), 1);
        }
    }
}
