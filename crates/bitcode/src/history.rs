//! Generalised transformations with `h` bits of history (§5.1).
//!
//! The paper's decode recurrence is one member of a family:
//!
//! ```text
//! xₙ = τ(x̃ₙ, xₙ₋₁, …, xₙ₋ₕ)
//! ```
//!
//! and §5.1 settles on `h = 1` ("transformations with various history
//! lengths can be considered; in this paper we concentrate our attention
//! on transformations with one bit history"). This module implements the
//! whole family for `h ≤ 3` so the choice can be *measured* rather than
//! assumed:
//!
//! * richer history means `2^(2^(h+1))` candidate functions and strictly
//!   fewer constraint conflicts, so the per-block optimum can only improve;
//! * but a block must seed `h` bits verbatim before the recurrence can
//!   run, so short blocks lose ground, and the per-block selector in the
//!   Transformation Table grows with the function count.
//!
//! The `exp_history` experiment tabulates this trade-off; the `h = 1`
//! column is cross-checked against the [`crate::tables`] machinery.

use crate::bits::transitions;
use crate::block::MAX_BLOCK_SIZE;
use crate::CodecError;

/// Maximum supported history depth.
///
/// `h = 3` already means 16-entry truth tables (65536 candidate
/// functions); beyond that the hardware argument collapses entirely.
pub const MAX_HISTORY: usize = 3;

/// A two-input-family boolean function with `h` history bits: the truth
/// table over `(x̃, xₙ₋₁, …, xₙ₋ₕ)`.
///
/// Entry index layout: bit `h` of the index is the stored bit `x̃`, bits
/// `h-1..0` are the history bits, most recent (`xₙ₋₁`) in bit `h-1`.
///
/// ```
/// use imt_bitcode::history::HistoryTransform;
///
/// // h = 2 XOR-with-oldest: out = x̃ ⊕ xₙ₋₂.
/// let table = (0u32..8).fold(0u32, |acc, idx| {
///     let stored = idx >> 2 & 1;
///     let oldest = idx & 1;
///     acc | ((stored ^ oldest) << idx)
/// });
/// let tau = HistoryTransform::from_table(2, table)?;
/// assert_eq!(tau.apply(true, &[false, true]), false); // 1 ⊕ 1
/// # Ok::<(), imt_bitcode::CodecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryTransform {
    h: u8,
    table: u32,
}

impl HistoryTransform {
    /// Builds a transform from its truth table (low `2^(h+1)` bits used).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BlockSize`] if `h` is 0 or exceeds
    /// [`MAX_HISTORY`] (reusing the nearest error shape — the value is the
    /// offending depth).
    pub fn from_table(h: usize, table: u32) -> Result<Self, CodecError> {
        if h == 0 || h > MAX_HISTORY {
            return Err(CodecError::BlockSize { requested: h });
        }
        let entries = 1u32 << (h + 1);
        let mask = if entries == 32 {
            u32::MAX
        } else {
            (1u32 << entries) - 1
        };
        Ok(HistoryTransform {
            h: h as u8,
            table: table & mask,
        })
    }

    /// The history depth `h`.
    pub fn history(self) -> usize {
        self.h as usize
    }

    /// The truth table.
    pub fn table(self) -> u32 {
        self.table
    }

    /// Evaluates the function. `history[0]` is the most recent original
    /// bit `xₙ₋₁`.
    ///
    /// # Panics
    ///
    /// Panics if `history.len() != h`.
    pub fn apply(self, stored: bool, history: &[bool]) -> bool {
        assert_eq!(history.len(), self.h as usize, "history depth mismatch");
        let mut idx = (stored as u32) << self.h;
        for (j, &bit) in history.iter().enumerate() {
            // Most recent in the highest history bit.
            idx |= (bit as u32) << (self.h as usize - 1 - j);
        }
        self.table >> idx & 1 == 1
    }
}

/// A partially pinned `h`-history function used by the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PartialHistory {
    pinned: u32,
    value: u32,
}

impl PartialHistory {
    fn constrain(&mut self, idx: u32, out: bool) -> bool {
        let bit = 1u32 << idx;
        if self.pinned & bit != 0 {
            return (self.value & bit != 0) == out;
        }
        self.pinned |= bit;
        if out {
            self.value |= bit;
        }
        true
    }

    /// A concrete completion (unpinned entries default to 0).
    fn any_completion(self, h: usize) -> HistoryTransform {
        HistoryTransform::from_table(h, self.value).expect("depth validated by caller")
    }
}

/// Result of encoding one block with `h`-bit history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryBlockEncoding {
    /// The stored bits (the first `min(h, len)` are verbatim seeds).
    pub code: Vec<bool>,
    /// A transform realising the decode (one of possibly many).
    pub transform: HistoryTransform,
    /// Transitions of the original block.
    pub original_transitions: u64,
    /// Transitions of the code block.
    pub code_transitions: u64,
}

/// Optimally encodes one initial block under `h`-bit history: the first
/// `min(h, len)` bits are stored verbatim, the rest are free subject to a
/// single function `τ` decoding them.
///
/// # Errors
///
/// Returns [`CodecError::BlockSize`] for unsupported `h` or block length.
///
/// # Panics
///
/// Panics if `original` is empty.
pub fn encode_history_block(
    original: &[bool],
    h: usize,
) -> Result<HistoryBlockEncoding, CodecError> {
    assert!(!original.is_empty(), "cannot encode an empty block");
    if h == 0 || h > MAX_HISTORY {
        return Err(CodecError::BlockSize { requested: h });
    }
    let n = original.len();
    if n > MAX_BLOCK_SIZE {
        return Err(CodecError::BlockSize { requested: n });
    }
    let seeds = h.min(n);
    let free = n - seeds;
    let original_transitions = transitions(original);

    // Enumerate candidates by transition count of the full code word. The
    // seed prefix is fixed; gaps flip the running value, anchored at the
    // last seed bit.
    let anchor = original[seeds - 1];
    let mut best: Option<HistoryBlockEncoding> = None;
    'by_cost: for cost in 0..=free {
        let mut gaps: Vec<usize> = (0..cost).collect();
        loop {
            // Materialise candidate.
            let mut code: Vec<bool> = original[..seeds].to_vec();
            let mut current = anchor;
            let mut gap_iter = gaps.iter().peekable();
            for position in 0..free {
                if gap_iter.peek() == Some(&&position) {
                    current = !current;
                    gap_iter.next();
                }
                code.push(current);
            }
            // Feasibility: one τ must satisfy all equations i ≥ seeds.
            let mut partial = PartialHistory::default();
            let mut ok = true;
            for i in seeds..n {
                let mut idx = (code[i] as u32) << h;
                for j in 0..h {
                    idx |= (original[i - 1 - j] as u32) << (h - 1 - j);
                }
                if !partial.constrain(idx, original[i]) {
                    ok = false;
                    break;
                }
            }
            if ok {
                let code_transitions = transitions(&code);
                best = Some(HistoryBlockEncoding {
                    transform: partial.any_completion(h),
                    code,
                    original_transitions,
                    code_transitions,
                });
                break 'by_cost;
            }
            // Next combination.
            if !next_combination(&mut gaps, free) {
                break;
            }
        }
    }
    Ok(best.expect("identity completion always feasible at cost = original"))
}

/// Advances to the next lexicographic combination (duplicated from the
/// block module's private helper; kept separate to keep both modules
/// self-contained).
fn next_combination(gaps: &mut [usize], n: usize) -> bool {
    let t = gaps.len();
    if t == 0 {
        return false;
    }
    let mut i = t;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if gaps[i] < n - (t - i) {
            gaps[i] += 1;
            for j in i + 1..t {
                gaps[j] = gaps[j - 1] + 1;
            }
            return true;
        }
    }
}

/// Decodes an `h`-history block produced by [`encode_history_block`].
pub fn decode_history_block(code: &[bool], transform: HistoryTransform) -> Vec<bool> {
    let h = transform.history();
    let seeds = h.min(code.len());
    let mut out: Vec<bool> = code[..seeds].to_vec();
    for i in seeds..code.len() {
        let history: Vec<bool> = (0..h).map(|j| out[i - 1 - j]).collect();
        out.push(transform.apply(code[i], &history));
    }
    out
}

/// An `h`-history encoded stream: stored bits plus the per-block
/// transforms (the §6 chaining generalised to deeper history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryStream {
    /// The stored bits.
    pub stored: Vec<bool>,
    /// Per-block: the transform and the number of *new* bits it covers
    /// (the first block includes its `h` verbatim seeds).
    pub blocks: Vec<(HistoryTransform, usize)>,
    /// Transitions of the original stream.
    pub original_transitions: u64,
}

impl HistoryStream {
    /// Transitions of the stored stream.
    pub fn transitions(&self) -> u64 {
        transitions(&self.stored)
    }

    /// Percentage of transitions eliminated.
    pub fn reduction_percent(&self) -> f64 {
        if self.original_transitions == 0 {
            return 0.0;
        }
        (self.original_transitions - self.transitions()) as f64 / self.original_transitions as f64
            * 100.0
    }
}

/// Chained `h`-history stream encoding: blocks of `block_size` bits
/// overlapping by `h` bits, greedy per block (the §6 scheme generalised).
///
/// The first block stores its first `h` bits verbatim; every later block
/// re-uses the previous block's last `h` **stored** bits as its history
/// seed (the stored-bit semantics that §6 describes for `h = 1`), so each
/// block contributes `block_size − h` new bits.
///
/// # Errors
///
/// [`CodecError::BlockSize`] for unsupported `h` or `block_size ≤ h`.
pub fn encode_history_stream(
    original: &[bool],
    block_size: usize,
    h: usize,
) -> Result<HistoryStream, CodecError> {
    if h == 0 || h > MAX_HISTORY {
        return Err(CodecError::BlockSize { requested: h });
    }
    if block_size <= h || block_size > MAX_BLOCK_SIZE {
        return Err(CodecError::BlockSize {
            requested: block_size,
        });
    }
    let n = original.len();
    let mut stored: Vec<bool> = Vec::with_capacity(n);
    let mut blocks = Vec::new();
    if n == 0 {
        return Ok(HistoryStream {
            stored,
            blocks,
            original_transitions: 0,
        });
    }

    // First block: encode_history_block handles the verbatim seeds.
    let first_len = block_size.min(n);
    let first = encode_history_block(&original[..first_len], h)?;
    stored.extend(&first.code);
    blocks.push((first.transform, first_len));
    let mut pos = first_len;

    // Chained blocks: history comes from the previous stored bits; the
    // candidate search mirrors encode_history_block but with an external
    // h-bit seed and the boundary transition charged to this block.
    while pos < n {
        let len = (block_size - h).min(n - pos);
        let mut best: Option<(Vec<bool>, HistoryTransform)> = None;
        'by_cost: for cost in 0..=len {
            let mut gaps: Vec<usize> = (0..cost).collect();
            loop {
                let mut code = Vec::with_capacity(len);
                let mut current = stored[pos - 1];
                let mut gap_iter = gaps.iter().peekable();
                for position in 0..len {
                    if gap_iter.peek() == Some(&&position) {
                        current = !current;
                        gap_iter.next();
                    }
                    code.push(current);
                }
                // Constraints: history for bit `i` of this block mixes the
                // already-decoded originals (and, across the boundary, the
                // previous STORED bits, per the stored-bit semantics).
                let mut partial = PartialHistory::default();
                let mut ok = true;
                for i in 0..len {
                    let mut idx = (code[i] as u32) << h;
                    for j in 0..h {
                        let history_bit = if i > j {
                            original[pos + i - 1 - j]
                        } else {
                            stored[pos + i - 1 - j]
                        };
                        idx |= (history_bit as u32) << (h - 1 - j);
                    }
                    if !partial.constrain(idx, original[pos + i]) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    best = Some((code, partial.any_completion(h)));
                    break 'by_cost;
                }
                if !next_combination(&mut gaps, len) {
                    break;
                }
            }
        }
        let (code, transform) = best.expect("identity keeps every block feasible");
        stored.extend(&code);
        blocks.push((transform, len));
        pos += len;
    }
    Ok(HistoryStream {
        stored,
        blocks,
        original_transitions: transitions(original),
    })
}

/// Decodes a chained `h`-history stream (the inverse of
/// [`encode_history_stream`]).
pub fn decode_history_stream(stream: &HistoryStream, h: usize) -> Vec<bool> {
    let stored = &stream.stored;
    let mut out: Vec<bool> = Vec::with_capacity(stored.len());
    let mut pos = 0usize;
    for (block_index, &(transform, len)) in stream.blocks.iter().enumerate() {
        if block_index == 0 {
            out.extend(decode_history_block(&stored[..len], transform));
        } else {
            for i in 0..len {
                let mut history = Vec::with_capacity(h);
                for j in 0..h {
                    history.push(if i > j {
                        out[pos + i - 1 - j]
                    } else {
                        stored[pos + i - 1 - j]
                    });
                }
                out.push(transform.apply(stored[pos + i], &history));
            }
        }
        pos += len;
    }
    out
}

/// Aggregate per-word statistics for all `2^k` block words at history
/// depth `h` — the generalisation of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryTableSummary {
    /// Block size.
    pub block_size: usize,
    /// History depth.
    pub history: usize,
    /// Total transitions of all original words (TTN).
    pub total_transitions: u64,
    /// Total transitions of all optimal code words (RTN).
    pub reduced_transitions: u64,
}

impl HistoryTableSummary {
    /// Percentage improvement.
    pub fn improvement_percent(&self) -> f64 {
        if self.total_transitions == 0 {
            return 0.0;
        }
        (self.total_transitions - self.reduced_transitions) as f64 / self.total_transitions as f64
            * 100.0
    }
}

/// Builds the exhaustive summary over all `2^k` words.
///
/// # Errors
///
/// As [`encode_history_block`].
pub fn history_table_summary(
    block_size: usize,
    h: usize,
) -> Result<HistoryTableSummary, CodecError> {
    if !(2..=MAX_BLOCK_SIZE).contains(&block_size) {
        return Err(CodecError::BlockSize {
            requested: block_size,
        });
    }
    let mut total = 0u64;
    let mut reduced = 0u64;
    for value in 0u64..(1 << block_size) {
        let word: Vec<bool> = (0..block_size).map(|i| value >> i & 1 == 1).collect();
        let enc = encode_history_block(&word, h)?;
        total += enc.original_transitions;
        reduced += enc.code_transitions;
    }
    Ok(HistoryTableSummary {
        block_size,
        history: h,
        total_transitions: total,
        reduced_transitions: reduced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::CodeTable;
    use crate::TransformSet;

    #[test]
    fn h1_matches_the_paper_machinery_exactly() {
        // The generalised solver at h = 1 must reproduce the per-word
        // optima of the two-input machinery for every word of every size.
        for k in 2..=7 {
            let reference = CodeTable::build(k, TransformSet::ALL_SIXTEEN).unwrap();
            let summary = history_table_summary(k, 1).unwrap();
            assert_eq!(
                summary.total_transitions,
                reference.total_transitions(),
                "k={k}"
            );
            assert_eq!(
                summary.reduced_transitions,
                reference.reduced_transitions(),
                "k={k}"
            );
        }
    }

    #[test]
    fn roundtrip_all_words() {
        for h in 1..=3usize {
            for k in 1..=7usize {
                for value in 0u64..(1 << k) {
                    let word: Vec<bool> = (0..k).map(|i| value >> i & 1 == 1).collect();
                    let enc = encode_history_block(&word, h).unwrap();
                    assert_eq!(
                        decode_history_block(&enc.code, enc.transform),
                        word,
                        "h={h} k={k} value={value:b}"
                    );
                    assert!(enc.code_transitions <= enc.original_transitions);
                }
            }
        }
    }

    #[test]
    fn deeper_history_never_hurts_the_recurrence_region() {
        // For words longer than the seed prefix, h+1 subsumes h on the
        // constrained region but pays one more verbatim seed; the net
        // effect is measured, not assumed. What must hold per word: the
        // optimum is bounded by the original (identity) either way.
        for k in 3..=7usize {
            for value in 0u64..(1 << k) {
                let word: Vec<bool> = (0..k).map(|i| value >> i & 1 == 1).collect();
                let h1 = encode_history_block(&word, 1).unwrap();
                let h2 = encode_history_block(&word, 2).unwrap();
                assert!(h1.code_transitions <= h1.original_transitions);
                assert!(h2.code_transitions <= h2.original_transitions);
            }
        }
    }

    #[test]
    fn seed_prefix_is_stored_verbatim() {
        let word = [true, false, true, false, true, false];
        for h in 1..=3usize {
            let enc = encode_history_block(&word, h).unwrap();
            assert_eq!(&enc.code[..h], &word[..h], "h={h}");
        }
    }

    #[test]
    fn history_depth_validation() {
        assert!(HistoryTransform::from_table(0, 0).is_err());
        assert!(HistoryTransform::from_table(4, 0).is_err());
        assert!(encode_history_block(&[true, false], 0).is_err());
        assert!(history_table_summary(1, 1).is_err());
    }

    #[test]
    fn apply_indexing_convention() {
        // h = 2, table = "output equals most recent history bit":
        // entry idx bit 1 (of the history part) is x_{n-1}.
        let mut table = 0u32;
        for idx in 0u32..8 {
            let most_recent = idx >> 1 & 1;
            table |= most_recent << idx;
        }
        let tau = HistoryTransform::from_table(2, table).unwrap();
        assert!(tau.apply(false, &[true, false]));
        assert!(!tau.apply(true, &[false, true]));
    }

    #[test]
    fn stream_roundtrips_exhaustively() {
        for h in 1..=3usize {
            for k in (h + 1)..=6usize {
                for len in 1..=12usize {
                    let limit = 1u32 << len.min(10);
                    for value in 0..limit {
                        let original: Vec<bool> = (0..len).map(|i| value >> i & 1 == 1).collect();
                        let stream = encode_history_stream(&original, k, h).unwrap();
                        assert_eq!(
                            decode_history_stream(&stream, h),
                            original,
                            "h={h} k={k} len={len} value={value:b}"
                        );
                        assert!(stream.transitions() <= stream.original_transitions);
                    }
                }
            }
        }
    }

    #[test]
    fn deeper_history_wins_on_long_random_streams() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x41AB);
        let mut totals = [0u64; 4];
        let mut orig_total = 0u64;
        for _ in 0..50 {
            let stream = crate::gen::uniform(&mut rng, 500);
            let bits: Vec<bool> = stream.clone().into();
            orig_total += stream.transitions();
            #[allow(clippy::needless_range_loop)] // h is a parameter, not an index
            for h in 1..=3usize {
                let enc = encode_history_stream(&bits, 6, h).unwrap();
                totals[h] += enc.transitions();
            }
        }
        // At k = 6, h = 2 must beat h = 1 (the E-H table's static result,
        // confirmed dynamically on chained streams).
        assert!(
            totals[2] < totals[1],
            "h2 {} vs h1 {}",
            totals[2],
            totals[1]
        );
        assert!(totals[1] < orig_total);
    }

    #[test]
    fn stream_parameter_validation() {
        assert!(encode_history_stream(&[true], 2, 2).is_err()); // k <= h
        assert!(encode_history_stream(&[true], 5, 0).is_err());
        assert!(encode_history_stream(&[true], 5, 4).is_err());
        let empty = encode_history_stream(&[], 5, 2).unwrap();
        assert_eq!(empty.transitions(), 0);
        assert!(decode_history_stream(&empty, 2).is_empty());
    }

    #[test]
    fn summaries_are_consistent() {
        let s = history_table_summary(5, 2).unwrap();
        assert_eq!(s.total_transitions, 64); // TTN is h-independent
        assert!(s.reduced_transitions <= 64);
        assert!(s.improvement_percent() >= 0.0);
    }
}
