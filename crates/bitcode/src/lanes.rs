//! Applying the bit-line codec to a sequence of machine words.
//!
//! An instruction memory delivers a `width`-bit word per fetch; each bit
//! position is one physical bus line and is encoded as an independent
//! vertical stream (paper §4, Figure 1). This module slices a word sequence
//! into lanes, encodes every lane with a [`StreamCodec`], reassembles the
//! encoded words, and accounts transitions per lane and in total.

use crate::packed::PackedSeq;
use crate::par::par_map_range;
use crate::stream::{EncodedStream, StreamCodec};
use crate::CodecError;

/// Lane mask selecting the low `width` bits of a word.
///
/// # Panics
///
/// Panics if `width` is outside `1..=64`.
pub fn width_mask(width: usize) -> u64 {
    assert!((1..=64).contains(&width), "width {width} outside 1..=64");
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Transitions of a word sequence over the lanes selected by `mask`: the
/// canonical masked XOR+popcount counter.
///
/// Every transition count in the workspace — bus totals here, segment
/// costs in the pipeline, the baseline encoders' accounting — reduces to
/// this one helper.
///
/// ```
/// use imt_bitcode::lanes::word_transitions;
/// // 0b011 → 0b110 flips lanes 0 and 2; mask out lane 2 and one remains.
/// assert_eq!(word_transitions(&[0b011, 0b110], 0b111), 2);
/// assert_eq!(word_transitions(&[0b011, 0b110], 0b011), 1);
/// ```
pub fn word_transitions(words: &[u64], mask: u64) -> u64 {
    words
        .windows(2)
        .map(|p| ((p[0] ^ p[1]) & mask).count_ones() as u64)
        .sum()
}

/// Per-lane transition counts for a word sequence.
///
/// Element `i` is the number of transitions on bus line `i` (bit `i` of the
/// words) over the sequence.
pub fn per_lane_transitions(words: &[u64], width: usize) -> Vec<u64> {
    assert!((1..=64).contains(&width), "width {width} outside 1..=64");
    let mut counts = vec![0u64; width];
    for pair in words.windows(2) {
        let diff = pair[0] ^ pair[1];
        for (lane, count) in counts.iter_mut().enumerate() {
            *count += diff >> lane & 1;
        }
    }
    counts
}

/// Total transitions across all lanes of a word sequence.
///
/// This is the quantity the paper's Figure 6 reports (in millions) for the
/// baseline bus.
///
/// ```
/// use imt_bitcode::lanes::total_transitions;
/// // 0b01 → 0b10 flips both lines.
/// assert_eq!(total_transitions(&[0b01, 0b10], 2), 2);
/// ```
pub fn total_transitions(words: &[u64], width: usize) -> u64 {
    word_transitions(words, width_mask(width))
}

/// A word sequence encoded lane by lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneEncoding {
    words: Vec<u64>,
    lanes: Vec<EncodedStream>,
    width: usize,
}

impl LaneEncoding {
    /// The encoded words, as they would be stored in instruction memory.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Per-lane encoding details; element `i` is bus line `i`.
    pub fn lanes(&self) -> &[EncodedStream] {
        &self.lanes
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total transitions of the encoded words across all lanes.
    pub fn transitions(&self) -> u64 {
        total_transitions(&self.words, self.width)
    }

    /// Total transitions of the original words across all lanes.
    pub fn original_transitions(&self) -> u64 {
        self.lanes.iter().map(|l| l.original_transitions()).sum()
    }

    /// Percentage of transitions eliminated across the whole bus.
    pub fn reduction_percent(&self) -> f64 {
        let orig = self.original_transitions();
        if orig == 0 {
            return 0.0;
        }
        (orig - self.transitions()) as f64 / orig as f64 * 100.0
    }
}

/// Encodes a word sequence lane by lane.
///
/// # Errors
///
/// Returns [`CodecError::LaneWidth`] if `width` is outside `1..=64`.
///
/// ```
/// use imt_bitcode::lanes::{decode_words, encode_words};
/// use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
///
/// # fn main() -> Result<(), imt_bitcode::CodecError> {
/// let codec = StreamCodec::new(StreamCodecConfig::block_size(5)?);
/// let words = vec![0xDEAD_BEEF, 0x0000_0000, 0xDEAD_BEEF, 0xFFFF_FFFF];
/// let encoded = encode_words(&words, 32, &codec)?;
/// assert!(encoded.transitions() <= encoded.original_transitions());
/// assert_eq!(decode_words(&encoded, &codec)?, words);
/// # Ok(())
/// # }
/// ```
pub fn encode_words(
    words: &[u64],
    width: usize,
    codec: &StreamCodec,
) -> Result<LaneEncoding, CodecError> {
    if !(1..=64).contains(&width) {
        return Err(CodecError::LaneWidth { requested: width });
    }
    // Lanes are independent: fan them out for long sequences. Short
    // sequences (the per-basic-block case, which the pipeline already
    // parallelises one level up) stay inline to avoid nested
    // oversubscription.
    let min_lanes_per_thread = if words.len() >= 256 { 1 } else { usize::MAX };
    let lanes = par_map_range(width, min_lanes_per_thread, |lane| {
        codec.encode_packed(&PackedSeq::from_lane(words, lane))
    });
    let mut out = vec![0u64; words.len()];
    for (lane, encoded) in lanes.iter().enumerate() {
        for (i, bit) in encoded.stored().iter().enumerate() {
            out[i] |= u64::from(bit) << lane;
        }
    }
    Ok(LaneEncoding {
        words: out,
        lanes,
        width,
    })
}

/// Decodes a lane encoding back to the original words.
///
/// # Errors
///
/// Returns [`CodecError::MalformedBlocks`] if a lane's schedule is
/// inconsistent with its stored bits (cannot happen for encodings produced
/// by [`encode_words`] with the same codec).
pub fn decode_words(encoding: &LaneEncoding, codec: &StreamCodec) -> Result<Vec<u64>, CodecError> {
    let len = encoding.words.len();
    let mut out = vec![0u64; len];
    for (lane, stream) in encoding.lanes.iter().enumerate() {
        let decoded = codec.decode(stream)?;
        for (i, bit) in decoded.iter().enumerate() {
            out[i] |= (bit as u64) << lane;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamCodecConfig;

    fn codec(k: usize) -> StreamCodec {
        StreamCodec::new(StreamCodecConfig::block_size(k).unwrap())
    }

    #[test]
    fn per_lane_counts_match_total() {
        let words = [0b1010, 0b0101, 0b1111, 0b0000];
        let per_lane = per_lane_transitions(&words, 4);
        assert_eq!(per_lane.iter().sum::<u64>(), total_transitions(&words, 4));
        // Lane 0 over time: 0,1,1,0 → 2; lane 1: 1,0,1,0 → 3; etc.
        assert_eq!(per_lane, vec![2, 3, 2, 3]);
    }

    #[test]
    fn width_masks_high_bits() {
        let words = [u64::MAX, 0];
        assert_eq!(total_transitions(&words, 8), 8);
        assert_eq!(total_transitions(&words, 64), 64);
    }

    #[test]
    fn roundtrip_random_words() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let words: Vec<u64> = (0..200).map(|_| rng.gen::<u32>() as u64).collect();
        for k in [4, 5, 6, 7] {
            let c = codec(k);
            let enc = encode_words(&words, 32, &c).unwrap();
            assert_eq!(decode_words(&enc, &c).unwrap(), words, "k = {k}");
            assert!(enc.transitions() <= enc.original_transitions());
        }
    }

    #[test]
    fn loop_like_words_reduce_substantially() {
        // A 16-instruction "loop body" fetched 1 time: structured words with
        // alternating patterns encode well.
        let body: Vec<u64> = (0..16)
            .map(|i| if i % 2 == 0 { 0xAAAA_5555 } else { 0x5555_AAAA })
            .collect();
        let c = codec(5);
        let enc = encode_words(&body, 32, &c).unwrap();
        // Every lane alternates every cycle; encoding flattens nearly all.
        assert!(
            enc.reduction_percent() > 80.0,
            "got {:.1}%",
            enc.reduction_percent()
        );
    }

    #[test]
    fn rejects_bad_width() {
        let c = codec(5);
        assert!(matches!(
            encode_words(&[0], 0, &c),
            Err(CodecError::LaneWidth { requested: 0 })
        ));
        assert!(matches!(
            encode_words(&[0], 65, &c),
            Err(CodecError::LaneWidth { requested: 65 })
        ));
    }

    #[test]
    fn empty_sequence() {
        let c = codec(5);
        let enc = encode_words(&[], 32, &c).unwrap();
        assert_eq!(enc.transitions(), 0);
        assert_eq!(decode_words(&enc, &c).unwrap(), Vec::<u64>::new());
    }
}
