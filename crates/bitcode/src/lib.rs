//! # imt-bitcode — vertical bit-line functional transformation codec
//!
//! This crate is the theory core of the IMT project, a reproduction of
//! *“Power Efficiency through Application-Specific Instruction Memory
//! Transformations”* (Petrov & Orailoglu, DATE 2003).
//!
//! Dynamic power on an instruction-memory data bus is proportional to the
//! number of 0↔1 transitions on each bus **line**. The paper's idea is to
//! look at the bit stream carried by a single line over time (a *vertical*
//! bit sequence across consecutive instructions), split it into small blocks,
//! and store each block in a transformed, lower-transition form. The fetch
//! hardware restores the original bit `xₙ` from the stored bit `x̃ₙ` and one
//! bit of already-decoded history via a two-input boolean function:
//!
//! ```text
//! x₁ = x̃₁                    (seed: first bit passes through)
//! xᵢ = τ(x̃ᵢ, xᵢ₋₁)   i ≥ 2   (τ is one of 16 two-input functions)
//! ```
//!
//! This crate provides:
//!
//! * [`transform`] — the 16 two-input boolean functions, the canonical
//!   8-function subset the paper proves sufficient, and the partial-function
//!   machinery used to solve for `τ`.
//! * [`block`] — the optimal per-block encoder: given an original block word,
//!   find the minimum-transition code word and a compatible `τ`.
//! * [`codebook`] — memoized lookup tables of those optimal encodings, one
//!   per (length, transform universe), making the hot encode path O(1).
//! * [`packed`] — `u64`-word packed bit sequences with XOR+popcount
//!   transition counting and shift/mask block extraction, plus the packed
//!   fast path used by [`stream`] and [`lanes`].
//! * [`par`] — the deterministic scoped-thread fan-out every parallel path
//!   in the workspace goes through (index-ordered merges, `IMT_THREADS`
//!   override).
//! * [`tables`] — exhaustive enumeration over all block words of a given
//!   size, reproducing the paper's Figures 2, 3, and 4, and the exact
//!   set-cover derivation of the minimal transformation subset (§5.2).
//! * [`stream`] — encoding of arbitrarily long bit sequences by chaining
//!   blocks with a one-bit overlap (§6), including both overlap-history
//!   semantics discussed in the paper.
//! * [`lanes`] — application of the codec to a sequence of fixed-width
//!   machine words, treating each bit position as an independent line.
//! * [`slice`] — the bit-sliced 64-lane codec: tiles of words are
//!   transposed so all lanes stream through the chained encoder together,
//!   cache-blocked, without per-lane `Vec<bool>`s.
//! * [`simd`] — runtime-dispatched SSE2/AVX2 kernels (64×64 bit transpose,
//!   masked popcount) behind `is_x86_feature_detected!`, with the scalar
//!   path as oracle and an `IMT_FORCE_SCALAR` override.
//! * [`gen`] — deterministic random bit-stream generators (uniform, biased,
//!   Markov) used by the §6 experiment and by property tests.
//! * [`gray`], [`lowweight`], [`businvert`] — the competing encodings of
//!   the encoder arena (`imt_core::scheme`): Gray word sequencing, the
//!   memoryless low-weight codebook, and bus-invert drive logic, each
//!   with a naive per-bit oracle kept in-crate.
//! * [`history`] — the §5.1 generalisation to `h`-bit history
//!   transformations (`h ≤ 3`), measuring the trade-off the paper's
//!   `h = 1` choice implies.
//! * [`analysis`] — per-lane stream statistics (bias, transition density,
//!   run lengths): the structure the vertical encoding exploits.
//! * [`gates`] — exact minimal NAND2 synthesis of every transformation and
//!   the full per-lane restore cell (the paper's gate-cost claim, costed).
//!
//! ## Quick example
//!
//! ```
//! use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
//! use imt_bitcode::bits::BitSeq;
//!
//! # fn main() -> Result<(), imt_bitcode::CodecError> {
//! // A bit line that toggles every cycle: worst case for the raw bus.
//! let original = BitSeq::from_str_time("1010101010101010")?;
//! let codec = StreamCodec::new(StreamCodecConfig::block_size(5)?);
//! let encoded = codec.encode(&original);
//!
//! // The stored sequence has strictly fewer transitions...
//! assert!(encoded.stored().transitions() < original.transitions());
//! // ...and decodes back to the original exactly.
//! assert_eq!(codec.decode(&encoded)?, original);
//! # Ok(())
//! # }
//! ```

// Library code must not panic on caller input: unwraps are reserved for
// tests (see clippy.toml), and fallible paths return typed errors.
#![warn(clippy::unwrap_used)]

pub mod analysis;
pub mod bits;
pub mod block;
pub mod businvert;
pub mod codebook;
pub mod gates;
pub mod gen;
pub mod gray;
pub mod history;
pub mod lanes;
pub mod lowweight;
pub mod packed;
pub mod par;
pub mod simd;
pub mod slice;
pub mod stream;
pub mod tables;
pub mod transform;

mod error;

pub use error::CodecError;
pub use transform::{Transform, TransformSet};
