//! Memoryless low-weight codebooks (Chee & Colbourn style).
//!
//! A small CAM maps the hottest distinct instruction words to the
//! lowest-Hamming-weight 32-bit codewords that do **not** appear anywhere
//! in the program text. Decode is a pure per-word lookup: a fetched word
//! that hits the CAM restores to its original; anything else passes
//! through. Because every codeword is guaranteed absent from the text,
//! the coded/passthrough cases can never collide — the mapping is
//! unambiguous with zero extra bus lines and zero decoder state.
//!
//! The codeword enumerator has two implementations kept in lockstep: the
//! fast path walks each weight class with Gosper's next-bit-permutation
//! hack; the naive oracle regenerates each class by recursive
//! combination, in the same (weight, value) ascending order.

use std::collections::BTreeMap;

/// Yields 32-bit values in (Hamming weight, numeric value) ascending
/// order, skipping anything in `forbidden` (sorted), using Gosper's hack
/// to step within a weight class.
pub fn low_weight_codewords(forbidden: &[u32], count: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(count);
    let banned = |v: u32| forbidden.binary_search(&v).is_ok();
    if out.len() < count && !banned(0) {
        out.push(0);
    }
    'weights: for weight in 1..=32u32 {
        // Smallest value of this weight: `weight` low bits set.
        let mut v: u32 = if weight == 32 {
            u32::MAX
        } else {
            (1u32 << weight) - 1
        };
        loop {
            if out.len() >= count {
                break 'weights;
            }
            if !banned(v) {
                out.push(v);
            }
            if weight == 32 {
                break; // only one value in the class
            }
            // Gosper's hack: next value with the same popcount.
            let c = v & v.wrapping_neg();
            let r = v.wrapping_add(c);
            if r == 0 {
                break; // wrapped past the top of the class
            }
            let next = (((v ^ r) >> 2) / c) | r;
            if next < v {
                break;
            }
            v = next;
        }
    }
    out
}

/// Naive oracle for [`low_weight_codewords`]: regenerates each weight
/// class by recursive combination of bit positions, ascending.
pub fn low_weight_codewords_naive(forbidden: &[u32], count: usize) -> Vec<u32> {
    fn combos(next_bit: u32, remaining: u32, acc: u32, out: &mut Vec<u32>) {
        if remaining == 0 {
            out.push(acc);
            return;
        }
        // Choose the next (lowest) set bit; keeping the recursion
        // lowest-bit-first yields ascending numeric order per class.
        for bit in next_bit..=(32 - remaining) {
            combos(bit + 1, remaining - 1, acc | (1u32 << bit), out);
        }
    }
    let banned = |v: u32| forbidden.binary_search(&v).is_ok();
    let mut out = Vec::with_capacity(count);
    for weight in 0..=32u32 {
        if out.len() >= count {
            break;
        }
        let mut class = Vec::new();
        combos(0, weight, 0, &mut class);
        class.sort_unstable();
        for v in class {
            if out.len() >= count {
                break;
            }
            if !banned(v) {
                out.push(v);
            }
        }
    }
    out
}

/// A built low-weight codebook: hot original words mapped injectively to
/// collision-free low-weight codewords.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowWeightBook {
    /// `(original, codeword)` pairs in assignment order (hottest first).
    pairs: Vec<(u32, u32)>,
    encode: BTreeMap<u32, u32>,
    decode: BTreeMap<u32, u32>,
}

impl LowWeightBook {
    /// Builds a codebook over `text` given per-index fetch weights:
    /// the `entries` hottest distinct words (by total fetch weight,
    /// ties broken toward the numerically smaller word) are mapped, in
    /// heat order, to the lightest codewords absent from the text — but
    /// only where the codeword is strictly lighter than the word it
    /// replaces, so an entry can never be pure overhead.
    pub fn build(text: &[u32], per_index: &[u64], entries: usize) -> LowWeightBook {
        let mut heat: BTreeMap<u32, u64> = BTreeMap::new();
        for (i, &w) in text.iter().enumerate() {
            let count = per_index.get(i).copied().unwrap_or(0);
            *heat.entry(w).or_insert(0) += count;
        }
        let mut hot: Vec<(u32, u64)> = heat.into_iter().collect();
        // Hottest first; BTreeMap iteration already ordered by word, so
        // equal-heat ties resolve toward the smaller word under a stable
        // sort.
        hot.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        let mut forbidden: Vec<u32> = text.to_vec();
        forbidden.sort_unstable();
        forbidden.dedup();
        let codes = low_weight_codewords(&forbidden, entries.min(hot.len()));
        let mut pairs = Vec::new();
        let mut codes = codes.into_iter().peekable();
        for &(word, weight) in hot.iter().take(entries) {
            if weight == 0 {
                break; // never fetched — nothing to save
            }
            let Some(&code) = codes.peek() else { break };
            if code.count_ones() >= word.count_ones() {
                // Not a win for this word; keep the light codeword for a
                // heavier word further down the heat ranking.
                continue;
            }
            codes.next();
            pairs.push((word, code));
        }
        LowWeightBook::from_pairs(pairs)
    }

    /// Rebuilds a codebook from explicit pairs (descriptor
    /// deserialization). Pairs are trusted to be injective; lookups use
    /// whatever is given.
    pub fn from_pairs(pairs: Vec<(u32, u32)>) -> LowWeightBook {
        let encode = pairs.iter().copied().collect();
        let decode = pairs.iter().map(|&(w, c)| (c, w)).collect();
        LowWeightBook {
            pairs,
            encode,
            decode,
        }
    }

    /// The `(original, codeword)` pairs in assignment order.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Encodes one word (CAM hit → codeword, miss → passthrough).
    #[inline]
    pub fn encode_word(&self, word: u32) -> u32 {
        self.encode.get(&word).copied().unwrap_or(word)
    }

    /// Decodes one stored word (CAM hit → original, miss → passthrough).
    #[inline]
    pub fn decode_word(&self, stored: u32) -> u32 {
        self.decode.get(&stored).copied().unwrap_or(stored)
    }

    /// Naive linear-scan encode — the oracle for [`encode_word`]'s map
    /// lookup.
    pub fn encode_word_naive(&self, word: u32) -> u32 {
        for &(orig, code) in &self.pairs {
            if orig == word {
                return code;
            }
        }
        word
    }

    /// Naive linear-scan decode — the oracle for [`decode_word`].
    pub fn decode_word_naive(&self, stored: u32) -> u32 {
        for &(orig, code) in &self.pairs {
            if code == stored {
                return orig;
            }
        }
        stored
    }

    /// CAM storage cost: each entry holds a 32-bit match tag and a
    /// 32-bit replacement word.
    pub fn storage_bits(&self) -> u64 {
        self.pairs.len() as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerator_matches_naive_oracle() {
        let forbidden: Vec<u32> = {
            let mut f = vec![0, 1, 2, 4, 8, 3, 0x8000_0000, u32::MAX];
            f.sort_unstable();
            f
        };
        assert_eq!(
            low_weight_codewords(&forbidden, 100),
            low_weight_codewords_naive(&forbidden, 100)
        );
        assert_eq!(
            low_weight_codewords(&[], 50),
            low_weight_codewords_naive(&[], 50)
        );
    }

    #[test]
    fn enumerator_is_weight_then_value_ascending() {
        let codes = low_weight_codewords(&[], 200);
        for pair in codes.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                (a.count_ones(), a) < (b.count_ones(), b),
                "{a:#x} !< {b:#x}"
            );
        }
    }

    #[test]
    fn book_round_trips_and_avoids_text_collisions() {
        let text = vec![0xFFFF_0000u32, 0xFFFF_0000, 0x00FF_00FF, 7, 7, 7];
        let per_index = vec![10, 10, 5, 1, 1, 1];
        let book = LowWeightBook::build(&text, &per_index, 4);
        for &(orig, code) in book.pairs() {
            assert!(!text.contains(&code), "codeword {code:#x} collides");
            assert!(code.count_ones() < orig.count_ones());
        }
        for &w in &text {
            let stored = book.encode_word(w);
            assert_eq!(book.decode_word(stored), w);
            assert_eq!(book.encode_word_naive(w), stored);
            assert_eq!(book.decode_word_naive(stored), w);
        }
    }

    #[test]
    fn heavy_words_map_to_lighter_codes() {
        let text = vec![u32::MAX; 8];
        let per_index = vec![100; 8];
        let book = LowWeightBook::build(&text, &per_index, 8);
        assert_eq!(book.pairs().len(), 1); // one distinct word
        assert_eq!(book.encode_word(u32::MAX), 0);
    }
}
