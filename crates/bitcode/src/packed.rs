//! Packed bit sequences: `u64`-word storage with XOR+popcount transition
//! counting and shift/mask block extraction.
//!
//! [`crate::bits::BitSeq`] stays the ergonomic boundary type of the codec
//! (one `bool` per bit, easy to index and print); [`PackedSeq`] is its hot
//! -path twin, storing 64 bits per machine word so that
//!
//! * transition counting is `popcount(w ^ (w >> 1))` per word instead of a
//!   per-bit loop, and
//! * a block of up to 16 bits is extracted with one shift/mask — and the
//!   extracted value doubles as the word index into a
//!   [`crate::codebook::Codebook`] slot.
//!
//! Invariant: bits at positions `>= len` in the last storage word are zero,
//! which the counting and extraction masks rely on.

use crate::bits::BitSeq;

/// A bit sequence packed 64 bits per word, index 0 = earliest cycle =
/// least-significant bit of `words()[0]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        PackedSeq::default()
    }

    /// Creates an empty sequence with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        PackedSeq {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Packs a bool slice (time order), one storage-word write per 64
    /// input bits.
    pub fn from_bools(bits: &[bool]) -> Self {
        let words = bits
            .chunks(64)
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i))
            })
            .collect();
        PackedSeq {
            words,
            len: bits.len(),
        }
    }

    /// Assembles a sequence from raw storage words.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)` or a bit at position
    /// `>= len` is set (the counting and extraction masks rely on the
    /// zero-padding invariant).
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "{} storage words cannot hold exactly {len} bits",
            words.len()
        );
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                assert_eq!(last >> (len % 64), 0, "stray bits above position {len}");
            }
        }
        PackedSeq { words, len }
    }

    /// Packs a [`BitSeq`].
    pub fn from_bitseq(seq: &BitSeq) -> Self {
        PackedSeq::from_bools(seq.as_slice())
    }

    /// Extracts the vertical sequence of bit `lane` from machine words:
    /// bit `i` of the result is bit `lane` of `words[i]`. Packed
    /// equivalent of [`BitSeq::from_lane`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn from_lane(words: &[u64], lane: usize) -> Self {
        assert!(lane < 64, "lane {lane} out of range for u64 words");
        let mut packed = Vec::with_capacity(words.len().div_ceil(64));
        let mut acc = 0u64;
        let mut filled = 0usize;
        for &w in words {
            acc |= ((w >> lane) & 1) << filled;
            filled += 1;
            if filled == 64 {
                packed.push(acc);
                acc = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            packed.push(acc);
        }
        PackedSeq {
            words: packed,
            len: words.len(),
        }
    }

    /// Unpacks into a [`BitSeq`].
    pub fn to_bitseq(&self) -> BitSeq {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing storage words; bits at positions `>= len()` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for {} bits", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// The latest bit, if any.
    pub fn last(&self) -> Option<bool> {
        if self.len == 0 {
            None
        } else {
            Some(self.get(self.len - 1))
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        self.push_bits(u64::from(bit), 1);
    }

    /// Appends the low `count` bits of `value`, earliest bit in the least
    /// significant position — the write-side dual of [`PackedSeq::extract`].
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn push_bits(&mut self, value: u64, count: usize) {
        assert!(count <= 64, "cannot push {count} bits at once");
        if count == 0 {
            return;
        }
        let value = if count == 64 {
            value
        } else {
            value & ((1u64 << count) - 1)
        };
        let offset = self.len % 64;
        if offset == 0 {
            self.words.push(value);
        } else {
            *self
                .words
                .last_mut()
                .expect("offset > 0 implies a partial word") |= value << offset;
            if offset + count > 64 {
                self.words.push(value >> (64 - offset));
            }
        }
        self.len += count;
    }

    /// Reads `count` bits starting at `start`, earliest bit in the least
    /// significant position. For `count <= 16` the result is exactly the
    /// word index [`crate::codebook::pack_word`] would compute for the
    /// same bits.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64` or the range exceeds `len()`.
    pub fn extract(&self, start: usize, count: usize) -> u64 {
        assert!(count <= 64, "cannot extract {count} bits at once");
        assert!(
            start + count <= self.len,
            "range {start}..{} out of bounds for {} bits",
            start + count,
            self.len
        );
        if count == 0 {
            return 0;
        }
        let word = start / 64;
        let offset = start % 64;
        let mask = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let low = self.words[word] >> offset;
        if offset + count <= 64 {
            low & mask
        } else {
            (low | self.words[word + 1] << (64 - offset)) & mask
        }
    }

    /// Number of 0↔1 transitions between consecutive bits, computed one
    /// storage word at a time: `popcount(w ^ (w >> 1))` for the internal
    /// pairs plus one boundary comparison per word seam.
    pub fn transitions(&self) -> u64 {
        let mut total = 0u64;
        let mut prev_top: Option<bool> = None;
        for (index, &w) in self.words.iter().enumerate() {
            let bits_here = (self.len - index * 64).min(64);
            if bits_here >= 2 {
                let internal = if bits_here == 64 {
                    u64::MAX >> 1
                } else {
                    (1u64 << (bits_here - 1)) - 1
                };
                total += ((w ^ (w >> 1)) & internal).count_ones() as u64;
            }
            if let Some(top) = prev_top {
                total += u64::from(top != (w & 1 == 1));
            }
            prev_top = Some(w >> 63 & 1 == 1);
        }
        total
    }
}

impl From<&BitSeq> for PackedSeq {
    fn from(seq: &BitSeq) -> Self {
        PackedSeq::from_bitseq(seq)
    }
}

impl From<&PackedSeq> for BitSeq {
    fn from(seq: &PackedSeq) -> Self {
        seq.to_bitseq()
    }
}

impl FromIterator<bool> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut seq = PackedSeq::new();
        for bit in iter {
            seq.push(bit);
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_bits(seed: u64, len: usize) -> Vec<bool> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn roundtrips_with_bitseq() {
        for len in [0usize, 1, 5, 63, 64, 65, 130, 1000] {
            let bits = random_bits(len as u64, len);
            let seq = BitSeq::from(bits.clone());
            let packed = PackedSeq::from_bitseq(&seq);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_bitseq(), seq, "len {len}");
            for (i, &bit) in bits.iter().enumerate() {
                assert_eq!(packed.get(i), bit, "bit {i} of {len}");
            }
            assert_eq!(packed.last(), bits.last().copied());
        }
    }

    #[test]
    fn transitions_match_bitseq() {
        for len in [0usize, 1, 2, 63, 64, 65, 127, 128, 129, 500] {
            let bits = random_bits(100 + len as u64, len);
            let packed = PackedSeq::from_bools(&bits);
            assert_eq!(
                packed.transitions(),
                crate::bits::transitions(&bits),
                "len {len}"
            );
        }
        // Alternating worst case across a word seam.
        let alternating: PackedSeq = (0..130).map(|i| i % 2 == 0).collect();
        assert_eq!(alternating.transitions(), 129);
    }

    #[test]
    fn extract_matches_manual_slice() {
        let bits = random_bits(7, 200);
        let packed = PackedSeq::from_bools(&bits);
        for start in [0usize, 1, 60, 63, 64, 100, 184] {
            for count in [0usize, 1, 5, 16, 64] {
                if start + count > bits.len() {
                    continue;
                }
                let expected = bits[start..start + count]
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
                assert_eq!(packed.extract(start, count), expected, "{start}+{count}");
            }
        }
    }

    #[test]
    fn extract_agrees_with_codebook_pack_word() {
        let bits = random_bits(8, 90);
        let packed = PackedSeq::from_bools(&bits);
        for start in [0usize, 3, 62, 70] {
            let word = packed.extract(start, 7) as u16;
            assert_eq!(word, crate::codebook::pack_word(&bits[start..start + 7]));
        }
    }

    #[test]
    fn push_bits_crosses_word_boundaries() {
        let mut packed = PackedSeq::new();
        let mut reference = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let count = (rng.gen::<u64>() % 17) as usize;
            let value = rng.gen::<u64>();
            packed.push_bits(value, count);
            for i in 0..count {
                reference.push(value >> i & 1 == 1);
            }
        }
        assert_eq!(packed.len(), reference.len());
        assert_eq!(packed.to_bitseq().as_slice(), &reference[..]);
        // The zero-padding invariant holds after mixed pushes.
        if !packed.len().is_multiple_of(64) {
            let top = packed.words().last().unwrap();
            assert_eq!(top >> (packed.len() % 64), 0, "stray high bits");
        }
    }

    #[test]
    fn from_lane_matches_bitseq_from_lane() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let words: Vec<u64> = (0..150).map(|_| rng.gen::<u64>()).collect();
        for lane in [0usize, 1, 31, 63] {
            let packed = PackedSeq::from_lane(&words, lane);
            assert_eq!(
                packed.to_bitseq(),
                BitSeq::from_lane(&words, lane),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn from_words_roundtrips_and_enforces_padding() {
        for len in [0usize, 1, 63, 64, 65, 200] {
            let bits = random_bits(500 + len as u64, len);
            let reference = PackedSeq::from_bools(&bits);
            let rebuilt = PackedSeq::from_words(reference.words().to_vec(), len);
            assert_eq!(rebuilt, reference, "len {len}");
        }
        assert!(std::panic::catch_unwind(|| PackedSeq::from_words(vec![0b10], 1)).is_err());
        assert!(std::panic::catch_unwind(|| PackedSeq::from_words(vec![0, 0], 64)).is_err());
    }

    #[test]
    fn empty_and_single_bit() {
        let empty = PackedSeq::new();
        assert!(empty.is_empty());
        assert_eq!(empty.transitions(), 0);
        assert_eq!(empty.last(), None);
        let one: PackedSeq = [true].into_iter().collect();
        assert_eq!(one.len(), 1);
        assert_eq!(one.transitions(), 0);
        assert_eq!(one.extract(0, 1), 1);
    }
}
