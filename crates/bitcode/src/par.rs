//! Deterministic scoped-thread fan-out used across the workspace.
//!
//! All parallelism in this repository goes through [`par_map`] /
//! [`par_map_range`]: workers pull indices from a shared atomic counter
//! (so heterogeneous item costs balance), collect `(index, result)` pairs
//! locally, and the caller-side merge places results **by index** — the
//! output is byte-identical to the serial map regardless of scheduling.
//! Determinism of every `results/*.txt` artifact therefore reduces to the
//! determinism of the per-item function itself.
//!
//! The worker count is `std::thread::available_parallelism`, overridable
//! with the `IMT_THREADS` environment variable (`IMT_THREADS=1` forces
//! serial execution, which the equivalence tests use as the reference).
//! Work smaller than `min_per_thread` items runs inline on the calling
//! thread: callers set that threshold so nested fan-outs (per-block over
//! per-lane) degenerate to serial instead of oversubscribing.
//!
//! Independently of that per-caller threshold, fan-outs below a global
//! work-size floor ([`fanout_floor`], default 16 items, `IMT_PAR_MIN`
//! override) run serially: thread spawn/join costs tens of microseconds,
//! so a handful of cheap items is slower parallel than serial (the
//! `mmul` pipeline regression in `BENCH_pipeline.json` PR 5). Callers
//! whose items are individually expensive — whole-kernel profiling runs,
//! milliseconds each — opt out with [`par_map_coarse`] /
//! [`par_map_range_coarse`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of worker threads fan-outs may use: the `IMT_THREADS`
/// environment variable if set (minimum 1), else the machine's available
/// parallelism.
///
/// The environment variable is re-read on every call so tests and
/// experiments can toggle it at runtime; the hardware count is cached —
/// `available_parallelism` re-reads cgroup quota files on Linux, which is
/// far too slow to pay once per fan-out.
pub fn thread_count() -> usize {
    if let Ok(value) = std::env::var("IMT_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            return n.max(1);
        }
    }
    static HARDWARE: OnceLock<usize> = OnceLock::new();
    *HARDWARE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The smallest fan-out worth spawning threads for: the `IMT_PAR_MIN`
/// environment variable if set, else 16 items. Re-read on every call so
/// experiments can sweep it at runtime.
pub fn fanout_floor() -> usize {
    if let Ok(value) = std::env::var("IMT_PAR_MIN") {
        if let Ok(n) = value.parse::<usize>() {
            return n;
        }
    }
    16
}

/// Maps `f` over `0..n`, in parallel when `n >= 2 * min_per_thread`, the
/// global [`fanout_floor`] is met, and more than one thread is available.
/// Results are returned in index order; the output is identical to
/// `(0..n).map(|i| f(i)).collect()`.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map_range<R, F>(n: usize, min_per_thread: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n < fanout_floor() {
        return (0..n).map(f).collect();
    }
    par_map_range_coarse(n, min_per_thread, f)
}

/// [`par_map_range`] without the [`fanout_floor`]: for items that are
/// individually expensive (milliseconds-scale), where even a two-item
/// fan-out pays for its threads.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map_range_coarse<R, F>(n: usize, min_per_thread: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = thread_count();
    let workers = threads.min(n / min_per_thread.max(1)).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    if imt_obs::enabled() {
        imt_obs::counter!("par.fanouts").inc();
        imt_obs::counter!("par.items").add(n as u64);
        imt_obs::gauge!("par.workers").set_max(workers as u64);
    }
    // Cross-thread trace hand-off: capture the spawning thread's innermost
    // span (None when tracing is off) so each worker's spans parent into
    // the caller's tree instead of becoming orphan roots.
    let parent = imt_obs::trace::propagate();
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _trace = imt_obs::trace::span_under("par.worker", parent);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    // Index-ordered merge: scheduling cannot affect the output order.
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "index {i} computed twice");
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

/// Maps `f` over a slice with the same guarantees as [`par_map_range`].
pub fn par_map<T, R, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range(items.len(), min_per_thread, |i| f(i, &items[i]))
}

/// Maps `f` over a slice of individually expensive items, bypassing the
/// [`fanout_floor`] like [`par_map_range_coarse`].
pub fn par_map_coarse<T, R, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range_coarse(items.len(), min_per_thread, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that mutate `IMT_THREADS`/`IMT_PAR_MIN`; the
    /// variables are process-global and unit tests run on parallel
    /// threads. (Other tests tolerate the mutation — every fan-out is
    /// output-deterministic at any worker count — but tests asserting
    /// *which thread* ran must not race each other.)
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_env<R>(key: &str, value: &str, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var(key, value);
        let result = f();
        std::env::remove_var(key);
        result
    }

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        // Force genuine fan-out with a tiny threshold.
        let parallel = par_map(&items, 1, |_, &x| x * x + 1);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn preserves_order_with_uneven_work() {
        let out = par_map_range(64, 1, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn small_inputs_run_inline() {
        // Below the threshold the calling thread does the work itself.
        let caller = std::thread::current().id();
        let out = par_map_range(3, 100, |i| (i, std::thread::current().id()));
        assert!(out.iter().all(|&(_, id)| id == caller));
    }

    #[test]
    fn below_the_floor_runs_inline_even_with_threads() {
        let caller = std::thread::current().id();
        let out = with_env("IMT_THREADS", "4", || {
            par_map_range(15, 1, |i| (i, std::thread::current().id()))
        });
        assert_eq!(out.len(), 15);
        assert!(out.iter().all(|&(_, id)| id == caller));
    }

    #[test]
    fn coarse_variant_fans_out_below_the_floor() {
        let caller = std::thread::current().id();
        let out = with_env("IMT_THREADS", "4", || {
            par_map_range_coarse(4, 1, |i| (i, std::thread::current().id()))
        });
        assert_eq!(
            out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(
            out.iter().all(|&(_, id)| id != caller),
            "workers own the items"
        );
    }

    #[test]
    fn par_min_override_raises_the_floor() {
        let caller = std::thread::current().id();
        let out = with_env("IMT_PAR_MIN", "1000", || {
            std::env::set_var("IMT_THREADS", "4");
            let out = par_map_range(64, 1, |i| (i, std::thread::current().id()));
            std::env::remove_var("IMT_THREADS");
            out
        });
        assert!(out.iter().all(|&(_, id)| id == caller));
        assert_eq!(fanout_floor(), 16);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map_range(0, 1, |_| unreachable!("no items"));
        assert!(out.is_empty());
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_map_range(32, 1, |i| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
