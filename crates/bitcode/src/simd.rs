//! Runtime-dispatched SIMD kernels for the bit-sliced codec.
//!
//! The bit-sliced encode path ([`crate::slice`]) spends its time in two
//! primitives: the 64×64 bit-matrix transpose that moves words between
//! time-major and lane-major layout, and masked XOR+popcount transition
//! counting over word streams. Both have scalar, SSE2 and AVX2
//! implementations here, selected **at runtime** with
//! `is_x86_feature_detected!` — the binary stays portable, the fast paths
//! light up on capable machines, and every path computes bit-identical
//! results (the equivalence proptests cross-check all of them).
//!
//! Dispatch rules:
//!
//! * [`detected_path`] — the best path this CPU supports, probed once.
//! * [`force_scalar`] — the `IMT_FORCE_SCALAR` environment override,
//!   re-read on every call (like `IMT_THREADS`) so tests and CI can flip
//!   it at runtime.
//! * [`active_path`] — what production call sites use: the detected path
//!   unless forced scalar.
//!
//! The kernel entry points clamp their `path` argument to the detected
//! capability, so passing `SimdPath::Avx2` on a non-AVX2 machine safely
//! degrades instead of executing illegal instructions.
//!
//! Transpose orientation: treating `a[r]` bit `c` (LSB-first) as matrix
//! element `(r, c)`, [`transpose64`] maps element `(r, c)` to `(c, r)` —
//! a butterfly network swapping bit `j` of the row index with bit `j` of
//! the column index at each of six levels (Hacker's Delight §7-3, stated
//! for the LSB-first convention used throughout this crate).

use std::sync::OnceLock;

/// A SIMD capability level, ordered from narrowest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdPath {
    /// Portable scalar code; the bit-identity oracle.
    Scalar,
    /// 128-bit SSE2 (baseline on x86_64).
    Sse2,
    /// 256-bit AVX2.
    Avx2,
}

impl SimdPath {
    /// All paths, narrowest first — test helpers iterate this.
    pub const ALL: [SimdPath; 3] = [SimdPath::Scalar, SimdPath::Sse2, SimdPath::Avx2];

    /// Stable lower-case name, used in benchmark JSON and log lines.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Sse2 => "sse2",
            SimdPath::Avx2 => "avx2",
        }
    }
}

/// The widest path this CPU supports, probed once per process.
pub fn detected_path() -> SimdPath {
    static DETECTED: OnceLock<SimdPath> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return SimdPath::Avx2;
            }
            if is_x86_feature_detected!("sse2") {
                return SimdPath::Sse2;
            }
        }
        SimdPath::Scalar
    })
}

/// Whether the CPU can execute `path` (scalar is always available).
pub fn available(path: SimdPath) -> bool {
    path <= detected_path()
}

/// Whether `IMT_FORCE_SCALAR` is set (non-empty, not `"0"`). Re-read on
/// every call so tests and experiments can toggle it at runtime.
pub fn force_scalar() -> bool {
    match std::env::var("IMT_FORCE_SCALAR") {
        Ok(value) => !(value.is_empty() || value == "0"),
        Err(_) => false,
    }
}

/// The path production call sites should use right now: the detected one,
/// unless `IMT_FORCE_SCALAR` demands the oracle.
pub fn active_path() -> SimdPath {
    if force_scalar() {
        SimdPath::Scalar
    } else {
        detected_path()
    }
}

/// Whether hardware popcount is available (independent of [`SimdPath`]:
/// POPCNT arrived with SSE4.2-era cores).
#[cfg(target_arch = "x86_64")]
fn has_popcnt() -> bool {
    static POPCNT: OnceLock<bool> = OnceLock::new();
    *POPCNT.get_or_init(|| is_x86_feature_detected!("popcnt"))
}

/// One butterfly level of the 64×64 transpose: for every row pair
/// `(k, k + j)` with bit `j` of `k` clear, swaps the sub-blocks selected
/// by column mask `m`.
#[inline]
fn butterfly_scalar(a: &mut [u64; 64], j: usize, m: u64) {
    let mut base = 0usize;
    while base < 64 {
        for k in base..base + j {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
        }
        base += 2 * j;
    }
}

/// Scalar 64×64 in-place bit transpose (the oracle the SIMD variants are
/// tested against).
pub fn transpose64_scalar(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        butterfly_scalar(a, j, m);
        j >>= 1;
        m ^= m << j;
    }
}

/// SSE2 transpose: levels `j >= 2` process row pairs two at a time (the
/// `j` rows of each butterfly half are contiguous, so 128-bit loads are
/// aligned with the pairing); the final level falls back to scalar.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn transpose64_sse2(a: &mut [u64; 64]) {
    use std::arch::x86_64::*;
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j >= 2 {
        let mv = _mm_set1_epi64x(m as i64);
        let cnt = _mm_cvtsi64_si128(j as i64);
        let mut base = 0usize;
        while base < 64 {
            let mut k = base;
            while k < base + j {
                let pa = a.as_mut_ptr().add(k).cast::<__m128i>();
                let pb = a.as_mut_ptr().add(k + j).cast::<__m128i>();
                let va = _mm_loadu_si128(pa);
                let vb = _mm_loadu_si128(pb);
                let t = _mm_and_si128(_mm_xor_si128(_mm_srl_epi64(va, cnt), vb), mv);
                _mm_storeu_si128(pa, _mm_xor_si128(va, _mm_sll_epi64(t, cnt)));
                _mm_storeu_si128(pb, _mm_xor_si128(vb, t));
                k += 2;
            }
            base += 2 * j;
        }
        j >>= 1;
        m ^= m << j;
    }
    butterfly_scalar(a, 1, m);
}

/// AVX2 transpose: levels `j >= 4` process row pairs four at a time; the
/// last two levels fall back to scalar.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose64_avx2(a: &mut [u64; 64]) {
    use std::arch::x86_64::*;
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j >= 4 {
        let mv = _mm256_set1_epi64x(m as i64);
        let cnt = _mm_cvtsi64_si128(j as i64);
        let mut base = 0usize;
        while base < 64 {
            let mut k = base;
            while k < base + j {
                let pa = a.as_mut_ptr().add(k).cast::<__m256i>();
                let pb = a.as_mut_ptr().add(k + j).cast::<__m256i>();
                let va = _mm256_loadu_si256(pa);
                let vb = _mm256_loadu_si256(pb);
                let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srl_epi64(va, cnt), vb), mv);
                _mm256_storeu_si256(pa, _mm256_xor_si256(va, _mm256_sll_epi64(t, cnt)));
                _mm256_storeu_si256(pb, _mm256_xor_si256(vb, t));
                k += 4;
            }
            base += 2 * j;
        }
        j >>= 1;
        m ^= m << j;
    }
    butterfly_scalar(a, 2, m);
    m ^= m << 1;
    butterfly_scalar(a, 1, m);
}

/// In-place 64×64 bit-matrix transpose: afterwards bit `t` of `a[l]` is
/// what bit `l` of `a[t]` was. Involutory — applying it twice restores
/// the input. `path` is clamped to the CPU's detected capability.
pub fn transpose64(path: SimdPath, a: &mut [u64; 64]) {
    match path.min(detected_path()) {
        SimdPath::Scalar => transpose64_scalar(a),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdPath::Sse2 => unsafe { transpose64_sse2(a) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdPath::Avx2 => unsafe { transpose64_avx2(a) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => transpose64_scalar(a),
    }
}

fn word_transitions_scalar(words: &[u64], mask: u64) -> u64 {
    words
        .windows(2)
        .map(|p| ((p[0] ^ p[1]) & mask).count_ones() as u64)
        .sum()
}

/// Same loop, compiled with hardware POPCNT (the baseline x86_64 target
/// lowers `count_ones` to a bit-twiddling sequence otherwise).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn word_transitions_popcnt(words: &[u64], mask: u64) -> u64 {
    word_transitions_scalar(words, mask)
}

/// AVX2 transition counter: four word pairs per iteration, popcounted
/// with the classic nibble shuffle LUT and accumulated via `psadbw`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn word_transitions_avx2(words: &[u64], mask: u64) -> u64 {
    use std::arch::x86_64::*;
    let n = words.len();
    if n < 2 {
        return 0;
    }
    let pairs = n - 1;
    let mv = _mm256_set1_epi64x(mask as i64);
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_nibbles = _mm256_set1_epi8(0x0F);
    let zero = _mm256_setzero_si256();
    let mut acc = zero;
    let mut i = 0usize;
    while i + 4 <= pairs {
        let a = _mm256_loadu_si256(words.as_ptr().add(i).cast::<__m256i>());
        let b = _mm256_loadu_si256(words.as_ptr().add(i + 1).cast::<__m256i>());
        let x = _mm256_and_si256(_mm256_xor_si256(a, b), mv);
        let lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low_nibbles));
        let hi = _mm256_shuffle_epi8(
            lut,
            _mm256_and_si256(_mm256_srli_epi64::<4>(x), low_nibbles),
        );
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), zero));
        i += 4;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
    let mut total: u64 = lanes.iter().sum();
    while i < pairs {
        total += ((words[i] ^ words[i + 1]) & mask).count_ones() as u64;
        i += 1;
    }
    total
}

/// Transitions of a word sequence over the lanes selected by `mask` —
/// bit-identical to [`crate::lanes::word_transitions`], dispatched over
/// `path` (clamped to the CPU's detected capability).
pub fn word_transitions(path: SimdPath, words: &[u64], mask: u64) -> u64 {
    match path.min(detected_path()) {
        SimdPath::Scalar => word_transitions_scalar(words, mask),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Sse2 => {
            if has_popcnt() {
                // SAFETY: has_popcnt() checked the feature.
                unsafe { word_transitions_popcnt(words, mask) }
            } else {
                word_transitions_scalar(words, mask)
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdPath::Avx2 => unsafe { word_transitions_avx2(words, mask) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => word_transitions_scalar(words, mask),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_matrix(seed: u64) -> [u64; 64] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = [0u64; 64];
        for row in m.iter_mut() {
            *row = rng.gen::<u64>();
        }
        m
    }

    fn naive_transpose(a: &[u64; 64]) -> [u64; 64] {
        let mut out = [0u64; 64];
        for (r, &row) in a.iter().enumerate() {
            for (c, out_row) in out.iter_mut().enumerate() {
                *out_row |= (row >> c & 1) << r;
            }
        }
        out
    }

    #[test]
    fn scalar_transpose_matches_naive() {
        for seed in 0..8u64 {
            let original = random_matrix(seed);
            let mut a = original;
            transpose64_scalar(&mut a);
            assert_eq!(a, naive_transpose(&original), "seed {seed}");
            transpose64_scalar(&mut a);
            assert_eq!(a, original, "involution, seed {seed}");
        }
    }

    #[test]
    fn every_available_path_transposes_identically() {
        for path in SimdPath::ALL {
            if !available(path) {
                continue;
            }
            for seed in 0..8u64 {
                let original = random_matrix(100 + seed);
                let mut a = original;
                transpose64(path, &mut a);
                assert_eq!(a, naive_transpose(&original), "{} seed {seed}", path.name());
                transpose64(path, &mut a);
                assert_eq!(a, original, "{} involution seed {seed}", path.name());
            }
        }
    }

    #[test]
    fn transpose_handles_identity_and_diagonal() {
        // The identity pattern row r = 1 << r is its own transpose.
        let mut diag = [0u64; 64];
        for (r, row) in diag.iter_mut().enumerate() {
            *row = 1u64 << r;
        }
        for path in SimdPath::ALL.into_iter().filter(|&p| available(p)) {
            let mut a = diag;
            transpose64(path, &mut a);
            assert_eq!(a, diag, "{}", path.name());
        }
    }

    #[test]
    fn word_transitions_paths_agree_with_lanes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 200] {
            let words: Vec<u64> = (0..len).map(|_| rng.gen::<u64>()).collect();
            for mask in [u64::MAX, 0xFFFF_FFFF, 0b1, 0] {
                let expected = crate::lanes::word_transitions(&words, mask);
                for path in SimdPath::ALL.into_iter().filter(|&p| available(p)) {
                    assert_eq!(
                        word_transitions(path, &words, mask),
                        expected,
                        "{} len {len} mask {mask:#x}",
                        path.name()
                    );
                }
            }
        }
    }

    #[test]
    fn unavailable_paths_clamp_instead_of_faulting() {
        // Even if the CPU lacks AVX2, requesting it must degrade safely.
        let mut a = random_matrix(7);
        let reference = naive_transpose(&a);
        transpose64(SimdPath::Avx2, &mut a);
        assert_eq!(a, reference);
        assert_eq!(word_transitions(SimdPath::Avx2, &[0b01, 0b10], u64::MAX), 2);
    }

    #[test]
    fn force_scalar_overrides_detection() {
        // Safe against the parallel test threads in this binary: every
        // dispatch consumer produces bit-identical output either way.
        std::env::set_var("IMT_FORCE_SCALAR", "1");
        assert_eq!(active_path(), SimdPath::Scalar);
        std::env::set_var("IMT_FORCE_SCALAR", "0");
        assert_eq!(active_path(), detected_path());
        std::env::remove_var("IMT_FORCE_SCALAR");
        assert_eq!(active_path(), detected_path());
    }
}
