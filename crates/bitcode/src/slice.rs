//! Bit-sliced 64-lane codec: all bus lines encoded in one streaming pass.
//!
//! [`crate::lanes::encode_words`] materializes one [`PackedSeq`] per lane
//! and encodes lanes one at a time — O(lanes × words) passes over the
//! text. This module transposes the problem instead: a **tile** of up to
//! 64 consecutive machine words is flipped with one 64×64 bit transpose
//! ([`crate::simd::transpose64`]) so each lane's next 64 bits land in a
//! single machine word, and the chained greedy encoder then advances *all*
//! lanes through the tile block by block — every block extraction is a
//! shift/mask on a lane row, every score a memoized codebook lookup, and
//! per-lane transition counting is one XOR+popcount per row.
//!
//! The pass is cache-blocked and streaming: per tile it touches the 64
//! input words, a 64-row register-resident transpose, and a bounded
//! per-lane carry (`pending` bits smaller than one block, an output
//! accumulator smaller than 192 bits) — multi-million-word programs never
//! materialize per-lane `Vec<bool>`s, and stored output words are emitted
//! in 64-word column chunks as they complete. Because a stored stream has
//! exactly as many bits as its original, all 64 lanes stay in lock-step
//! and the output tile boundary is shared.
//!
//! Bit-identity: [`encode_words_sliced`] produces exactly the encoding of
//! [`crate::lanes::encode_words`] — same stored words, same per-block
//! transform schedule, same transition accounting — which the equivalence
//! proptests pin across every SIMD path. The per-lane path remains the
//! oracle and serves as the fallback for configurations the streaming
//! formulation does not cover ([`ChainStrategy::Optimal`], block sizes
//! beyond [`CODEBOOK_MAX_LEN`]) and under `IMT_FORCE_SCALAR`.
//!
//! The layout is deliberately codec-agnostic: [`BitMatrix`] and the tile
//! walk know nothing about TT/BBIT specifics, so alternative low-weight
//! bus codes (memoryless codebooks, fixed-weight codes) can ride the same
//! substrate later.

use crate::block::BlockContext;
use crate::codebook::{codebook_for, CODEBOOK_MAX_LEN};
use crate::lanes::{encode_words, width_mask, LaneEncoding};
use crate::packed::PackedSeq;
use crate::simd::{self, SimdPath};
use crate::stream::{BlockDescriptor, ChainStrategy, EncodedStream, StreamCodec};
use crate::transform::Transform;
use crate::CodecError;

/// A word sequence transposed to lane-major order: row `l` packs bit `l`
/// of every word, 64 time steps per storage word.
///
/// Built with 64×64 tile transposes, so construction is O(words) rather
/// than the O(lanes × words) of calling [`PackedSeq::from_lane`] per lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<u64>,
    lanes: usize,
    len: usize,
    words_per_lane: usize,
}

impl BitMatrix {
    /// Transposes `words` into lane-major rows for the low `lanes` bits.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=64`.
    pub fn from_words(words: &[u64], lanes: usize, path: SimdPath) -> BitMatrix {
        assert!((1..=64).contains(&lanes), "lanes {lanes} outside 1..=64");
        let words_per_lane = words.len().div_ceil(64);
        let mut rows = vec![0u64; lanes * words_per_lane];
        let mut tile = [0u64; 64];
        for (tile_index, chunk) in words.chunks(64).enumerate() {
            tile[..chunk.len()].copy_from_slice(chunk);
            tile[chunk.len()..].fill(0);
            simd::transpose64(path, &mut tile);
            for (lane, &row) in tile.iter().take(lanes).enumerate() {
                rows[lane * words_per_lane + tile_index] = row;
            }
        }
        BitMatrix {
            rows,
            lanes,
            len: words.len(),
            words_per_lane,
        }
    }

    /// Number of lanes (rows).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bits per lane (the original word count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix holds no words.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lane `l` as packed storage words; bits at positions `>= len()` are
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_row(&self, lane: usize) -> &[u64] {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        &self.rows[lane * self.words_per_lane..][..self.words_per_lane]
    }

    /// Lane `l` as a [`PackedSeq`] (copies one row).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn lane_packed(&self, lane: usize) -> PackedSeq {
        PackedSeq::from_words(self.lane_row(lane).to_vec(), self.len)
    }

    /// Transposes back to time-major machine words.
    pub fn to_words(&self, path: SimdPath) -> Vec<u64> {
        let mut out = vec![0u64; self.len];
        let mut tile = [0u64; 64];
        for tile_index in 0..self.words_per_lane {
            tile.fill(0);
            for (lane, slot) in tile.iter_mut().take(self.lanes).enumerate() {
                *slot = self.rows[lane * self.words_per_lane + tile_index];
            }
            simd::transpose64(path, &mut tile);
            let start = tile_index * 64;
            let take = (self.len - start).min(64);
            out[start..start + take].copy_from_slice(&tile[..take]);
        }
        out
    }
}

/// A word sequence encoded by the bit-sliced streaming pass.
///
/// Holds the same information as [`LaneEncoding`] in sliced form: the
/// stored words, one shared block-length schedule (block boundaries are
/// lane-independent), and the per-block transform choice in block-major
/// order (`transforms[block * width + lane]` — the order a Transformation
/// Table would be filled in hardware).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicedEncoding {
    words: Vec<u64>,
    width: usize,
    lens: Vec<usize>,
    transforms: Vec<Transform>,
    lane_original_transitions: Vec<u64>,
}

impl SlicedEncoding {
    /// The encoded words, as they would be stored in instruction memory.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of chained blocks per lane (Transformation Table depth).
    pub fn block_count(&self) -> usize {
        self.lens.len()
    }

    /// Stored bits contributed by block `b` (shared by every lane).
    ///
    /// # Panics
    ///
    /// Panics if `b >= block_count()`.
    pub fn block_len(&self, b: usize) -> usize {
        self.lens[b]
    }

    /// The transform lane `lane` applies over block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= block_count()` or `lane >= width()`.
    pub fn transform(&self, b: usize, lane: usize) -> Transform {
        assert!(lane < self.width, "lane {lane} out of {}", self.width);
        self.transforms[b * self.width + lane]
    }

    /// Total transitions of the encoded words across all lanes.
    pub fn transitions(&self) -> u64 {
        simd::word_transitions(simd::active_path(), &self.words, width_mask(self.width))
    }

    /// Total transitions of the original words across all lanes.
    pub fn original_transitions(&self) -> u64 {
        self.lane_original_transitions.iter().sum()
    }

    /// Original transitions on each lane.
    pub fn per_lane_original_transitions(&self) -> &[u64] {
        &self.lane_original_transitions
    }

    /// Percentage of transitions eliminated across the whole bus.
    pub fn reduction_percent(&self) -> f64 {
        let orig = self.original_transitions();
        if orig == 0 {
            return 0.0;
        }
        (orig - self.transitions()) as f64 / orig as f64 * 100.0
    }

    /// Reconstructs lane `lane`'s [`EncodedStream`] (stored bits plus
    /// schedule) — the boundary type the decoder and hardware model use.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= width()`.
    pub fn lane_stream(&self, lane: usize) -> EncodedStream {
        assert!(lane < self.width, "lane {lane} out of {}", self.width);
        let stored = PackedSeq::from_lane(&self.words, lane);
        let blocks = self
            .lens
            .iter()
            .enumerate()
            .map(|(b, &len)| BlockDescriptor {
                transform: self.transforms[b * self.width + lane],
                len,
            })
            .collect();
        EncodedStream::from_parts(
            stored.to_bitseq(),
            blocks,
            self.lane_original_transitions[lane],
        )
    }

    /// Decodes back to the original words.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::MalformedBlocks`] if the schedule is
    /// inconsistent (cannot happen for encodings produced by
    /// [`encode_words_sliced`] with the same codec).
    pub fn decode(&self, codec: &StreamCodec) -> Result<Vec<u64>, CodecError> {
        let mut out = vec![0u64; self.words.len()];
        for lane in 0..self.width {
            let decoded = codec.decode(&self.lane_stream(lane))?;
            for (i, bit) in decoded.iter().enumerate() {
                out[i] |= (bit as u64) << lane;
            }
        }
        Ok(out)
    }

    /// Converts a per-lane [`LaneEncoding`] (the oracle path) into sliced
    /// form. Block boundaries are lane-independent by construction, so the
    /// lanes' schedules always agree on lengths.
    pub fn from_lanes(encoding: &LaneEncoding) -> SlicedEncoding {
        let width = encoding.width();
        let lanes = encoding.lanes();
        let lens: Vec<usize> = lanes
            .first()
            .map(|l| l.blocks().iter().map(|b| b.len).collect())
            .unwrap_or_default();
        let mut transforms = Vec::with_capacity(lens.len() * width);
        for (b, &len) in lens.iter().enumerate() {
            for lane in lanes {
                debug_assert_eq!(lane.blocks()[b].len, len, "lanes disagree on layout");
                transforms.push(lane.blocks()[b].transform);
            }
        }
        SlicedEncoding {
            words: encoding.words().to_vec(),
            width,
            lens,
            transforms,
            lane_original_transitions: lanes.iter().map(|l| l.original_transitions()).collect(),
        }
    }
}

/// Encodes a word sequence with the bit-sliced streaming pass, using the
/// best SIMD path the CPU offers ([`simd::active_path`]).
///
/// Bit-identical to [`encode_words`]; falls back to that per-lane oracle
/// under `IMT_FORCE_SCALAR`, for [`ChainStrategy::Optimal`], and for
/// block sizes beyond [`CODEBOOK_MAX_LEN`].
///
/// # Errors
///
/// Returns [`CodecError::LaneWidth`] if `width` is outside `1..=64`.
///
/// ```
/// use imt_bitcode::slice::encode_words_sliced;
/// use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
///
/// # fn main() -> Result<(), imt_bitcode::CodecError> {
/// let codec = StreamCodec::new(StreamCodecConfig::block_size(5)?);
/// let words = vec![0xDEAD_BEEF, 0x0000_0000, 0xDEAD_BEEF, 0xFFFF_FFFF];
/// let encoded = encode_words_sliced(&words, 32, &codec)?;
/// assert!(encoded.transitions() <= encoded.original_transitions());
/// assert_eq!(encoded.decode(&codec)?, words);
/// # Ok(())
/// # }
/// ```
pub fn encode_words_sliced(
    words: &[u64],
    width: usize,
    codec: &StreamCodec,
) -> Result<SlicedEncoding, CodecError> {
    if !(1..=64).contains(&width) {
        return Err(CodecError::LaneWidth { requested: width });
    }
    if simd::force_scalar() {
        return Ok(SlicedEncoding::from_lanes(&encode_words(
            words, width, codec,
        )?));
    }
    encode_words_sliced_with(words, width, codec, simd::detected_path())
}

/// [`encode_words_sliced`] with an explicit SIMD path — the entry point
/// the equivalence tests use to pin every path deterministically,
/// independent of the environment. `path` is clamped to the CPU's
/// capability by the kernels themselves.
///
/// # Errors
///
/// Returns [`CodecError::LaneWidth`] if `width` is outside `1..=64`.
pub fn encode_words_sliced_with(
    words: &[u64],
    width: usize,
    codec: &StreamCodec,
    path: SimdPath,
) -> Result<SlicedEncoding, CodecError> {
    if !(1..=64).contains(&width) {
        return Err(CodecError::LaneWidth { requested: width });
    }
    let config = codec.config();
    if config.strategy() != ChainStrategy::Greedy || config.block_len() > CODEBOOK_MAX_LEN {
        // No streaming formulation: the exact DP needs whole-lane
        // lookahead, and oversized blocks have no codebook.
        return Ok(SlicedEncoding::from_lanes(&encode_words(
            words, width, codec,
        )?));
    }
    Ok(encode_streamed(words, width, codec, path))
}

/// Reads `count` bits of `row` starting at `start` (LSB-first).
#[inline]
fn extract_bits(row: u64, start: usize, count: usize) -> u64 {
    if count == 0 {
        0
    } else {
        (row >> start) & (u64::MAX >> (64 - count))
    }
}

/// Appends the low `count` bits of `value` at bit position `at` of a
/// 192-bit accumulator. Positions stay below 192 because the accumulator
/// is drained below 64 bits after every tile and one tile adds at most
/// 72 bits.
#[inline]
fn acc_push(acc: &mut [u64; 3], at: usize, value: u64, count: usize) {
    debug_assert!(count == 64 || value >> count == 0, "stray bits above count");
    let word = at / 64;
    let offset = at % 64;
    acc[word] |= value << offset;
    if offset + count > 64 {
        acc[word + 1] |= value >> (64 - offset);
    }
}

/// Pops the lowest 64 bits of every lane accumulator into an output tile,
/// transposes it back to time-major order and appends `take` words.
fn emit_tile(
    path: SimdPath,
    acc: &mut [[u64; 3]; 64],
    width: usize,
    take: usize,
    out: &mut Vec<u64>,
) {
    let mut tile = [0u64; 64];
    for (slot, lane_acc) in tile.iter_mut().zip(acc.iter_mut().take(width)) {
        *slot = lane_acc[0];
        lane_acc[0] = lane_acc[1];
        lane_acc[1] = lane_acc[2];
        lane_acc[2] = 0;
    }
    simd::transpose64(path, &mut tile);
    out.extend_from_slice(&tile[..take]);
}

/// The streaming tile encoder. Preconditions (checked by the dispatchers):
/// greedy strategy, `2 <= k <= CODEBOOK_MAX_LEN`, `1 <= width <= 64`.
fn encode_streamed(
    words: &[u64],
    width: usize,
    codec: &StreamCodec,
    path: SimdPath,
) -> SlicedEncoding {
    let _span = imt_obs::span!("bitcode.slice.encode");
    let config = codec.config();
    let k = config.block_len();
    let allowed = config.transforms();
    let overlap = config.overlap();
    let n = words.len();
    let mid_len = k - 1;
    let first_book = codebook_for(k, allowed);
    let mid_book = codebook_for(mid_len, allowed);

    let estimated_blocks = if n == 0 { 0 } else { 2 + n / mid_len };
    let mut out_words: Vec<u64> = Vec::with_capacity(n);
    let mut lens: Vec<usize> = Vec::with_capacity(estimated_blocks);
    let mut transforms: Vec<Transform> = Vec::with_capacity(estimated_blocks * width);

    // Per-lane carry state between tiles. `pending` holds the bits of a
    // block begun but not yet completable (always fewer than the next
    // block's length, so at most 8 bits); the counts tracking it are
    // shared because block layout is lane-independent.
    let mut pending = [0u64; 64];
    let mut prev_stored = [false; 64];
    let mut prev_original = [false; 64];
    let mut tail = [false; 64];
    let mut acc = [[0u64; 3]; 64];
    let mut lane_transitions = [0u64; 64];
    let mut pending_len = 0usize;
    let mut out_len = 0usize;
    let mut first_done = false;

    let mut tile = [0u64; 64];
    let mut base = 0usize;
    while base < n {
        let tb = (n - base).min(64);
        tile[..tb].copy_from_slice(&words[base..base + tb]);
        tile[tb..].fill(0);
        simd::transpose64(path, &mut tile);

        // Shared consumption plan: the first block takes k bits, every
        // later block k-1; encode as many as the carried-over bits plus
        // this tile allow, leaving the remainder pending.
        let avail = pending_len + tb;
        let first_here = !first_done && avail >= k;
        let mut consumed = if first_here { k } else { 0 };
        let mids = if first_done || first_here {
            (avail - consumed) / mid_len
        } else {
            0
        };
        consumed += mids * mid_len;
        let blocks_here = usize::from(first_here) + mids;
        let block_base = lens.len();
        if first_here {
            lens.push(k);
        }
        lens.extend(std::iter::repeat_n(mid_len, mids));
        transforms.resize(transforms.len() + blocks_here * width, Transform::IDENTITY);

        for (lane, &row) in tile.iter().take(width).enumerate() {
            // Transition accounting: one XOR+popcount for the row's
            // internal pairs plus the seam to the previous tile.
            if base > 0 {
                lane_transitions[lane] += u64::from(tail[lane] != (row & 1 == 1));
            }
            if tb >= 2 {
                let internal = if tb == 64 {
                    u64::MAX >> 1
                } else {
                    (1u64 << (tb - 1)) - 1
                };
                lane_transitions[lane] += ((row ^ (row >> 1)) & internal).count_ones() as u64;
            }
            tail[lane] = row >> (tb - 1) & 1 == 1;

            if blocks_here == 0 {
                // avail < k <= 9: the whole row fits in the pending word.
                pending[lane] |= row << pending_len;
                continue;
            }

            let mut cursor = 0usize;
            let mut carry = pending[lane];
            let mut carry_len = pending_len;
            let mut at = out_len;
            for (b, &len) in lens[block_base..block_base + blocks_here]
                .iter()
                .enumerate()
            {
                let take = len - carry_len;
                let word = (carry | (extract_bits(row, cursor, take) << carry_len)) as u16;
                cursor += take;
                carry = 0;
                carry_len = 0;
                let context = if first_here && b == 0 {
                    BlockContext::Initial
                } else {
                    BlockContext::Chained {
                        prev_stored: prev_stored[lane],
                        prev_original: prev_original[lane],
                        history: overlap,
                    }
                };
                let book = if len == mid_len { mid_book } else { first_book };
                let entry = book
                    .entry(word, context, None)
                    .expect("unconstrained encoding always has the identity fallback");
                acc_push(&mut acc[lane], at, u64::from(entry.code_bits), len);
                at += len;
                prev_original[lane] = word >> (len - 1) & 1 == 1;
                prev_stored[lane] = entry.code_bits >> (len - 1) & 1 == 1;
                transforms[(block_base + b) * width + lane] = entry.transform;
            }
            pending[lane] = extract_bits(row, cursor, tb - cursor);
        }

        if first_here {
            first_done = true;
        }
        pending_len = avail - consumed;
        out_len += consumed;
        base += tb;

        // Emit every completed 64-bit column of stored bits.
        while out_len >= 64 {
            emit_tile(path, &mut acc, width, 64, &mut out_words);
            out_len -= 64;
        }
    }

    // Tail: the pending bits are shorter than the next block's need, so
    // they form exactly one final short block.
    if pending_len > 0 {
        let len = pending_len;
        let block_base = lens.len();
        lens.push(len);
        transforms.resize(transforms.len() + width, Transform::IDENTITY);
        let book = if len == mid_len {
            mid_book
        } else {
            codebook_for(len, allowed)
        };
        for lane in 0..width {
            let word = pending[lane] as u16;
            let context = if first_done {
                BlockContext::Chained {
                    prev_stored: prev_stored[lane],
                    prev_original: prev_original[lane],
                    history: overlap,
                }
            } else {
                BlockContext::Initial
            };
            let entry = book
                .entry(word, context, None)
                .expect("unconstrained encoding always has the identity fallback");
            acc_push(&mut acc[lane], out_len, u64::from(entry.code_bits), len);
            transforms[block_base * width + lane] = entry.transform;
        }
        out_len += len;
    }
    while out_len > 0 {
        let take = out_len.min(64);
        emit_tile(path, &mut acc, width, take, &mut out_words);
        out_len -= take;
    }
    debug_assert_eq!(out_words.len(), n, "stored length equals original length");

    if imt_obs::enabled() {
        imt_obs::counter!("bitcode.slice.encodes").inc();
        imt_obs::counter!("bitcode.slice.bits").add((n * width) as u64);
        imt_obs::counter!("bitcode.slice.blocks").add((lens.len() * width) as u64);
        imt_obs::counter!("bitcode.slice.tiles").add(n.div_ceil(64) as u64);
        // Which kernel actually ran, so forced-scalar CI runs and trace
        // exports are distinguishable without grepping BENCH JSON.
        imt_obs::counter_labeled("bitcode.simd.path", path.name()).inc();
    }
    SlicedEncoding {
        words: out_words,
        width,
        lens,
        transforms,
        lane_original_transitions: lane_transitions[..width].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::decode_words;
    use crate::stream::StreamCodecConfig;
    use rand::{Rng, SeedableRng};

    fn codec(k: usize) -> StreamCodec {
        StreamCodec::new(StreamCodecConfig::block_size(k).unwrap())
    }

    fn random_words(seed: u64, len: usize, width: usize) -> Vec<u64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = width_mask(width);
        (0..len).map(|_| rng.gen::<u64>() & mask).collect()
    }

    fn available_paths() -> impl Iterator<Item = SimdPath> {
        SimdPath::ALL.into_iter().filter(|&p| simd::available(p))
    }

    #[test]
    fn bitmatrix_rows_match_from_lane() {
        let words = random_words(1, 300, 64);
        for path in available_paths() {
            let matrix = BitMatrix::from_words(&words, 64, path);
            for lane in [0usize, 1, 13, 63] {
                assert_eq!(
                    matrix.lane_packed(lane),
                    PackedSeq::from_lane(&words, lane),
                    "{} lane {lane}",
                    path.name()
                );
            }
            assert_eq!(matrix.to_words(path), words, "{}", path.name());
        }
    }

    #[test]
    fn bitmatrix_masks_lanes_beyond_width() {
        // Lanes >= the requested count are dropped; to_words zero-fills.
        let words = vec![u64::MAX; 70];
        let matrix = BitMatrix::from_words(&words, 8, SimdPath::Scalar);
        assert_eq!(matrix.lanes(), 8);
        assert_eq!(matrix.to_words(SimdPath::Scalar), vec![0xFFu64; 70]);
    }

    #[test]
    fn streamed_matches_per_lane_oracle() {
        for &(seed, len, width, k) in &[
            (2u64, 0usize, 32usize, 5usize),
            (3, 1, 32, 5),
            (4, 3, 32, 5),  // shorter than one block
            (5, 4, 32, 5),  // exactly the first block
            (6, 5, 32, 4),  // first block + one chained bit... 4+1
            (7, 63, 32, 5), // partial tile
            (8, 64, 32, 5), // exactly one tile
            (9, 65, 32, 5), // tile + 1
            (10, 200, 32, 2),
            (11, 200, 32, 9),
            (12, 333, 1, 5),
            (13, 333, 64, 7),
            (14, 507, 17, 6),
        ] {
            let words = random_words(seed, len, width);
            let c = codec(k);
            let oracle = SlicedEncoding::from_lanes(&encode_words(&words, width, &c).unwrap());
            for path in available_paths() {
                let sliced = encode_words_sliced_with(&words, width, &c, path).unwrap();
                assert_eq!(
                    sliced,
                    oracle,
                    "{} len={len} width={width} k={k}",
                    path.name()
                );
                assert_eq!(sliced.decode(&c).unwrap(), words);
            }
        }
    }

    #[test]
    fn lane_streams_match_the_oracle_streams() {
        let words = random_words(20, 150, 32);
        let c = codec(5);
        let oracle = encode_words(&words, 32, &c).unwrap();
        let sliced = encode_words_sliced_with(&words, 32, &c, SimdPath::Scalar).unwrap();
        for lane in 0..32 {
            assert_eq!(
                sliced.lane_stream(lane),
                oracle.lanes()[lane],
                "lane {lane}"
            );
        }
        // And the sliced encoding round-trips through the per-lane decoder.
        assert_eq!(decode_words(&oracle, &c).unwrap(), words);
    }

    #[test]
    fn transition_accounting_matches_lanes() {
        let words = random_words(21, 400, 32);
        let c = codec(5);
        let sliced = encode_words_sliced_with(&words, 32, &c, SimdPath::Scalar).unwrap();
        assert_eq!(
            sliced.per_lane_original_transitions(),
            &crate::lanes::per_lane_transitions(&words, 32)[..]
        );
        assert_eq!(
            sliced.original_transitions(),
            crate::lanes::total_transitions(&words, 32)
        );
        assert_eq!(
            sliced.transitions(),
            crate::lanes::total_transitions(sliced.words(), 32)
        );
    }

    #[test]
    fn optimal_strategy_falls_back_to_the_oracle() {
        let words = random_words(22, 40, 8);
        let config = StreamCodecConfig::block_size(4)
            .unwrap()
            .with_strategy(ChainStrategy::Optimal);
        let c = StreamCodec::new(config);
        let sliced = encode_words_sliced(&words, 8, &c).unwrap();
        let oracle = SlicedEncoding::from_lanes(&encode_words(&words, 8, &c).unwrap());
        assert_eq!(sliced, oracle);
        assert_eq!(sliced.decode(&c).unwrap(), words);
    }

    #[test]
    fn rejects_bad_width() {
        let c = codec(5);
        assert!(matches!(
            encode_words_sliced(&[0], 0, &c),
            Err(CodecError::LaneWidth { requested: 0 })
        ));
        assert!(matches!(
            encode_words_sliced_with(&[0], 65, &c, SimdPath::Scalar),
            Err(CodecError::LaneWidth { requested: 65 })
        ));
    }

    #[test]
    fn reduction_reported_like_the_oracle() {
        let body: Vec<u64> = (0..160)
            .map(|i| if i % 2 == 0 { 0xAAAA_5555 } else { 0x5555_AAAA })
            .collect();
        let c = codec(5);
        let sliced = encode_words_sliced_with(&body, 32, &c, SimdPath::Scalar).unwrap();
        let oracle = encode_words(&body, 32, &c).unwrap();
        assert_eq!(sliced.reduction_percent(), oracle.reduction_percent());
        assert!(sliced.reduction_percent() > 80.0);
    }
}
