//! Encoding of arbitrarily long bit sequences by chaining blocks (§6).
//!
//! A bit line's sequence is split into blocks of a fixed size `k` that
//! overlap by exactly one bit: the first block covers `k` bits, every later
//! block adds `k - 1` new bits and re-uses the previous block's final bit as
//! its seed. The overlap solves the problem of transitions *between* blocks
//! — with disjoint blocks the boundary transition would be uncontrolled.
//!
//! Because the stored value of the overlap bit is fixed by the previous
//! block, each block's feasible code words depend on its predecessor; the
//! paper notes this dooms provably optimal greedy encoding but finds the
//! iterative (greedy per-block) approach optimal in practice. This module
//! implements that iterative encoder, and measures it (the §6 experiment:
//! random 1000-bit streams at `k = 5` reduce within 1 % of the theoretical
//! 50 %).

use crate::bits::BitSeq;
pub use crate::block::OverlapHistory;
use crate::block::{
    decode_block, encode_block_constrained, encode_block_exhaustive, BlockContext, BlockEncoding,
    MAX_BLOCK_SIZE,
};
use crate::codebook::{codebook_for, CODEBOOK_MAX_LEN};
use crate::packed::PackedSeq;
use crate::transform::{Transform, TransformSet};
use crate::CodecError;

/// How the per-block choices are made along the chain of overlapping
/// blocks (§6).
///
/// The paper observes that "the mutual dependence of the transformations
/// dooms the chances of simple iterative algorithms, such as greedy,
/// delivering provably optimal solutions", then uses the iterative
/// approach anyway because it measures near-optimal. Both are provided:
///
/// * [`ChainStrategy::Greedy`] — each block is optimal given its
///   predecessor's choice (the paper's algorithm, and the default);
/// * [`ChainStrategy::Optimal`] — an exact dynamic program over the only
///   interface between consecutive blocks, the stored value of the shared
///   overlap bit (two states), yielding the provably minimal stored
///   transition count for the fixed block partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ChainStrategy {
    /// Per-block greedy, as in the paper.
    #[default]
    Greedy,
    /// Exact two-state dynamic program.
    Optimal,
}

/// Configuration of a [`StreamCodec`]: block size, allowed transformations
/// and overlap-history semantics.
///
/// ```
/// use imt_bitcode::stream::{OverlapHistory, StreamCodecConfig};
/// use imt_bitcode::TransformSet;
///
/// # fn main() -> Result<(), imt_bitcode::CodecError> {
/// let config = StreamCodecConfig::block_size(5)?
///     .with_transforms(TransformSet::ALL_SIXTEEN)?
///     .with_overlap(OverlapHistory::Decoded);
/// assert_eq!(config.block_len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCodecConfig {
    block_size: usize,
    allowed: TransformSet,
    overlap: OverlapHistory,
    strategy: ChainStrategy,
}

impl StreamCodecConfig {
    /// Creates a configuration with the given block size, the paper's
    /// canonical eight transformations, and the paper-literal stored-bit
    /// overlap history.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BlockSize`] if `block_size` is outside
    /// `2..=MAX_BLOCK_SIZE`.
    pub fn block_size(block_size: usize) -> Result<Self, CodecError> {
        if !(2..=MAX_BLOCK_SIZE).contains(&block_size) {
            return Err(CodecError::BlockSize {
                requested: block_size,
            });
        }
        Ok(StreamCodecConfig {
            block_size,
            allowed: TransformSet::CANONICAL_EIGHT,
            overlap: OverlapHistory::Stored,
            strategy: ChainStrategy::Greedy,
        })
    }

    /// Replaces the allowed transformation set.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TransformSet`] if `allowed` does not contain
    /// [`Transform::IDENTITY`] — the encoder's feasibility fallback.
    pub fn with_transforms(mut self, allowed: TransformSet) -> Result<Self, CodecError> {
        if !allowed.contains(Transform::IDENTITY) {
            return Err(CodecError::TransformSet {
                mask: allowed.mask(),
            });
        }
        self.allowed = allowed;
        Ok(self)
    }

    /// Replaces the overlap-history semantics.
    #[must_use]
    pub fn with_overlap(mut self, overlap: OverlapHistory) -> Self {
        self.overlap = overlap;
        self
    }

    /// Replaces the chain strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: ChainStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The chain strategy.
    pub fn strategy(self) -> ChainStrategy {
        self.strategy
    }

    /// The block size `k`.
    pub fn block_len(self) -> usize {
        self.block_size
    }

    /// The allowed transformation set.
    pub fn transforms(self) -> TransformSet {
        self.allowed
    }

    /// The overlap-history semantics.
    pub fn overlap(self) -> OverlapHistory {
        self.overlap
    }
}

/// One block's share of an encoded stream.
///
/// Descriptors tile the stored sequence: the first descriptor of a stream
/// covers its seed bit plus up to `k - 1` more; every later descriptor
/// covers up to `k - 1` *new* bits and implicitly overlaps the previous
/// block's last bit. This mirrors a Transformation Table entry in the
/// paper's hardware (one `τ` index per block, in arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDescriptor {
    /// The transformation the decoder applies over this block's extent.
    pub transform: Transform,
    /// Number of stored bits this block contributes (including the seed for
    /// the first block of a stream; excluding the overlap bit otherwise).
    pub len: usize,
}

/// An encoded bit line: the stored bits plus the per-block transformation
/// schedule needed to restore the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedStream {
    stored: BitSeq,
    blocks: Vec<BlockDescriptor>,
    original_transitions: u64,
}

impl EncodedStream {
    /// The encoded bits as they would sit in instruction memory.
    pub fn stored(&self) -> &BitSeq {
        &self.stored
    }

    /// The per-block transformation schedule, in stream order.
    pub fn blocks(&self) -> &[BlockDescriptor] {
        &self.blocks
    }

    /// Transitions of the stored sequence (what the encoded bus pays).
    pub fn transitions(&self) -> u64 {
        self.stored.transitions()
    }

    /// Transitions of the original sequence (what the raw bus pays).
    pub fn original_transitions(&self) -> u64 {
        self.original_transitions
    }

    /// Percentage of transitions eliminated.
    pub fn reduction_percent(&self) -> f64 {
        if self.original_transitions == 0 {
            return 0.0;
        }
        (self.original_transitions - self.transitions()) as f64 / self.original_transitions as f64
            * 100.0
    }

    /// Assembles an encoded stream from parts.
    ///
    /// Useful for hardware-model tests that fabricate schedules; the parts
    /// are validated lazily by [`StreamCodec::decode`].
    pub fn from_parts(
        stored: BitSeq,
        blocks: Vec<BlockDescriptor>,
        original_transitions: u64,
    ) -> Self {
        EncodedStream {
            stored,
            blocks,
            original_transitions,
        }
    }
}

/// Greedy chained encoder/decoder for long bit sequences (§6).
///
/// See the [crate-level example](crate) for a round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCodec {
    config: StreamCodecConfig,
}

impl StreamCodec {
    /// Creates a codec from a configuration.
    pub fn new(config: StreamCodecConfig) -> Self {
        StreamCodec { config }
    }

    /// The codec's configuration.
    pub fn config(&self) -> StreamCodecConfig {
        self.config
    }

    /// Encodes a bit line, using the configured [`ChainStrategy`].
    ///
    /// Under [`ChainStrategy::Greedy`] (the paper's algorithm and the
    /// default), blocks are encoded in stream order, each optimal given
    /// its predecessor's choice. Under [`ChainStrategy::Optimal`], an
    /// exact dynamic program over the stored value of each overlap bit
    /// yields the provably minimal stored transition count for the fixed
    /// block partition.
    pub fn encode(&self, original: &BitSeq) -> EncodedStream {
        match self.config.strategy {
            ChainStrategy::Greedy => self.encode_greedy(original),
            ChainStrategy::Optimal => self.encode_optimal(original),
        }
    }

    /// Encodes a bit line already held in packed form, avoiding the
    /// `Vec<bool>` round trip on the input side. Bit-identical to
    /// `self.encode(&original.to_bitseq())`.
    pub fn encode_packed(&self, original: &PackedSeq) -> EncodedStream {
        match self.config.strategy {
            ChainStrategy::Greedy if self.config.block_size <= CODEBOOK_MAX_LEN => {
                self.encode_greedy_packed(original)
            }
            _ => self.encode(&original.to_bitseq()),
        }
    }

    /// Reference implementation: `Vec<bool>` streams driven by the
    /// exhaustive block solver, bypassing both the codebook and the packed
    /// representation. The fast paths are tested bit-identical against
    /// this; it is also what [`StreamCodec::encode`] falls back to for
    /// block sizes beyond [`CODEBOOK_MAX_LEN`].
    pub fn encode_reference(&self, original: &BitSeq) -> EncodedStream {
        match self.config.strategy {
            ChainStrategy::Greedy => self.encode_greedy_bools(original),
            ChainStrategy::Optimal => self.encode_optimal(original),
        }
    }

    fn encode_greedy(&self, original: &BitSeq) -> EncodedStream {
        if self.config.block_size <= CODEBOOK_MAX_LEN {
            return self.encode_greedy_packed(&PackedSeq::from_bitseq(original));
        }
        self.encode_greedy_bools(original)
    }

    /// Packed greedy encoder: every block is one shift/mask extraction,
    /// one codebook lookup and one packed append.
    fn encode_greedy_packed(&self, original: &PackedSeq) -> EncodedStream {
        let k = self.config.block_size;
        let n = original.len();
        let mut blocks = Vec::new();
        if n == 0 {
            return EncodedStream {
                stored: BitSeq::new(),
                blocks,
                original_transitions: 0,
            };
        }
        let mut stored = PackedSeq::with_capacity(n);

        // First block: seed + up to k-1 more bits.
        let first_len = k.min(n);
        let entry = codebook_for(first_len, self.config.allowed)
            .entry(
                original.extract(0, first_len) as u16,
                BlockContext::Initial,
                None,
            )
            .expect("unconstrained encoding always has the identity fallback");
        stored.push_bits(u64::from(entry.code_bits), first_len);
        blocks.push(BlockDescriptor {
            transform: entry.transform,
            len: first_len,
        });
        let mut pos = first_len;

        // Chained blocks: k-1 new bits each, overlapping one bit back. The
        // full-size codebook is fetched once; only a short tail block can
        // need a different length.
        if pos < n {
            let mid_len = k - 1;
            let mid_book = codebook_for(mid_len, self.config.allowed);
            while pos < n {
                let len = mid_len.min(n - pos);
                let book = if len == mid_len {
                    mid_book
                } else {
                    codebook_for(len, self.config.allowed)
                };
                let ctx = BlockContext::Chained {
                    prev_stored: stored.get(pos - 1),
                    prev_original: original.get(pos - 1),
                    history: self.config.overlap,
                };
                let entry = book
                    .entry(original.extract(pos, len) as u16, ctx, None)
                    .expect("unconstrained encoding always has the identity fallback");
                stored.push_bits(u64::from(entry.code_bits), len);
                blocks.push(BlockDescriptor {
                    transform: entry.transform,
                    len,
                });
                pos += len;
            }
        }

        if imt_obs::enabled() {
            imt_obs::counter!("bitcode.codec.packed_encodes").inc();
            imt_obs::counter!("bitcode.codec.blocks").add(blocks.len() as u64);
            imt_obs::counter!("bitcode.codec.bits").add(n as u64);
        }
        EncodedStream {
            stored: stored.to_bitseq(),
            blocks,
            original_transitions: original.transitions(),
        }
    }

    fn encode_greedy_bools(&self, original: &BitSeq) -> EncodedStream {
        let k = self.config.block_size;
        let bits = original.as_slice();
        let n = bits.len();
        let mut stored = BitSeq::new();
        let mut blocks = Vec::new();
        if n == 0 {
            return EncodedStream {
                stored,
                blocks,
                original_transitions: 0,
            };
        }

        // First block: seed + up to k-1 more bits.
        let first_len = k.min(n);
        let enc = encode_block_exhaustive(
            &bits[..first_len],
            BlockContext::Initial,
            self.config.allowed,
        );
        stored.extend(enc.code.iter().copied());
        blocks.push(BlockDescriptor {
            transform: enc.transform,
            len: first_len,
        });
        let mut pos = first_len;

        // Chained blocks: k-1 new bits each, overlapping one bit back.
        while pos < n {
            let len = (k - 1).min(n - pos);
            let ctx = BlockContext::Chained {
                prev_stored: stored[pos - 1],
                prev_original: bits[pos - 1],
                history: self.config.overlap,
            };
            let enc = encode_block_exhaustive(&bits[pos..pos + len], ctx, self.config.allowed);
            stored.extend(enc.code.iter().copied());
            blocks.push(BlockDescriptor {
                transform: enc.transform,
                len,
            });
            pos += len;
        }

        if imt_obs::enabled() {
            imt_obs::counter!("bitcode.codec.reference_encodes").inc();
            imt_obs::counter!("bitcode.codec.blocks").add(blocks.len() as u64);
            imt_obs::counter!("bitcode.codec.bits").add(n as u64);
        }
        EncodedStream {
            stored,
            blocks,
            original_transitions: original.transitions(),
        }
    }

    fn encode_optimal(&self, original: &BitSeq) -> EncodedStream {
        let k = self.config.block_size;
        let bits = original.as_slice();
        let n = bits.len();
        if n == 0 {
            return EncodedStream {
                stored: BitSeq::new(),
                blocks: Vec::new(),
                original_transitions: 0,
            };
        }

        // Block extents: first covers min(k, n), then min(k-1, rest) each.
        let mut extents = vec![(0usize, k.min(n))];
        let mut pos = k.min(n);
        while pos < n {
            let len = (k - 1).min(n - pos);
            extents.push((pos, len));
            pos += len;
        }

        /// One DP cell: cheapest way to finish this block with a given
        /// final stored bit.
        #[derive(Clone)]
        struct Cell {
            cost: u64,
            encoding: BlockEncoding,
            from: Option<bool>,
        }
        let mut layers: Vec<[Option<Cell>; 2]> = Vec::with_capacity(extents.len());

        let (start, len) = extents[0];
        let mut first_layer: [Option<Cell>; 2] = [None, None];
        for (slot, final_bit) in [false, true].into_iter().enumerate() {
            if let Some(encoding) = encode_block_constrained(
                &bits[start..start + len],
                BlockContext::Initial,
                self.config.allowed,
                Some(final_bit),
            ) {
                first_layer[slot] = Some(Cell {
                    cost: encoding.code_transitions,
                    encoding,
                    from: None,
                });
            }
        }
        layers.push(first_layer);

        for &(start, len) in &extents[1..] {
            let prev_original = bits[start - 1];
            let previous = layers.last().expect("first layer pushed").clone();
            let mut layer: [Option<Cell>; 2] = [None, None];
            for (in_slot, prev_stored) in [false, true].into_iter().enumerate() {
                let Some(prev_cell) = &previous[in_slot] else {
                    continue;
                };
                let ctx = BlockContext::Chained {
                    prev_stored,
                    prev_original,
                    history: self.config.overlap,
                };
                for (out_slot, final_bit) in [false, true].into_iter().enumerate() {
                    let Some(encoding) = encode_block_constrained(
                        &bits[start..start + len],
                        ctx,
                        self.config.allowed,
                        Some(final_bit),
                    ) else {
                        continue;
                    };
                    let cost = prev_cell.cost + encoding.code_transitions;
                    if layer[out_slot].as_ref().is_none_or(|c| cost < c.cost) {
                        layer[out_slot] = Some(Cell {
                            cost,
                            encoding,
                            from: Some(prev_stored),
                        });
                    }
                }
            }
            layers.push(layer);
        }

        // Pick the cheapest final state and backtrack.
        let mut state = match (&layers[layers.len() - 1][0], &layers[layers.len() - 1][1]) {
            (Some(a), Some(b)) => a.cost > b.cost,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => unreachable!("identity keeps every layer feasible"),
        };
        let mut chosen: Vec<BlockEncoding> = Vec::with_capacity(layers.len());
        for layer in layers.iter().rev() {
            let cell = layer[state as usize]
                .as_ref()
                .expect("backtracking a feasible path");
            chosen.push(cell.encoding.clone());
            if let Some(from) = cell.from {
                state = from;
            }
        }
        chosen.reverse();

        let mut stored = BitSeq::new();
        let mut blocks = Vec::with_capacity(chosen.len());
        for encoding in chosen {
            blocks.push(BlockDescriptor {
                transform: encoding.transform,
                len: encoding.code.len(),
            });
            stored.extend(encoding.code.iter().copied());
        }
        if imt_obs::enabled() {
            imt_obs::counter!("bitcode.codec.dp_encodes").inc();
            imt_obs::counter!("bitcode.codec.blocks").add(blocks.len() as u64);
            imt_obs::counter!("bitcode.codec.bits").add(n as u64);
        }
        EncodedStream {
            stored,
            blocks,
            original_transitions: original.transitions(),
        }
    }

    /// Decodes an encoded stream back to the original bit line.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::MalformedBlocks`] if the descriptors do not
    /// tile the stored bits exactly (wrong total length, or an empty
    /// descriptor).
    pub fn decode(&self, encoded: &EncodedStream) -> Result<BitSeq, CodecError> {
        self.decode_parts(&encoded.stored, &encoded.blocks)
    }

    /// Decodes from raw parts (stored bits plus schedule).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::MalformedBlocks`] under the same conditions as
    /// [`StreamCodec::decode`].
    pub fn decode_parts(
        &self,
        stored: &BitSeq,
        blocks: &[BlockDescriptor],
    ) -> Result<BitSeq, CodecError> {
        let bits = stored.as_slice();
        let mut out: Vec<bool> = Vec::with_capacity(bits.len());
        let mut pos = 0usize;
        for (block_index, desc) in blocks.iter().enumerate() {
            if desc.len == 0 || pos + desc.len > bits.len() {
                return Err(CodecError::MalformedBlocks { block_index });
            }
            let context = if pos == 0 {
                BlockContext::Initial
            } else {
                BlockContext::Chained {
                    prev_stored: bits[pos - 1],
                    prev_original: out[pos - 1],
                    history: self.config.overlap,
                }
            };
            let decoded = decode_block(&bits[pos..pos + desc.len], desc.transform, context);
            out.extend(decoded);
            pos += desc.len;
        }
        if pos != bits.len() {
            return Err(CodecError::MalformedBlocks {
                block_index: blocks.len(),
            });
        }
        Ok(BitSeq::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec(k: usize) -> StreamCodec {
        StreamCodec::new(StreamCodecConfig::block_size(k).unwrap())
    }

    #[test]
    fn empty_stream() {
        let c = codec(5);
        let enc = c.encode(&BitSeq::new());
        assert_eq!(enc.transitions(), 0);
        assert!(enc.blocks().is_empty());
        assert_eq!(c.decode(&enc).unwrap(), BitSeq::new());
    }

    #[test]
    fn alternating_stream_collapses() {
        // 101010… is the worst case raw and the best case encoded: ¬y (or
        // similar) flattens it to a constant run per block.
        let original = BitSeq::from_str_time("10101010101010101010").unwrap();
        let c = codec(5);
        let enc = c.encode(&original);
        assert_eq!(c.decode(&enc).unwrap(), original);
        assert_eq!(enc.original_transitions(), 19);
        assert!(enc.transitions() <= 2, "stored = {}", enc.stored());
    }

    #[test]
    fn constant_stream_stays_constant() {
        let original = BitSeq::repeat(true, 40);
        let enc = codec(4).encode(&original);
        assert_eq!(enc.transitions(), 0);
        assert_eq!(enc.reduction_percent(), 0.0);
    }

    #[test]
    fn roundtrip_exhaustive_short_streams() {
        for k in 2..=5usize {
            for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
                let config = StreamCodecConfig::block_size(k)
                    .unwrap()
                    .with_overlap(overlap);
                let c = StreamCodec::new(config);
                for len in 1..=10usize {
                    // Sample the space densely for short lengths.
                    let limit = 1u32 << len.min(10);
                    for value in 0..limit {
                        let original: BitSeq = (0..len).map(|i| value >> i & 1 == 1).collect();
                        let enc = c.encode(&original);
                        assert_eq!(
                            c.decode(&enc).unwrap(),
                            original,
                            "k={k} overlap={overlap:?} len={len} value={value:b}"
                        );
                        assert!(enc.transitions() <= enc.original_transitions());
                    }
                }
            }
        }
    }

    #[test]
    fn block_layout_tiles_the_stream() {
        let original = BitSeq::repeat(false, 23);
        let enc = codec(6).encode(&original);
        // 23 bits = 6 + 5 + 5 + 5 + 2.
        let lens: Vec<usize> = enc.blocks().iter().map(|b| b.len).collect();
        assert_eq!(lens, vec![6, 5, 5, 5, 2]);
        assert_eq!(lens.iter().sum::<usize>(), 23);
    }

    #[test]
    fn decode_rejects_bad_schedules() {
        let c = codec(4);
        let stored = BitSeq::repeat(false, 4);
        // Schedule covers 5 bits but only 4 exist.
        let blocks = vec![
            BlockDescriptor {
                transform: Transform::IDENTITY,
                len: 4,
            },
            BlockDescriptor {
                transform: Transform::IDENTITY,
                len: 1,
            },
        ];
        let err = c.decode_parts(&stored, &blocks).unwrap_err();
        assert_eq!(err, CodecError::MalformedBlocks { block_index: 1 });
        // Schedule covers only 3 of 4 bits.
        let blocks = vec![BlockDescriptor {
            transform: Transform::IDENTITY,
            len: 3,
        }];
        let err = c.decode_parts(&stored, &blocks).unwrap_err();
        assert_eq!(err, CodecError::MalformedBlocks { block_index: 1 });
        // Zero-length descriptor.
        let blocks = vec![
            BlockDescriptor {
                transform: Transform::IDENTITY,
                len: 0,
            },
            BlockDescriptor {
                transform: Transform::IDENTITY,
                len: 4,
            },
        ];
        let err = c.decode_parts(&stored, &blocks).unwrap_err();
        assert_eq!(err, CodecError::MalformedBlocks { block_index: 0 });
    }

    #[test]
    fn identity_only_set_is_transparent() {
        let config = StreamCodecConfig::block_size(5)
            .unwrap()
            .with_transforms(TransformSet::IDENTITY_ONLY)
            .unwrap();
        let c = StreamCodec::new(config);
        let original = BitSeq::from_str_time("110100111000101").unwrap();
        let enc = c.encode(&original);
        assert_eq!(enc.stored(), &original);
        assert_eq!(enc.transitions(), enc.original_transitions());
    }

    #[test]
    fn config_rejects_bad_block_sizes() {
        assert!(StreamCodecConfig::block_size(0).is_err());
        assert!(StreamCodecConfig::block_size(1).is_err());
        assert!(StreamCodecConfig::block_size(MAX_BLOCK_SIZE + 1).is_err());
    }

    fn optimal_codec(k: usize) -> StreamCodec {
        StreamCodec::new(
            StreamCodecConfig::block_size(k)
                .unwrap()
                .with_strategy(ChainStrategy::Optimal),
        )
    }

    #[test]
    fn optimal_roundtrips_and_never_loses_to_greedy() {
        for k in [2usize, 3, 4, 5] {
            let greedy = codec(k);
            let optimal = optimal_codec(k);
            for len in 1..=14usize {
                let limit = 1u32 << len.min(12);
                for value in 0..limit {
                    let original: BitSeq = (0..len).map(|i| value >> i & 1 == 1).collect();
                    let g = greedy.encode(&original);
                    let o = optimal.encode(&original);
                    assert_eq!(
                        optimal.decode(&o).unwrap(),
                        original,
                        "k={k} len={len} value={value:b}"
                    );
                    assert!(
                        o.transitions() <= g.transitions(),
                        "k={k} len={len} value={value:b}: optimal {} > greedy {}",
                        o.transitions(),
                        g.transitions()
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_is_exactly_optimal_on_exhaustive_streams() {
        // The paper's §6 concludes "the iterative approach leads in
        // practice to optimal results"; the exact DP turns that remark
        // into a theorem-by-exhaustion over every 14-bit stream: greedy's
        // stored transition count equals the provable optimum, at every
        // block size. (Probed further offline: also true for all 15-bit
        // streams at k ≤ 6 under both overlap semantics and both
        // transform universes, and on 200 random 1000-bit streams.)
        for k in [2usize, 3, 4, 5] {
            let greedy = codec(k);
            let optimal = optimal_codec(k);
            for value in 0u32..(1 << 14) {
                let original: BitSeq = (0..14).map(|i| value >> i & 1 == 1).collect();
                let g = greedy.encode(&original).transitions();
                let o = optimal.encode(&original).transitions();
                assert_eq!(o, g, "k={k} value={value:b}: greedy {g} vs optimal {o}");
            }
        }
    }

    #[test]
    fn optimal_decode_through_hardware_schedule_semantics() {
        // The DP's schedules use the exact same descriptor format, so the
        // standard decoder must accept them untouched.
        let optimal = optimal_codec(5);
        let original = BitSeq::from_str_time("110010111000101011001101").unwrap();
        let enc = optimal.encode(&original);
        assert_eq!(
            optimal.decode_parts(enc.stored(), enc.blocks()).unwrap(),
            original
        );
        // Same block layout as greedy produces.
        let lens: Vec<usize> = enc.blocks().iter().map(|b| b.len).collect();
        assert_eq!(lens, vec![5, 4, 4, 4, 4, 3]);
    }
}
