//! Exhaustive code tables over all block words of a given size.
//!
//! These reproduce the paper's theoretical artefacts:
//!
//! * [`CodeTable::build`] — the full optimal encoding table for a block
//!   size (Figure 2 for size 3, Figure 4 for size 5);
//! * [`CodeTable::total_transitions`] / [`CodeTable::reduced_transitions`] —
//!   the TTN and RTN rows of Figure 3;
//! * [`minimal_optimal_subset`] — the exact set-cover search behind the
//!   §5.2 claim that a unique subset of eight transformations achieves the
//!   unrestricted optimum for every block size up to seven.

use crate::bits::BitSeq;
use crate::block::{encode_block, BlockContext, MAX_BLOCK_SIZE};
use crate::transform::{Transform, TransformSet};
use crate::CodecError;

/// One row of a code table: the optimal encoding of a single block word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeTableEntry {
    /// The original block word (`X` column), time order.
    pub word: BitSeq,
    /// The optimal code word (`X̃` column), time order.
    pub code: BitSeq,
    /// The selected transformation (`τ` column).
    pub transform: Transform,
    /// Every allowed transformation compatible with the optimal code word.
    pub compatible: TransformSet,
    /// Transitions of the original word (`T_x` column).
    pub word_transitions: u64,
    /// Transitions of the code word (`T_x̃` column).
    pub code_transitions: u64,
}

/// The optimal encoding table for all `2^k` block words of size `k`.
///
/// ```
/// use imt_bitcode::tables::CodeTable;
/// use imt_bitcode::TransformSet;
///
/// # fn main() -> Result<(), imt_bitcode::CodecError> {
/// // Figure 3, size 3: TTN = 8, RTN = 2 → 75 % reduction.
/// let table = CodeTable::build(3, TransformSet::ALL_SIXTEEN)?;
/// assert_eq!(table.total_transitions(), 8);
/// assert_eq!(table.reduced_transitions(), 2);
/// assert!((table.improvement_percent() - 75.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeTable {
    block_size: usize,
    allowed: TransformSet,
    entries: Vec<CodeTableEntry>,
}

impl CodeTable {
    /// Builds the optimal table for `block_size`, restricted to `allowed`
    /// transformations.
    ///
    /// Entries are ordered by the paper's convention: lexicographically by
    /// the word printed latest-bit-first (so entry `i` is the word whose
    /// paper string is `i` in binary).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BlockSize`] if `block_size` is outside
    /// `2..=MAX_BLOCK_SIZE` (tables above ~20 bits would also be impractically
    /// large to enumerate).
    pub fn build(block_size: usize, allowed: TransformSet) -> Result<Self, CodecError> {
        if !(2..=MAX_BLOCK_SIZE).contains(&block_size) {
            return Err(CodecError::BlockSize {
                requested: block_size,
            });
        }
        let mut entries = Vec::with_capacity(1 << block_size);
        for value in 0u64..(1 << block_size) {
            // Entry `value` is the word whose paper string (latest bit
            // leftmost) is `value` in binary; since the paper string is the
            // reverse of time order, time bit `i` is bit `i` of `value`.
            let word: Vec<bool> = (0..block_size).map(|i| value >> i & 1 == 1).collect();
            let enc = encode_block(&word, BlockContext::Initial, allowed);
            entries.push(CodeTableEntry {
                word: BitSeq::from(word),
                code: BitSeq::from(enc.code),
                transform: enc.transform,
                compatible: enc.compatible,
                word_transitions: enc.original_transitions,
                code_transitions: enc.code_transitions,
            });
        }
        Ok(CodeTable {
            block_size,
            allowed,
            entries,
        })
    }

    /// The block size `k`.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The transformation universe the table was built against.
    pub fn allowed(&self) -> TransformSet {
        self.allowed
    }

    /// All `2^k` rows, in paper order.
    pub fn entries(&self) -> &[CodeTableEntry] {
        &self.entries
    }

    /// TTN: total transitions of all original block words (Figure 3 row 2).
    ///
    /// Equals `(k-1)·2^(k-1)` for uniform enumeration.
    pub fn total_transitions(&self) -> u64 {
        self.entries.iter().map(|e| e.word_transitions).sum()
    }

    /// RTN: total transitions of all optimal code words (Figure 3 row 3).
    pub fn reduced_transitions(&self) -> u64 {
        self.entries.iter().map(|e| e.code_transitions).sum()
    }

    /// Percentage improvement `(TTN - RTN) / TTN · 100` (Figure 3 row 4).
    ///
    /// Interpretable as the expected transition reduction on a bit stream
    /// with uniform value distribution.
    pub fn improvement_percent(&self) -> f64 {
        let ttn = self.total_transitions();
        if ttn == 0 {
            return 0.0;
        }
        (ttn - self.reduced_transitions()) as f64 / ttn as f64 * 100.0
    }

    /// The set of transformations actually selected somewhere in the table.
    pub fn used_transforms(&self) -> TransformSet {
        self.entries.iter().map(|e| e.transform).collect()
    }

    /// Renders the table in the layout of the paper's Figures 2 and 4.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<width$}  {:<width$}  {:<6}  {:>3}  {:>3}\n",
            "X",
            "X~",
            "tau",
            "Tx",
            "Tx~",
            width = self.block_size.max(2)
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<width$}  {:<width$}  {:<6}  {:>3}  {:>3}\n",
                e.word.to_paper_string(),
                e.code.to_paper_string(),
                e.transform.ascii_name(),
                e.word_transitions,
                e.code_transitions,
                width = self.block_size.max(2)
            ));
        }
        out
    }
}

/// The theoretical TTN for block size `k`: `(k-1)·2^(k-1)`.
///
/// Note the paper's Figure 3 prints 320 for `k = 6`, which is exactly twice
/// this closed form while its neighbours (2, 8, 24, 64, 384) all match it;
/// the printed percentage (43.8 %) is consistent with either scaling.
pub fn theoretical_ttn(block_size: usize) -> u64 {
    (block_size as u64 - 1) * (1 << (block_size - 1))
}

/// Outcome of the minimal-subset search of [`minimal_optimal_subset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimalSubset {
    /// A smallest subset achieving the unrestricted optimum everywhere.
    pub set: TransformSet,
    /// How many distinct subsets of that size achieve it (the paper claims
    /// this is 1 for block sizes up to seven).
    pub count_of_minimum_size: usize,
}

/// Exact search for the smallest transformation subset that achieves the
/// globally optimal (unrestricted) encoding for **every** block word of
/// **every** size `2..=max_block_size` (§5.2).
///
/// For each word we record which transformations can realise an optimal
/// code word; a subset is sufficient iff it intersects that per-word
/// possibility set for all words. The search is exhaustive over all `2^16`
/// subsets, so the result is a true minimum, and uniqueness is decided
/// exactly.
///
/// The paper reports a unique sufficient subset of **8** functions (our
/// [`TransformSet::CANONICAL_EIGHT`]); the exact search sharpens this: for
/// block sizes up to 7 a unique subset of only **6** functions — identity,
/// inversion, XOR, XNOR, NOR and NAND, i.e. the canonical eight without the
/// two pure history functions `y` and `ȳ` — already attains the global
/// optimum everywhere. The canonical eight remains sufficient (and is what
/// the 3-control-bit hardware table encodes); see EXPERIMENTS.md.
///
/// # Panics
///
/// Panics if `max_block_size` is outside `2..=MAX_BLOCK_SIZE`.
///
/// ```
/// use imt_bitcode::tables::minimal_optimal_subset;
/// use imt_bitcode::TransformSet;
///
/// let minimal = minimal_optimal_subset(6);
/// assert_eq!(minimal.set.len(), 6);
/// assert_eq!(minimal.count_of_minimum_size, 1);
/// // The exact minimum is contained in the paper's canonical eight.
/// assert_eq!(minimal.set.intersection(TransformSet::CANONICAL_EIGHT), minimal.set);
/// ```
pub fn minimal_optimal_subset(max_block_size: usize) -> MinimalSubset {
    assert!(
        (2..=MAX_BLOCK_SIZE).contains(&max_block_size),
        "max_block_size {max_block_size} outside 2..={MAX_BLOCK_SIZE}"
    );

    // Per-word masks of transforms that achieve the unrestricted optimum,
    // plus the optimal cost per word so sufficiency can be re-checked.
    let mut word_masks: Vec<u16> = Vec::new();
    for k in 2..=max_block_size {
        for value in 0u64..(1 << k) {
            let word: Vec<bool> = (0..k).map(|i| value >> i & 1 == 1).collect();
            let best = encode_block(&word, BlockContext::Initial, TransformSet::ALL_SIXTEEN);
            // Collect every optimal code word's compatible transforms: a
            // subset covers the word iff it can realise *some* optimal code.
            let mask = optimal_transform_union(&word, best.code_transitions);
            word_masks.push(mask);
        }
    }

    let mut best_size = 17;
    let mut best_set = TransformSet::ALL_SIXTEEN;
    let mut count = 0usize;
    for subset in 0u32..(1 << 16) {
        let size = subset.count_ones() as usize;
        if size > best_size {
            continue;
        }
        let mask = subset as u16;
        if word_masks.iter().all(|&m| m & mask != 0) {
            if size < best_size {
                best_size = size;
                best_set = TransformSet::from_mask(mask);
                count = 1;
            } else {
                count += 1;
            }
        }
    }
    MinimalSubset {
        set: best_set,
        count_of_minimum_size: count,
    }
}

/// Union of compatible-transform masks over all code words of optimal cost
/// for `word` (initial-block context).
fn optimal_transform_union(word: &[bool], optimal_cost: u64) -> u16 {
    use crate::transform::PartialTransform;
    let k = word.len();
    let mut union = 0u16;
    // Enumerate all code words with seed fixed and cost == optimal_cost.
    for pattern in 0u64..(1 << (k - 1)) {
        if (pattern.count_ones() as u64) != optimal_cost {
            continue;
        }
        // Gap bit g set => flip between code position g and g+1.
        let mut code = Vec::with_capacity(k);
        code.push(word[0]);
        for g in 0..k - 1 {
            let prev = code[g];
            code.push(if pattern >> g & 1 == 1 { !prev } else { prev });
        }
        let mut partial = PartialTransform::new();
        let ok = (1..k).all(|i| partial.constrain(code[i], word[i - 1], word[i]));
        if ok {
            union |= partial.compatible().mask();
        }
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_ttn_matches_closed_form() {
        for k in 2..=7 {
            let table = CodeTable::build(k, TransformSet::ALL_SIXTEEN).unwrap();
            assert_eq!(table.total_transitions(), theoretical_ttn(k), "k = {k}");
        }
    }

    #[test]
    fn figure3_rtn_values() {
        // Paper Figure 3. Two rows of the printed table are anomalous and
        // our exhaustive search pins the correct values (EXPERIMENTS.md):
        //   k=6: paper prints TTN=320/RTN=180, exactly twice the closed form
        //        every other column follows; the percentage (43.8) matches
        //        our 160/90.
        //   k=7: paper prints RTN=234; the provable optimum under the
        //        paper's own decode semantics is 236 (38.5 %, paper 39.1 %).
        let expected_rtn = [(2, 0), (3, 2), (4, 10), (5, 32), (6, 90), (7, 236)];
        for (k, rtn) in expected_rtn {
            let table = CodeTable::build(k, TransformSet::ALL_SIXTEEN).unwrap();
            assert_eq!(table.reduced_transitions(), rtn, "k = {k}");
        }
    }

    #[test]
    fn figure3_improvement_percentages() {
        // Paper values except k=7, where the paper's 39.1 % corresponds to
        // the unattainable RTN 234 (see figure3_rtn_values).
        let expected = [
            (2, 100.0),
            (3, 75.0),
            (4, 58.3),
            (5, 50.0),
            (6, 43.8),
            (7, 38.5),
        ];
        for (k, pct) in expected {
            let table = CodeTable::build(k, TransformSet::ALL_SIXTEEN).unwrap();
            assert!(
                (table.improvement_percent() - pct).abs() < 0.05,
                "k = {k}: got {:.2}, paper {pct}",
                table.improvement_percent()
            );
        }
    }

    #[test]
    fn canonical_eight_matches_unrestricted_optimum_for_all_sizes() {
        // The §5.2 headline claim, checked exhaustively.
        for k in 2..=7 {
            let full = CodeTable::build(k, TransformSet::ALL_SIXTEEN).unwrap();
            let eight = CodeTable::build(k, TransformSet::CANONICAL_EIGHT).unwrap();
            assert_eq!(
                full.reduced_transitions(),
                eight.reduced_transitions(),
                "restriction to 8 transforms lost optimality at k = {k}"
            );
        }
    }

    #[test]
    fn figure2_table_rows() {
        let table = CodeTable::build(3, TransformSet::CANONICAL_EIGHT).unwrap();
        let rows: Vec<(String, String, Transform, u64, u64)> = table
            .entries()
            .iter()
            .map(|e| {
                (
                    e.word.to_paper_string(),
                    e.code.to_paper_string(),
                    e.transform,
                    e.word_transitions,
                    e.code_transitions,
                )
            })
            .collect();
        let expected = [
            ("000", "000", Transform::IDENTITY, 0, 0),
            ("001", "111", Transform::NOT_X, 1, 0),
            ("010", "000", Transform::NOT_Y, 2, 0),
            ("011", "011", Transform::IDENTITY, 1, 1),
            ("100", "100", Transform::IDENTITY, 1, 1),
            ("101", "111", Transform::NOT_Y, 2, 0),
            ("110", "000", Transform::NOT_X, 1, 0),
            ("111", "111", Transform::IDENTITY, 0, 0),
        ];
        for (row, (w, c, t, tx, tc)) in rows.iter().zip(expected) {
            assert_eq!(row.0, w);
            assert_eq!(row.1, c, "word {w}");
            assert_eq!(row.2, t, "word {w}");
            assert_eq!(row.3, tx, "word {w}");
            assert_eq!(row.4, tc, "word {w}");
        }
    }

    #[test]
    fn figure4_first_half_rows() {
        let table = CodeTable::build(5, TransformSet::CANONICAL_EIGHT).unwrap();
        let expected = [
            ("00000", "00000", "id", 0, 0),
            ("00001", "11111", "not_x", 1, 0),
            ("00010", "11100", "not_x", 2, 1),
            ("00011", "00011", "id", 1, 1),
            ("00100", "00100", "id", 2, 2),
            ("00101", "01111", "xor", 3, 1),
            ("00110", "11000", "not_x", 2, 1),
            ("00111", "00111", "id", 1, 1),
            ("01000", "11000", "xor", 2, 1),
            ("01001", "00111", "nor", 3, 1),
            ("01010", "00000", "not_y", 4, 0),
            ("01011", "00011", "xnor", 3, 1),
            ("01100", "01100", "id", 2, 2),
            ("01101", "10011", "not_x", 3, 2),
            ("01110", "10000", "not_x", 2, 1),
            ("01111", "01111", "id", 1, 1),
        ];
        for (i, (w, c, t, tx, tc)) in expected.into_iter().enumerate() {
            let e = &table.entries()[i];
            assert_eq!(e.word.to_paper_string(), w);
            assert_eq!(e.code.to_paper_string(), c, "word {w}");
            assert_eq!(e.transform.ascii_name(), t, "word {w}");
            assert_eq!(e.word_transitions, tx, "word {w}");
            assert_eq!(e.code_transitions, tc, "word {w}");
        }
    }

    #[test]
    fn figure4_symmetry_between_halves() {
        // §5.2: the second half of the table is the first half with every
        // bit inverted and transforms replaced by their duals; the
        // transition counts are identical.
        let table = CodeTable::build(5, TransformSet::CANONICAL_EIGHT).unwrap();
        let n = table.entries().len();
        for i in 0..n / 2 {
            let lo = &table.entries()[i];
            let hi = &table.entries()[n - 1 - i];
            assert_eq!(lo.word_transitions, hi.word_transitions);
            assert_eq!(lo.code_transitions, hi.code_transitions);
            let inverted: BitSeq = lo.word.iter().map(|b| !b).collect();
            assert_eq!(inverted, hi.word);
        }
    }

    #[test]
    fn render_contains_header_and_rows() {
        let table = CodeTable::build(2, TransformSet::CANONICAL_EIGHT).unwrap();
        let text = table.render();
        assert!(text.contains("tau"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn rejects_out_of_range_sizes() {
        assert!(CodeTable::build(1, TransformSet::ALL_SIXTEEN).is_err());
        assert!(CodeTable::build(MAX_BLOCK_SIZE + 1, TransformSet::ALL_SIXTEEN).is_err());
    }

    #[test]
    fn minimal_subset_is_six_functions_inside_the_canonical_eight() {
        // Sharpening of the paper's §5.2 claim: the exact minimum sufficient
        // subset for k ≤ 6 has six members — identity, inversion, XOR, XNOR,
        // NOR, NAND — and is unique. (At k ≤ 5 alone the minimum is also 6
        // but four ties exist; k ≤ 6 and k ≤ 7 pin it uniquely. The k ≤ 7
        // run lives in the exp_subset experiment and integration tests.)
        let minimal = minimal_optimal_subset(6);
        let expected: TransformSet = [
            Transform::IDENTITY,
            Transform::NOT_X,
            Transform::XOR,
            Transform::XNOR,
            Transform::NOR,
            Transform::NAND,
        ]
        .into_iter()
        .collect();
        assert_eq!(minimal.set, expected);
        assert_eq!(minimal.count_of_minimum_size, 1);
        assert_eq!(
            minimal.set.intersection(TransformSet::CANONICAL_EIGHT),
            minimal.set
        );
    }
}
