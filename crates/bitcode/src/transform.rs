//! The two-input boolean transformations `τ(x, y)` and their algebra.
//!
//! A transformation takes the **stored** (encoded) bit `x = x̃ᵢ` and one bit
//! of history `y` (the previously restored original bit, `xᵢ₋₁`) and produces
//! the original bit `xᵢ`. There are `2^(2²) = 16` such functions; the paper
//! shows (§5.2) that a fixed subset of **8** achieves the globally optimal
//! encoding for every block size up to seven. That subset is exposed here as
//! [`TransformSet::CANONICAL_EIGHT`] and re-derived from first principles in
//! [`crate::tables::minimal_optimal_subset`].

use std::fmt;

/// A two-input boolean function `τ(x, y)`, stored as a 4-bit truth table.
///
/// Bit `(x << 1) | y` of the table holds `τ(x, y)`. The argument order
/// follows the paper: `x` is the current stored bit `x̃ᵢ`, `y` is the history
/// bit `xᵢ₋₁`.
///
/// ```
/// use imt_bitcode::Transform;
///
/// assert_eq!(Transform::IDENTITY.apply(true, false), true);
/// assert_eq!(Transform::NOT_X.apply(true, false), false);
/// assert_eq!(Transform::XOR.apply(true, true), false);
/// assert_eq!(Transform::NOR.apply(false, false), true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transform(u8);

impl Transform {
    /// `τ(x, y) = 0`.
    pub const FALSE: Transform = Transform(0b0000);
    /// `τ(x, y) = x ∧ y`.
    pub const AND: Transform = Transform(0b1000);
    /// `τ(x, y) = x ∧ ¬y`.
    pub const X_AND_NOT_Y: Transform = Transform(0b0100);
    /// `τ(x, y) = x` — the *identity*: stored bit is the original bit.
    pub const IDENTITY: Transform = Transform(0b1100);
    /// `τ(x, y) = ¬x ∧ y`.
    pub const NOT_X_AND_Y: Transform = Transform(0b0010);
    /// `τ(x, y) = y` — repeat the previous original bit.
    pub const Y: Transform = Transform(0b1010);
    /// `τ(x, y) = x ⊕ y`.
    pub const XOR: Transform = Transform(0b0110);
    /// `τ(x, y) = x ∨ y`.
    pub const OR: Transform = Transform(0b1110);
    /// `τ(x, y) = ¬(x ∨ y)`.
    pub const NOR: Transform = Transform(0b0001);
    /// `τ(x, y) = ¬(x ⊕ y)` (XNOR).
    pub const XNOR: Transform = Transform(0b1001);
    /// `τ(x, y) = ¬y` — invert the previous original bit.
    pub const NOT_Y: Transform = Transform(0b0101);
    /// `τ(x, y) = x ∨ ¬y`.
    pub const X_OR_NOT_Y: Transform = Transform(0b1101);
    /// `τ(x, y) = ¬x` — the *inversion*: stored bit is the complement.
    pub const NOT_X: Transform = Transform(0b0011);
    /// `τ(x, y) = ¬x ∨ y`.
    pub const NOT_X_OR_Y: Transform = Transform(0b1011);
    /// `τ(x, y) = ¬(x ∧ y)` (NAND).
    pub const NAND: Transform = Transform(0b0111);
    /// `τ(x, y) = 1`.
    pub const TRUE: Transform = Transform(0b1111);

    /// All 16 two-input functions, in the deterministic *preference order*
    /// used by the block encoder to break ties: the paper's canonical eight
    /// first (identity before inversion before history functions before the
    /// symmetric gates), then the remaining eight.
    ///
    /// This exact order reproduces the `τ` column of the paper's Figures 2
    /// and 4 (see `crate::tables`).
    pub const ALL: [Transform; 16] = [
        Transform::IDENTITY,
        Transform::NOT_X,
        Transform::Y,
        Transform::NOT_Y,
        Transform::XOR,
        Transform::XNOR,
        Transform::NOR,
        Transform::NAND,
        Transform::FALSE,
        Transform::TRUE,
        Transform::AND,
        Transform::OR,
        Transform::X_AND_NOT_Y,
        Transform::NOT_X_AND_Y,
        Transform::X_OR_NOT_Y,
        Transform::NOT_X_OR_Y,
    ];

    /// Constructs a transform from its 4-bit truth table.
    ///
    /// Bit `(x << 1) | y` of `table` holds `τ(x, y)`; bits above the low
    /// nibble are ignored.
    pub fn from_table(table: u8) -> Self {
        Transform(table & 0b1111)
    }

    /// The 4-bit truth table (bit `(x << 1) | y` holds `τ(x, y)`).
    pub fn table(self) -> u8 {
        self.0
    }

    /// Evaluates `τ(x, y)`.
    #[inline]
    pub fn apply(self, x: bool, y: bool) -> bool {
        (self.0 >> (((x as u8) << 1) | y as u8)) & 1 == 1
    }

    /// Whether this is the identity transform (`τ(x, y) = x`).
    pub fn is_identity(self) -> bool {
        self == Transform::IDENTITY
    }

    /// The symmetric partner under global bit inversion:
    /// `τ'(x, y) = ¬τ(¬x, ¬y)`.
    ///
    /// The paper (§5.2) notes that inverting every bit of `X` and `X̃` maps
    /// an optimal encoding onto another optimal encoding while exchanging
    /// XOR↔XNOR and NOR↔NAND and fixing identity and inversion. `y` and
    /// `ȳ` are each self-dual (`¬(¬y) = y`).
    ///
    /// ```
    /// use imt_bitcode::Transform;
    /// assert_eq!(Transform::XOR.inverted_dual(), Transform::XNOR);
    /// assert_eq!(Transform::NOR.inverted_dual(), Transform::NAND);
    /// assert_eq!(Transform::IDENTITY.inverted_dual(), Transform::IDENTITY);
    /// assert_eq!(Transform::Y.inverted_dual(), Transform::Y);
    /// assert_eq!(Transform::NOT_Y.inverted_dual(), Transform::NOT_Y);
    /// ```
    pub fn inverted_dual(self) -> Transform {
        let mut table = 0u8;
        for idx in 0..4u8 {
            let x = idx >> 1 == 1;
            let y = idx & 1 == 1;
            let out = !self.apply(!x, !y);
            table |= (out as u8) << idx;
        }
        Transform(table)
    }

    /// A short analytic name matching the paper's notation
    /// (`x`, `x̄`, `y`, `ȳ`, `x⊕y`, `x⊕̄y`, `x∨̄y`, `x∧̄y`, …).
    pub fn name(self) -> &'static str {
        match self.0 {
            0b0000 => "0",
            0b1000 => "x∧y",
            0b0100 => "x∧ȳ",
            0b1100 => "x",
            0b0010 => "x̄∧y",
            0b1010 => "y",
            0b0110 => "x⊕y",
            0b1110 => "x∨y",
            0b0001 => "x∨̄y",
            0b1001 => "x⊕̄y",
            0b0101 => "ȳ",
            0b1101 => "x∨ȳ",
            0b0011 => "x̄",
            0b1011 => "x̄∨y",
            0b0111 => "x∧̄y",
            0b1111 => "1",
            _ => unreachable!("truth table is masked to 4 bits"),
        }
    }

    /// An ASCII name for machine-readable output (`id`, `not_x`, `xor`, …).
    pub fn ascii_name(self) -> &'static str {
        match self.0 {
            0b0000 => "false",
            0b1000 => "and",
            0b0100 => "x_and_not_y",
            0b1100 => "id",
            0b0010 => "not_x_and_y",
            0b1010 => "y",
            0b0110 => "xor",
            0b1110 => "or",
            0b0001 => "nor",
            0b1001 => "xnor",
            0b0101 => "not_y",
            0b1101 => "x_or_not_y",
            0b0011 => "not_x",
            0b1011 => "not_x_or_y",
            0b0111 => "nand",
            0b1111 => "true",
            _ => unreachable!("truth table is masked to 4 bits"),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for Transform {
    /// The identity transform: leave the bit stream unencoded.
    fn default() -> Self {
        Transform::IDENTITY
    }
}

/// A set of allowed transformations, as a 16-bit mask indexed by truth table.
///
/// The block encoder only considers code words that can be decoded with a
/// transform in the allowed set. [`TransformSet::CANONICAL_EIGHT`] is the
/// paper's fixed 8-function subset; [`TransformSet::ALL_SIXTEEN`] is the
/// unrestricted universe used to establish the global optimum.
///
/// ```
/// use imt_bitcode::{Transform, TransformSet};
///
/// let set = TransformSet::CANONICAL_EIGHT;
/// assert!(set.contains(Transform::XOR));
/// assert!(!set.contains(Transform::AND));
/// assert_eq!(set.len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransformSet(u16);

impl TransformSet {
    /// The empty set.
    pub const EMPTY: TransformSet = TransformSet(0);

    /// All 16 two-input boolean functions.
    pub const ALL_SIXTEEN: TransformSet = TransformSet(0xFFFF);

    /// The paper's canonical eight: identity, inversion, `y`, `ȳ`, XOR,
    /// XNOR, NOR and NAND. §5.2 proves this subset achieves the same optimum
    /// as the full sixteen for all block sizes up to 7;
    /// [`crate::tables::minimal_optimal_subset`] re-derives it.
    pub const CANONICAL_EIGHT: TransformSet = TransformSet(
        1 << Transform::IDENTITY.0 as u16
            | 1 << Transform::NOT_X.0 as u16
            | 1 << Transform::Y.0 as u16
            | 1 << Transform::NOT_Y.0 as u16
            | 1 << Transform::XOR.0 as u16
            | 1 << Transform::XNOR.0 as u16
            | 1 << Transform::NOR.0 as u16
            | 1 << Transform::NAND.0 as u16,
    );

    /// Only the identity transform (encoding disabled).
    pub const IDENTITY_ONLY: TransformSet = TransformSet(1 << Transform::IDENTITY.0 as u16);

    /// Builds a set from a 16-bit mask where bit `t` selects the transform
    /// with truth table `t`.
    pub fn from_mask(mask: u16) -> Self {
        TransformSet(mask)
    }

    /// The underlying 16-bit mask.
    pub fn mask(self) -> u16 {
        self.0
    }

    /// Whether the set contains `t`.
    pub fn contains(self, t: Transform) -> bool {
        self.0 >> t.0 & 1 == 1
    }

    /// Adds `t`, returning the extended set.
    #[must_use]
    pub fn with(self, t: Transform) -> Self {
        TransformSet(self.0 | 1 << t.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: TransformSet) -> TransformSet {
        TransformSet(self.0 & other.0)
    }

    /// Number of transforms in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the members in the encoder's preference order
    /// (see [`Transform::ALL`]).
    pub fn iter(self) -> impl Iterator<Item = Transform> {
        Transform::ALL
            .into_iter()
            .filter(move |t| self.contains(*t))
    }

    /// The first member in preference order, if any.
    ///
    /// This is the transform the encoder reports when several are compatible
    /// with an optimal code word; the order reproduces the paper's tables.
    pub fn preferred(self) -> Option<Transform> {
        self.iter().next()
    }

    /// Number of control bits needed to select a member (`⌈log₂ len⌉`).
    ///
    /// The paper's point in §5.2: eight transformations need only 3 control
    /// bits per block in the Transformation Table.
    pub fn control_bits(self) -> u32 {
        let n = self.len();
        if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        }
    }
}

impl FromIterator<Transform> for TransformSet {
    fn from_iter<I: IntoIterator<Item = Transform>>(iter: I) -> Self {
        iter.into_iter()
            .fold(TransformSet::EMPTY, TransformSet::with)
    }
}

impl fmt::Display for TransformSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// A partially constrained two-input function, used while solving for `τ`.
///
/// Each decode equation `xᵢ = τ(x̃ᵢ, xᵢ₋₁)` pins one truth-table entry. A
/// code word is feasible iff no two equations pin the same entry to
/// different values, and at least one *allowed* transform extends the pinned
/// entries.
///
/// ```
/// use imt_bitcode::transform::PartialTransform;
/// use imt_bitcode::{Transform, TransformSet};
///
/// let mut partial = PartialTransform::new();
/// assert!(partial.constrain(false, false, true)); // τ(0,0) = 1
/// assert!(partial.constrain(false, true, false)); // τ(0,1) = 0
/// assert!(!partial.constrain(false, false, false)); // conflict
/// let compatible = partial.compatible().intersection(TransformSet::CANONICAL_EIGHT);
/// assert_eq!(compatible.preferred(), Some(Transform::NOT_Y));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialTransform {
    /// Bit `idx` set: entry `idx` is pinned.
    pinned: u8,
    /// Pinned value for entry `idx` (only meaningful where `pinned` is set).
    value: u8,
}

impl PartialTransform {
    /// A fully unconstrained partial function.
    pub fn new() -> Self {
        PartialTransform::default()
    }

    /// Pins `τ(x, y) = out`. Returns `false` (and leaves the table
    /// unchanged) if this conflicts with an earlier pin.
    #[inline]
    pub fn constrain(&mut self, x: bool, y: bool, out: bool) -> bool {
        let idx = ((x as u8) << 1) | y as u8;
        let bit = 1u8 << idx;
        if self.pinned & bit != 0 {
            return (self.value >> idx & 1 == 1) == out;
        }
        self.pinned |= bit;
        if out {
            self.value |= bit;
        }
        true
    }

    /// All full transforms that extend the pinned entries.
    pub fn compatible(self) -> TransformSet {
        let mut mask = 0u16;
        for table in 0u8..16 {
            if table & self.pinned == self.value {
                mask |= 1 << table;
            }
        }
        TransformSet(mask)
    }

    /// Number of pinned truth-table entries (0–4).
    pub fn pinned_entries(self) -> u32 {
        self.pinned.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sixteen_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in Transform::ALL {
            assert!(seen.insert(t.table()));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn apply_matches_semantics() {
        for x in [false, true] {
            for y in [false, true] {
                assert_eq!(Transform::IDENTITY.apply(x, y), x);
                assert_eq!(Transform::NOT_X.apply(x, y), !x);
                assert_eq!(Transform::Y.apply(x, y), y);
                assert_eq!(Transform::NOT_Y.apply(x, y), !y);
                assert_eq!(Transform::XOR.apply(x, y), x ^ y);
                assert_eq!(Transform::XNOR.apply(x, y), !(x ^ y));
                assert_eq!(Transform::NOR.apply(x, y), !(x | y));
                assert_eq!(Transform::NAND.apply(x, y), !(x & y));
                assert_eq!(Transform::AND.apply(x, y), x & y);
                assert_eq!(Transform::OR.apply(x, y), x | y);
                assert!(!Transform::FALSE.apply(x, y));
                assert!(Transform::TRUE.apply(x, y));
            }
        }
    }

    #[test]
    fn inverted_dual_is_an_involution() {
        for t in Transform::ALL {
            assert_eq!(t.inverted_dual().inverted_dual(), t);
        }
    }

    #[test]
    fn canonical_eight_is_closed_under_inversion_duality() {
        // §5.2: the symmetry that inverts all bits maps the optimal code for
        // word w onto the optimal code for ¬w, so the canonical subset must
        // be closed under the corresponding transform duality.
        for t in TransformSet::CANONICAL_EIGHT.iter() {
            assert!(
                TransformSet::CANONICAL_EIGHT.contains(t.inverted_dual()),
                "{t} dual {} escapes the canonical set",
                t.inverted_dual()
            );
        }
    }

    #[test]
    fn set_operations() {
        let set = TransformSet::EMPTY
            .with(Transform::XOR)
            .with(Transform::NOR);
        assert_eq!(set.len(), 2);
        assert!(set.contains(Transform::XOR));
        assert!(!set.contains(Transform::IDENTITY));
        assert_eq!(set.intersection(TransformSet::CANONICAL_EIGHT), set);
        let collected: TransformSet = set.iter().collect();
        assert_eq!(collected, set);
    }

    #[test]
    fn control_bits_for_paper_configurations() {
        assert_eq!(TransformSet::CANONICAL_EIGHT.control_bits(), 3);
        assert_eq!(TransformSet::ALL_SIXTEEN.control_bits(), 4);
        assert_eq!(TransformSet::IDENTITY_ONLY.control_bits(), 0);
    }

    #[test]
    fn preference_order_starts_with_identity() {
        assert_eq!(
            TransformSet::ALL_SIXTEEN.preferred(),
            Some(Transform::IDENTITY)
        );
        assert_eq!(
            TransformSet::CANONICAL_EIGHT.preferred(),
            Some(Transform::IDENTITY)
        );
    }

    #[test]
    fn partial_transform_conflict_detection() {
        // The paper's §5.1 example: block word 011 cannot take code word 111
        // because τ(1,1) would have to be both 1 and 0.
        let mut partial = PartialTransform::new();
        assert!(partial.constrain(true, true, true));
        assert!(!partial.constrain(true, true, false));
    }

    #[test]
    fn partial_transform_compatibility_count() {
        let mut partial = PartialTransform::new();
        assert_eq!(partial.compatible().len(), 16);
        partial.constrain(false, false, true);
        assert_eq!(partial.compatible().len(), 8);
        partial.constrain(true, true, false);
        assert_eq!(partial.compatible().len(), 4);
        partial.constrain(true, false, false);
        partial.constrain(false, true, true);
        assert_eq!(partial.compatible().len(), 1);
        assert_eq!(partial.pinned_entries(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Transform::IDENTITY.to_string(), "x");
        assert_eq!(Transform::NOT_X.to_string(), "x̄");
        assert_eq!(Transform::NOT_Y.to_string(), "ȳ");
        assert_eq!(Transform::XOR.ascii_name(), "xor");
        let display = TransformSet::IDENTITY_ONLY.to_string();
        assert_eq!(display, "{x}");
    }
}
