//! # imt-cfg — control-flow analysis for encoded-region selection
//!
//! The paper's encoding cannot span basic-block boundaries (§7.1): the
//! dynamic successor of a branch is unknown at compile time, so every basic
//! block decodes independently, and the Transformation Table allocates a
//! contiguous run of entries per block. Selecting *which* blocks to encode
//! needs the program structure this crate recovers:
//!
//! * [`Cfg::build`] — basic blocks and edges from a binary text segment;
//! * [`Cfg::immediate_dominators`] — iterative dominator computation;
//! * [`Cfg::natural_loops`] — back edges and loop bodies, the paper's
//!   "major application loops";
//! * [`block_weights`] / [`hot_loops`] — profile-weighted ranking using the
//!   per-instruction execution counts from `imt-sim`.
//!
//! ## Quick example
//!
//! ```
//! use imt_cfg::Cfg;
//! use imt_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(r#"
//!         .text
//! main:   li $t0, 100
//! loop:   addiu $t0, $t0, -1
//!         bgtz $t0, loop
//!         jr $ra
//! "#)?;
//! let cfg = Cfg::build(&program)?;
//! assert_eq!(cfg.blocks().len(), 3);
//! let loops = cfg.natural_loops();
//! assert_eq!(loops.len(), 1);
//! assert_eq!(loops[0].body.len(), 1); // the 2-instruction latch block
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use imt_isa::decode::decode;
use imt_isa::inst::Inst;
use imt_isa::program::Program;

/// Index of a basic block within its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Execution continues into the next sequential block.
    FallThrough,
    /// A conditional branch: taken edge plus fall-through edge.
    Branch,
    /// An unconditional `j` (or a `b` pseudo that assembled to `beq`).
    Jump,
    /// A call (`jal`/`jalr`): the callee is entered, and control returns to
    /// the fall-through block (modelled as an edge for loop analysis).
    Call,
    /// An indirect jump (`jr`): successors unknown; treated as an exit.
    Return,
    /// The block ends at the end of the text segment.
    End,
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// This block's id (its index in [`Cfg::blocks`]).
    pub id: BlockId,
    /// Text index of the first instruction.
    pub start: usize,
    /// Number of instructions.
    pub len: usize,
    /// Successor blocks in the CFG.
    pub successors: Vec<BlockId>,
    /// How the block ends.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Text index one past the last instruction.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Text indices covered by this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end()
    }
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// The back edges `(latch, header)` that define the loop.
    pub back_edges: Vec<(BlockId, BlockId)>,
}

/// Errors raised while recovering a CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CfgError {
    /// A text word does not decode to an instruction.
    InvalidInstruction {
        /// Text index of the word.
        index: usize,
        /// The undecodable word.
        word: u32,
    },
    /// A branch or jump targets an address outside the text segment.
    TargetOutOfText {
        /// Text index of the branch.
        index: usize,
        /// The target address.
        target: u32,
    },
    /// The program has no instructions.
    EmptyText,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CfgError::InvalidInstruction { index, word } => {
                write!(f, "text word {index} ({word:#010x}) does not decode")
            }
            CfgError::TargetOutOfText { index, target } => {
                write!(
                    f,
                    "instruction {index} targets {target:#010x} outside the text segment"
                )
            }
            CfgError::EmptyText => write!(f, "program has no text"),
        }
    }
}

impl Error for CfgError {}

/// The control-flow graph of a program's text segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    block_of_index: Vec<BlockId>,
    text_base: u32,
}

impl Cfg {
    /// Recovers the CFG from an assembled program.
    ///
    /// Leaders are the entry point, every branch/jump target, and every
    /// instruction following a control transfer. `jal` contributes both a
    /// call edge to the target and a return edge to the fall-through block;
    /// `jr`/`jalr` targets are unknown (`jr` ends the block with no
    /// successors, `jalr` keeps only the return edge).
    ///
    /// # Errors
    ///
    /// [`CfgError::InvalidInstruction`] for undecodable text,
    /// [`CfgError::TargetOutOfText`] for branches leaving the segment,
    /// [`CfgError::EmptyText`] for an empty program.
    pub fn build(program: &Program) -> Result<Self, CfgError> {
        let n = program.text.len();
        if n == 0 {
            return Err(CfgError::EmptyText);
        }
        let mut insts = Vec::with_capacity(n);
        for (index, &word) in program.text.iter().enumerate() {
            insts.push(decode(word).map_err(|_| CfgError::InvalidInstruction { index, word })?);
        }
        let target_index =
            |index: usize, inst: Inst| -> Result<Option<usize>, CfgError> {
                let pc = program.address_of_index(index);
                match inst.static_target(pc) {
                    Some(address) => program.index_of_address(address).map(Some).ok_or(
                        CfgError::TargetOutOfText {
                            index,
                            target: address,
                        },
                    ),
                    None => Ok(None),
                }
            };

        // Pass 1: leaders.
        let mut leader = vec![false; n];
        leader[0] = true;
        if let Some(entry) = program.index_of_address(program.entry) {
            leader[entry] = true;
        }
        for (index, &inst) in insts.iter().enumerate() {
            if inst.is_control_flow() {
                if let Some(t) = target_index(index, inst)? {
                    leader[t] = true;
                }
                if index + 1 < n {
                    leader[index + 1] = true;
                }
            }
        }

        // Pass 2: blocks.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of_index = vec![BlockId(0); n];
        let mut start = 0usize;
        for index in 0..n {
            block_of_index[index] = BlockId(blocks.len());
            let is_last = index + 1 == n || leader[index + 1];
            if is_last {
                blocks.push(BasicBlock {
                    id: BlockId(blocks.len()),
                    start,
                    len: index - start + 1,
                    successors: Vec::new(),
                    terminator: Terminator::FallThrough,
                });
                start = index + 1;
            }
        }

        // Pass 3: edges.
        for b in 0..blocks.len() {
            let last = blocks[b].end() - 1;
            let inst = insts[last];
            let fall = (blocks[b].end() < n).then(|| block_of_index[blocks[b].end()]);
            let (terminator, successors) = match inst {
                Inst::J { .. } => {
                    let t = target_index(last, inst)?.expect("jump has a static target");
                    (Terminator::Jump, vec![block_of_index[t]])
                }
                Inst::Jal { .. } => {
                    let t = target_index(last, inst)?.expect("call has a static target");
                    let mut edges = vec![block_of_index[t]];
                    edges.extend(fall);
                    (Terminator::Call, edges)
                }
                Inst::Jalr { .. } => (Terminator::Call, fall.into_iter().collect()),
                Inst::Jr { .. } => (Terminator::Return, Vec::new()),
                _ if inst.is_control_flow() => {
                    let t = target_index(last, inst)?.expect("branch has a static target");
                    let mut edges = vec![block_of_index[t]];
                    if let Some(f) = fall {
                        if f != block_of_index[t] {
                            edges.push(f);
                        }
                    }
                    (Terminator::Branch, edges)
                }
                _ => match fall {
                    Some(f) => (Terminator::FallThrough, vec![f]),
                    None => (Terminator::End, Vec::new()),
                },
            };
            blocks[b].terminator = terminator;
            blocks[b].successors = successors;
        }

        let entry = program
            .index_of_address(program.entry)
            .map(|i| block_of_index[i])
            .unwrap_or(BlockId(0));
        Ok(Cfg {
            blocks,
            entry,
            block_of_index,
            text_base: program.text_base,
        })
    }

    /// The basic blocks, ordered by start index.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The block containing text index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_at(&self, index: usize) -> BlockId {
        self.block_of_index[index]
    }

    /// The block record for `id`.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Address of the first instruction of `id`.
    pub fn block_address(&self, id: BlockId) -> u32 {
        self.text_base + (self.blocks[id.0].start as u32) * 4
    }

    /// Immediate dominators, indexed by block id; `None` for unreachable
    /// blocks and for the entry (which has no dominator).
    ///
    /// Uses the Cooper–Harvey–Kennedy iterative algorithm over a reverse
    /// post-order.
    pub fn immediate_dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.blocks.len();
        // Reverse post-order from the entry.
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = visiting, 2 = done
        let mut stack = vec![(self.entry, 0usize)];
        state[self.entry.0] = 1;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let successors = &self.blocks[node.0].successors;
            if *child < successors.len() {
                let next = successors[*child];
                *child += 1;
                if state[next.0] == 0 {
                    state[next.0] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node.0] = 2;
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, b) in order.iter().enumerate() {
            rpo_number[b.0] = i;
        }

        // Predecessor lists for reachable blocks.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for block in &self.blocks {
            if rpo_number[block.id.0] == usize::MAX {
                continue;
            }
            for &s in &block.successors {
                preds[s.0].push(block.id);
            }
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[self.entry.0] = Some(self.entry);
        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_number[a.0] > rpo_number[b.0] {
                    a = idom[a.0].expect("processed predecessor");
                }
                while rpo_number[b.0] > rpo_number[a.0] {
                    b = idom[b.0].expect("processed predecessor");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                if b == self.entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0] {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(current) => intersect(&idom, p, current),
                    });
                }
                if new_idom.is_some() && idom[b.0] != new_idom {
                    idom[b.0] = new_idom;
                    changed = true;
                }
            }
        }
        idom[self.entry.0] = None; // entry has no dominator
        idom
    }

    /// Whether `a` dominates `b` under the given immediate-dominator map.
    pub fn dominates(&self, idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut current = b;
        loop {
            if current == a {
                return true;
            }
            match idom[current.0] {
                Some(next) => current = next,
                None => return false,
            }
        }
    }

    /// The natural loops of the program, one per distinct header, largest
    /// (outermost) first.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let idom = self.immediate_dominators();
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); self.blocks.len()];
        for block in &self.blocks {
            for &s in &block.successors {
                preds[s.0].push(block.id);
            }
        }
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for block in &self.blocks {
            for &succ in &block.successors {
                // Back edge: the target dominates the source. Unreachable
                // blocks (no idom, not the entry) are skipped.
                let reachable = idom[block.id.0].is_some() || block.id == self.entry;
                if !reachable || !self.dominates(&idom, succ, block.id) {
                    continue;
                }
                // Body: reverse reachability from the latch, stopping at
                // the header.
                let header = succ;
                let mut body = BTreeSet::new();
                body.insert(header);
                let mut stack = vec![block.id];
                while let Some(node) = stack.pop() {
                    if body.insert(node) {
                        stack.extend(preds[node.0].iter().copied());
                    }
                }
                match loops.iter_mut().find(|l| l.header == header) {
                    Some(existing) => {
                        existing.body.extend(body);
                        existing.back_edges.push((block.id, header));
                    }
                    None => loops.push(NaturalLoop {
                        header,
                        body,
                        back_edges: vec![(block.id, header)],
                    }),
                }
            }
        }
        loops.sort_by(|a, b| {
            b.body
                .len()
                .cmp(&a.body.len())
                .then(a.header.cmp(&b.header))
        });
        loops
    }
}

impl Cfg {
    /// Forward closure from `entry`: every block reachable along successor
    /// edges. For a function entry this is the function body (plus any
    /// nested callees), since returns have no successors.
    ///
    /// Used by the paper's §7.2 alternative of encoding called functions
    /// together with the loop that calls them.
    pub fn reachable_from(&self, entry: BlockId) -> BTreeSet<BlockId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![entry];
        while let Some(node) = stack.pop() {
            if seen.insert(node) {
                stack.extend(self.blocks[node.0].successors.iter().copied());
            }
        }
        seen
    }

    /// The entry blocks of functions called from within `body` — the
    /// static targets of its `jal` terminators that lie outside `body`.
    pub fn called_functions(&self, body: &BTreeSet<BlockId>) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in body {
            let block = &self.blocks[b.0];
            if block.terminator == Terminator::Call && block.successors.len() == 2 {
                let callee = block.successors[0];
                if !body.contains(&callee) && !out.contains(&callee) {
                    out.push(callee);
                }
            }
        }
        out
    }
}

/// Sums the per-instruction execution profile into per-block fetch counts.
///
/// # Panics
///
/// Panics if `profile` is shorter than the program text the CFG was built
/// from.
pub fn block_weights(cfg: &Cfg, profile: &[u64]) -> Vec<u64> {
    cfg.blocks()
        .iter()
        .map(|b| b.range().map(|i| profile[i]).sum())
        .collect()
}

/// A natural loop ranked by its share of all instruction fetches.
#[derive(Debug, Clone, PartialEq)]
pub struct HotLoop {
    /// The loop itself.
    pub natural_loop: NaturalLoop,
    /// Total fetches from blocks in the loop body.
    pub fetch_weight: u64,
    /// `fetch_weight` as a fraction of all fetches (0–1).
    pub fetch_share: f64,
}

/// Ranks natural loops by profiled fetch weight, hottest first.
///
/// This implements the paper's premise that "an application typically
/// spends most of its execution time within a few tight loops" (§4): the
/// returned share tells the encoder how much of the bus traffic each loop
/// controls.
pub fn hot_loops(cfg: &Cfg, profile: &[u64]) -> Vec<HotLoop> {
    let weights = block_weights(cfg, profile);
    let total: u64 = weights.iter().sum();
    let mut out: Vec<HotLoop> = cfg
        .natural_loops()
        .into_iter()
        .map(|l| {
            let fetch_weight: u64 = l.body.iter().map(|b| weights[b.0]).sum();
            HotLoop {
                natural_loop: l,
                fetch_weight,
                fetch_share: if total == 0 {
                    0.0
                } else {
                    fetch_weight as f64 / total as f64
                },
            }
        })
        .collect();
    out.sort_by_key(|l| std::cmp::Reverse(l.fetch_weight));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;

    fn cfg_of(source: &str) -> (Cfg, imt_isa::Program) {
        let program = assemble(source).expect("assembly failed");
        (Cfg::build(&program).expect("cfg failed"), program)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (cfg, _) = cfg_of(".text\nmain: li $t0, 1\nli $t1, 2\naddu $t2, $t0, $t1\n");
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].terminator, Terminator::End);
        assert!(cfg.blocks()[0].successors.is_empty());
    }

    #[test]
    fn simple_loop_structure() {
        let (cfg, _) = cfg_of(
            r#"
            .text
    main:   li $t0, 10
    loop:   addiu $t0, $t0, -1
            bgtz $t0, loop
            jr $ra
    "#,
        );
        // Blocks: [li], [addiu; bgtz], [jr].
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[1].successors, vec![BlockId(1), BlockId(2)]);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        assert_eq!(
            loops[0].body.iter().copied().collect::<Vec<_>>(),
            vec![BlockId(1)]
        );
        assert_eq!(loops[0].back_edges, vec![(BlockId(1), BlockId(1))]);
    }

    #[test]
    fn nested_loops_are_ordered_outermost_first() {
        let (cfg, _) = cfg_of(
            r#"
            .text
    main:   li $t0, 3
    outer:  li $t1, 3
    inner:  addiu $t1, $t1, -1
            bgtz $t1, inner
            addiu $t0, $t0, -1
            bgtz $t0, outer
            jr $ra
    "#,
        );
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2);
        assert!(loops[0].body.len() > loops[1].body.len());
        assert!(loops[0].body.is_superset(&loops[1].body));
    }

    #[test]
    fn diamond_dominators() {
        let (cfg, _) = cfg_of(
            r#"
            .text
    main:   beq $t0, $zero, right
    left:   li $t1, 1
            b join
    right:  li $t1, 2
    join:   jr $ra
    "#,
        );
        let idom = cfg.immediate_dominators();
        // Blocks: 0 = branch, 1 = left, 2 = right, 3 = join.
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        assert_eq!(idom[3], Some(BlockId(0)));
        assert!(cfg.dominates(&idom, BlockId(0), BlockId(3)));
        assert!(!cfg.dominates(&idom, BlockId(1), BlockId(3)));
    }

    #[test]
    fn call_does_not_join_the_loop_body() {
        // A function called from inside a loop is reachable from the header
        // but cannot reach the latch (its jr has no successors), so it stays
        // out of the natural loop body — the paper's default treatment of
        // calls within loops (§7.2).
        let (cfg, _) = cfg_of(
            r#"
            .text
    main:   li $s0, 5
    loop:   jal helper
            addiu $s0, $s0, -1
            bgtz $s0, loop
            jr $ra
    helper: addiu $t0, $t0, 1
            jr $ra
    "#,
        );
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        let body: Vec<usize> = loops[0].body.iter().map(|b| b.0).collect();
        // Loop body: the jal block and the latch block only.
        assert_eq!(body.len(), 2);
        let helper_block = cfg.block_at(5);
        assert!(!loops[0].body.contains(&helper_block));
    }

    #[test]
    fn block_weights_from_profile() {
        let (cfg, program) = cfg_of(
            r#"
            .text
    main:   li $t0, 4
    loop:   addiu $t0, $t0, -1
            bgtz $t0, loop
            li $v0, 10
            syscall
    "#,
        );
        let mut cpu = imt_sim::Cpu::new(&program).unwrap();
        cpu.run(1000).unwrap();
        let weights = block_weights(&cfg, cpu.profile());
        // Loop block runs 4 times × 2 instructions.
        assert_eq!(weights[1], 8);
        let hot = hot_loops(&cfg, cpu.profile());
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].fetch_weight, 8);
        assert!(hot[0].fetch_share > 0.5);
    }

    #[test]
    fn unreachable_code_is_tolerated() {
        let (cfg, _) = cfg_of(
            r#"
            .text
    main:   j end
    dead:   addiu $t0, $t0, 1
            b dead
    end:    jr $ra
    "#,
        );
        let idom = cfg.immediate_dominators();
        let dead = cfg.block_at(1);
        assert_eq!(idom[dead.0], None);
        // The dead self-loop must not be reported (unreachable).
        let loops = cfg.natural_loops();
        assert!(loops.iter().all(|l| l.header != dead));
    }

    #[test]
    fn branch_to_self_is_a_unit_loop() {
        let (cfg, _) = cfg_of(".text\nmain: b main\n");
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].body.len(), 1);
    }

    #[test]
    fn empty_text_is_an_error() {
        let program = assemble(".text\n").unwrap();
        assert_eq!(Cfg::build(&program), Err(CfgError::EmptyText));
    }

    #[test]
    fn reachable_from_and_called_functions() {
        let (cfg, _) = cfg_of(
            r#"
            .text
    main:   li $s0, 5
    loop:   jal helper
            addiu $s0, $s0, -1
            bgtz $s0, loop
            jr $ra
    helper: beq $t0, $zero, hdone
            addiu $t0, $t0, -1
    hdone:  jr $ra
    "#,
        );
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        let callees = cfg.called_functions(&loops[0].body);
        assert_eq!(callees.len(), 1);
        let body = cfg.reachable_from(callees[0]);
        // The helper has three blocks: entry branch, decrement, return.
        assert_eq!(body.len(), 3);
        assert!(body.iter().all(|b| !loops[0].body.contains(b)));
    }

    #[test]
    fn block_addresses() {
        let (cfg, program) = cfg_of(".text\nmain: nop\nloop: b loop\n");
        assert_eq!(cfg.block_address(BlockId(1)), program.text_base + 4);
        assert_eq!(cfg.block_at(1), BlockId(1));
    }
}
