//! The CLI subcommands. Each returns the text to print.

use std::fmt::Write as _;

use imt_bitcode::tables::CodeTable;
use imt_bitcode::TransformSet;
use imt_cfg::{hot_loops, Cfg};
use imt_core::{encode_program, eval::evaluate, EncoderConfig};
use imt_isa::disasm::disassemble_word;
use imt_sim::Cpu;

use crate::container;
use crate::CliError;

/// Parses `--flag value` style options out of an argument list, returning
/// (positional, lookup).
struct Options<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

/// Flags that take a value; everything else starting with `--` is boolean.
const VALUE_FLAGS: &[&str] = &[
    "-o",
    "--max-steps",
    "--block-size",
    "--tt",
    "--bbit",
    "-k",
    "--trace",
    "--trace-head",
    "--trace-tail",
    "--emit-tables",
    "--plan",
    "--protection",
    "--targets",
    "--trials",
    "--seed",
    "--bits",
    "--window",
    "--workers",
    "--queue",
    "--max-batch",
    "--requests",
    "--block-sizes",
    "--deadline-ms",
    "--delivery-ms",
    "--results",
    "--listen",
    "--for-requests",
    "--tenant",
    "--tenant-quota",
    "--retries",
    "--reactors",
    "--repeat",
];

fn parse<'a>(args: &'a [String]) -> Options<'a> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg.starts_with('-') && arg.len() > 1 {
            if VALUE_FLAGS.contains(&arg.as_str()) {
                flags.push((arg.as_str(), iter.next().map(String::as_str)));
            } else {
                flags.push((arg.as_str(), None));
            }
        } else {
            positional.push(arg.as_str());
        }
    }
    Options { positional, flags }
}

impl Options<'_> {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(f, _)| *f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(f, _)| *f == name)
            .and_then(|(_, v)| *v)
    }

    fn numeric(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| CliError::new(format!("{name} expects a number, got `{text}`"))),
        }
    }

    fn input(&self) -> Result<&str, CliError> {
        self.positional
            .first()
            .copied()
            .ok_or_else(|| CliError::new("expected an input file"))
    }
}

fn encoder_config(opts: &Options<'_>) -> Result<EncoderConfig, CliError> {
    let mut config = EncoderConfig::default()
        .with_tt_capacity(opts.numeric("--tt", 16)? as usize)
        .with_bbit_capacity(opts.numeric("--bbit", 16)? as usize);
    config = config
        .with_block_size(opts.numeric("--block-size", 5)? as usize)
        .map_err(|e| CliError::new(e.to_string()))?;
    if opts.flag("--all-sixteen") {
        config = config.with_transforms(TransformSet::ALL_SIXTEEN)?;
    }
    Ok(config)
}

pub fn asm(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let path = opts.input()?;
    let source = std::fs::read_to_string(path)?;
    let program = imt_isa::asm::assemble(&source)?;
    let mut out = format!(
        "assembled {path}: {} instructions, {} data bytes, entry {:#010x}\n",
        program.text.len(),
        program.data.len(),
        program.entry
    );
    if let Some(output) = opts.value("-o") {
        std::fs::write(output, container::save(&program))?;
        writeln!(out, "wrote image to {output}").expect("write to String");
    } else if opts.flag("--listing") {
        out.push_str(&imt_isa::disasm::listing(&program));
    } else {
        for (name, address) in &program.symbols {
            writeln!(out, "  {address:#010x} {name}").expect("write to String");
        }
    }
    Ok(out)
}

pub fn dis(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let program = container::load_program(opts.input()?)?;
    let mut out = String::new();
    // Invert the symbol table for labelling.
    for (index, &word) in program.text.iter().enumerate() {
        let address = program.address_of_index(index);
        for (name, &sym_address) in &program.symbols {
            if sym_address == address {
                writeln!(out, "{name}:").expect("write to String");
            }
        }
        writeln!(
            out,
            "  {address:#010x}  {word:08x}  {}",
            disassemble_word(word)
        )
        .expect("write to String");
    }
    Ok(out)
}

pub fn run(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let program = container::load_program(opts.input()?)?;
    let max_steps = opts.numeric("--max-steps", 1_000_000_000)?;
    // `--trace N` keeps N fetches at each end; `--trace-head` /
    // `--trace-tail` override one end independently.
    let trace_depth = opts.numeric("--trace", 0)?;
    let head = opts.numeric("--trace-head", trace_depth)? as usize;
    let tail = opts.numeric("--trace-tail", trace_depth)? as usize;
    let mut cpu = Cpu::new(&program)?;
    let mut trace = imt_sim::trace::TraceRecorder::new(head, tail);
    let summary = cpu.run_with_sink(max_steps, &mut trace)?;
    let mut out = String::new();
    if head > 0 || tail > 0 {
        out.push_str(&trace.render());
    }
    out.push_str(cpu.stdout());
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    writeln!(
        out,
        "[exit {} after {} instructions]",
        summary.exit_code, summary.instructions
    )
    .expect("write to String");
    Ok(out)
}

pub fn profile(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let program = container::load_program(opts.input()?)?;
    let max_steps = opts.numeric("--max-steps", 1_000_000_000)?;
    let mut cpu = Cpu::new(&program)?;
    cpu.run(max_steps)?;
    let cfg = Cfg::build(&program).map_err(|e| CliError::new(e.to_string()))?;
    let loops = hot_loops(&cfg, cpu.profile());
    let mix = imt_sim::stats::InstructionMix::from_profile(&program, cpu.profile())
        .map_err(|e| CliError::new(e.to_string()))?;
    if imt_obs::enabled() {
        mix.publish_obs("profile");
    }
    let mut out = format!(
        "{} instructions executed, {} basic blocks, {} natural loops\n",
        cpu.instructions(),
        cfg.blocks().len(),
        loops.len()
    );
    out.push_str("instruction mix:\n");
    out.push_str(&mix.render());
    out.push_str("hottest loops:\n");
    for (rank, l) in loops.iter().take(10).enumerate() {
        writeln!(
            out,
            "  #{rank}: header {:#010x}, {} block(s), {} fetches ({:.1}% of all)",
            cfg.block_address(l.natural_loop.header),
            l.natural_loop.body.len(),
            l.fetch_weight,
            l.fetch_share * 100.0
        )
        .expect("write to String");
    }
    Ok(out)
}

pub fn encode(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let program = container::load_program(opts.input()?)?;
    let max_steps = opts.numeric("--max-steps", 1_000_000_000)?;
    let config = encoder_config(&opts)?;
    let mut cpu = Cpu::new(&program)?;
    cpu.run(max_steps)?;
    let encoded = encode_program(&program, cpu.profile(), &config)?;
    let eval = evaluate(&program, &encoded, max_steps)?;
    let mut out = format!(
        "block size {}, {} transforms, TT {}/{} entries, BBIT {}/{} entries\n",
        config.block_size(),
        config.transforms().len(),
        encoded.report.tt_used,
        config.tt_capacity(),
        encoded.report.bbit_used,
        config.bbit_capacity()
    );
    for info in &encoded.report.encoded {
        writeln!(
            out,
            "  encoded {:#010x} ({} instrs, {} TT entries, {} fetches)",
            info.start_pc, info.instructions, info.tt_count, info.fetch_weight
        )
        .expect("write to String");
    }
    writeln!(
        out,
        "bus transitions: {} -> {} ({:.1}% reduction over {} fetches, decoder verified)",
        eval.baseline_transitions,
        eval.encoded_transitions,
        eval.reduction_percent(),
        eval.fetches
    )
    .expect("write to String");
    if let Some(path) = opts.value("--emit-tables") {
        let image = imt_core::tableimage::pack_tables(&encoded)?;
        std::fs::write(path, &image)?;
        writeln!(out, "wrote {}-byte table image to {path}", image.len()).expect("write to String");
    }
    Ok(out)
}

pub fn schedule(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let program = container::load_program(opts.input()?)?;
    let max_steps = opts.numeric("--max-steps", 1_000_000_000)?;
    let config = encoder_config(&opts)?;
    let mut cpu = Cpu::new(&program)?;
    cpu.run(max_steps)?;
    let (scheduled, report) =
        imt_core::schedule::schedule_program(&program, cpu.profile(), &config)?;
    let mut out = format!(
        "scheduled {} of {} hot blocks; static encoded transitions {} -> {}\n",
        report.reordered, report.considered, report.encoded_before, report.encoded_after
    );
    if let Some(path) = opts.value("-o") {
        std::fs::write(path, container::save(&scheduled))?;
        writeln!(out, "wrote scheduled image to {path}").expect("write to String");
    }
    // Prove behaviour is unchanged as part of the command.
    let mut original = Cpu::new(&program)?;
    original.run(max_steps)?;
    let mut rescheduled = Cpu::new(&scheduled)?;
    rescheduled.run(max_steps)?;
    if original.stdout() != rescheduled.stdout() {
        return Err(CliError::new(
            "internal error: scheduling changed program output",
        ));
    }
    writeln!(out, "verified: scheduled program output is identical").expect("write to String");
    Ok(out)
}

pub fn analyze(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let program = container::load_program(opts.input()?)?;
    let max_steps = opts.numeric("--max-steps", 1_000_000_000)?;
    let config = encoder_config(&opts)?;
    let mut cpu = Cpu::new(&program)?;
    cpu.run(max_steps)?;
    let encoded = encode_program(&program, cpu.profile(), &config)?;
    let eval = evaluate(&program, &encoded, max_steps)?;
    let words: Vec<u64> = program.text.iter().map(|&w| w as u64).collect();
    let stats = imt_bitcode::analysis::analyze_lanes(&words, 32);
    let mut out = String::from("static per-lane structure of the text segment:\n");
    out.push_str(&imt_bitcode::analysis::render_lane_table(&stats));
    out.push_str("\ndynamic per-lane transitions (baseline -> encoded):\n");
    for lane in 0..32 {
        let before = eval.per_lane_baseline[lane];
        let after = eval.per_lane_encoded[lane];
        let reduction = if before == 0 {
            0.0
        } else {
            (before as f64 - after as f64) / before as f64 * 100.0
        };
        writeln!(
            out,
            "  lane {lane:>2}: {before:>10} -> {after:>10}  ({reduction:>5.1}%)"
        )
        .expect("write to String");
    }
    let budget = imt_core::hardware::HardwareBudget::of_schedule(&encoded);
    writeln!(
        out,
        "hardware budget: {} bytes of tables, ~{} restore gates",
        budget.total_bytes(),
        budget.restore_gates
    )
    .expect("write to String");
    writeln!(out, "total reduction: {:.1}%", eval.reduction_percent()).expect("write to String");
    Ok(out)
}

pub fn tables(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    let k = opts.numeric("-k", opts.numeric("--block-size", 5)?)? as usize;
    let set = if opts.flag("--all-sixteen") {
        TransformSet::ALL_SIXTEEN
    } else {
        TransformSet::CANONICAL_EIGHT
    };
    let table = CodeTable::build(k, set).map_err(|e| CliError::new(e.to_string()))?;
    let mut out = table.render();
    writeln!(
        out,
        "TTN = {}  RTN = {}  improvement = {:.1}%",
        table.total_transitions(),
        table.reduced_transitions(),
        table.improvement_percent()
    )
    .expect("write to String");
    Ok(out)
}

pub fn obs(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    match opts.positional.first().copied() {
        Some("check") => obs_check(opts.positional.get(1).copied()),
        Some("report") => obs_report(opts.positional.get(1).copied()),
        Some("trace") if opts.positional.get(1).copied() == Some("export") => {
            obs_trace_export(opts.positional.get(2).copied(), opts.value("-o"))
        }
        Some("regress") => obs_regress(&opts),
        _ => Err(CliError::new(
            "usage: imt obs check [dir] | imt obs report <manifest.json> \
             | imt obs trace export [dir | manifest.json] [-o out.json] \
             | imt obs regress [--results DIR] [--window N]",
        )),
    }
}

/// Converts the trace sections of one manifest (or every traced manifest
/// in a directory; default: the active obs directory) into one Chrome
/// trace-event JSON file loadable by `chrome://tracing` and Perfetto.
fn obs_trace_export(input: Option<&str>, out_path: Option<&str>) -> Result<String, CliError> {
    use imt_obs::json::Json;
    let input = input
        .map(std::path::PathBuf::from)
        .unwrap_or_else(imt_obs::manifest::obs_dir);
    let paths: Vec<std::path::PathBuf> = if input.is_file() {
        vec![input.clone()]
    } else {
        let mut paths: Vec<_> = std::fs::read_dir(&input)
            .map_err(|e| CliError::new(format!("cannot read {}: {e}", input.display())))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        paths
    };
    let mut runs: Vec<(String, Vec<imt_obs::trace::TraceEvent>)> = Vec::new();
    let mut dropped = 0u64;
    let mut skipped = 0usize;
    for path in &paths {
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text)
            .map_err(|e| CliError::new(format!("{}: not valid JSON: {e}", path.display())))?;
        imt_obs::manifest::validate(&doc)
            .map_err(|e| CliError::new(format!("{}: {e}", path.display())))?;
        let Some(section) = doc.get("trace") else {
            skipped += 1;
            continue;
        };
        let (events, run_dropped) = imt_obs::trace::events_from_json(section)
            .map_err(|e| CliError::new(format!("{}: {e}", path.display())))?;
        dropped += run_dropped;
        let run = doc.get("run").and_then(Json::as_str).unwrap_or("?");
        let status = doc.get("status").and_then(Json::as_str).unwrap_or("");
        let run = if status == "aborted" {
            format!("{run} (aborted)")
        } else {
            run.to_string()
        };
        runs.push((run, events));
    }
    if runs.is_empty() {
        return Err(CliError::new(format!(
            "no manifest with a trace section under {} — run with IMT_OBS=trace first",
            input.display()
        )));
    }
    let spans: usize = runs
        .iter()
        .map(|(_, events)| {
            events
                .iter()
                .filter(|e| e.kind == imt_obs::trace::TraceKind::Span)
                .count()
        })
        .sum();
    let total: usize = runs.iter().map(|(_, events)| events.len()).sum();
    let chrome = imt_obs::trace::chrome_trace(&runs);
    // Self-check before writing: the artifact must be loadable.
    imt_obs::trace::validate_chrome(&chrome).map_err(CliError::new)?;
    let out_path = std::path::PathBuf::from(out_path.unwrap_or("trace.json"));
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&out_path, chrome.render_pretty() + "\n")?;
    let mut out = format!(
        "exported {total} trace event(s) ({spans} spans) from {} run(s) to {}\n",
        runs.len(),
        out_path.display()
    );
    if dropped > 0 {
        writeln!(out, "warning: {dropped} event(s) were dropped at capture").expect("write");
    }
    if skipped > 0 {
        writeln!(
            out,
            "{skipped} manifest(s) had no trace section (not IMT_OBS=trace runs)"
        )
        .expect("write");
    }
    writeln!(
        out,
        "load it in chrome://tracing or https://ui.perfetto.dev"
    )
    .expect("write");
    Ok(out)
}

/// Compares the current `BENCH_*.json` artifacts against the recorded
/// perf history, failing (nonzero exit) on any out-of-tolerance
/// regression. The CI gate behind `imt obs regress`.
fn obs_regress(opts: &Options<'_>) -> Result<String, CliError> {
    let results = std::path::PathBuf::from(opts.value("--results").unwrap_or("results"));
    let window = opts.numeric("--window", imt_bench::history::DEFAULT_WINDOW as u64)? as usize;
    let history = imt_bench::history::read_history(&results).map_err(CliError::new)?;
    if history.is_empty() {
        return Ok(format!(
            "no perf history at {} — run `imt bench --record` to start one\n",
            results.join(imt_bench::history::FILE).display()
        ));
    }
    let docs = imt_bench::history::load_docs(&results).map_err(CliError::new)?;
    let current = imt_bench::history::summarize(&docs).map_err(CliError::new)?;
    let checks = imt_bench::history::regress(&history, &current, window);
    let scale = current
        .get("scale")
        .and_then(imt_obs::json::Json::as_str)
        .unwrap_or("?");
    let mut out = format!(
        "perf regress: {} metric(s) vs median of last {} same-scale ({scale}) entries of {}\n",
        checks.len(),
        window,
        history.len()
    );
    let mut regressions = Vec::new();
    for check in &checks {
        let direction = if check.policy.higher_is_better {
            "min"
        } else {
            "max"
        };
        let verdict = if check.regressed { "FAIL" } else { "ok  " };
        writeln!(
            out,
            "  {verdict}  {:<30} current {:>12.3}  baseline {:>12.3} ({} samples, {direction} {:.3})",
            check.metric, check.current, check.baseline, check.samples, check.bound()
        )
        .expect("write to String");
        if check.regressed {
            regressions.push(check.metric.clone());
        }
    }
    if checks.is_empty() {
        writeln!(
            out,
            "no overlapping metrics between current artifacts and history — nothing to compare"
        )
        .expect("write to String");
    }
    if regressions.is_empty() {
        writeln!(out, "no regressions").expect("write to String");
        Ok(out)
    } else {
        Err(CliError::new(format!(
            "{out}performance regression in {}: {}",
            results.display(),
            regressions.join(", ")
        )))
    }
}

/// Validates every `*.json` manifest in `dir` (default: the active obs
/// directory) against the `imt-obs/v1` schema. Any invalid manifest makes
/// the command fail — this is the CI gate behind `imt obs check`.
fn obs_check(dir: Option<&str>) -> Result<String, CliError> {
    use imt_obs::json::Json;
    let dir = dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(imt_obs::manifest::obs_dir);
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| CliError::new(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::new(format!(
            "no manifests (*.json) in {}",
            dir.display()
        )));
    }
    let mut out = String::new();
    let mut failures = Vec::new();
    let mut aborted = 0usize;
    for path in &paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
            .and_then(|doc| imt_obs::manifest::validate(&doc).map(|()| doc));
        match verdict {
            Ok(doc) => {
                let count = |key: &str| {
                    doc.get(key)
                        .and_then(Json::as_array)
                        .map_or(0, |items| items.len())
                };
                // An aborted manifest is schema-valid — it was flushed
                // on purpose by the crash guard — but worth flagging:
                // the run it describes never finished.
                let status = doc.get("status").and_then(Json::as_str);
                let tag = if status == Some("aborted") {
                    aborted += 1;
                    "ABRT"
                } else {
                    "ok  "
                };
                writeln!(
                    out,
                    "  {tag}  {name}  ({} metrics, {} events)",
                    count("metrics"),
                    count("events")
                )
                .expect("write to String");
            }
            Err(error) => {
                writeln!(out, "  FAIL  {name}: {error}").expect("write to String");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        writeln!(
            out,
            "{} manifest(s) valid against {}",
            paths.len(),
            imt_obs::manifest::SCHEMA
        )
        .expect("write to String");
        if aborted > 0 {
            writeln!(
                out,
                "warning: {aborted} aborted run(s) — crashed before finish_run; rerun or delete"
            )
            .expect("write to String");
        }
        Ok(out)
    } else {
        Err(CliError::new(format!(
            "{out}{} of {} manifest(s) invalid in {}",
            failures.len(),
            paths.len(),
            dir.display()
        )))
    }
}

/// Summarises one manifest file: run identity, caller sections, and the
/// counters/gauges/spans it captured.
fn obs_report(path: Option<&str>) -> Result<String, CliError> {
    use imt_obs::json::Json;
    let path = path.ok_or_else(|| CliError::new("usage: imt obs report <manifest.json>"))?;
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| CliError::new(format!("{path}: not valid JSON: {e}")))?;
    imt_obs::manifest::validate(&doc).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    let run = doc.get("run").and_then(Json::as_str).unwrap_or("?");
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_array)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .map_or(0, |e| e.len());
    let mut out = format!(
        "run `{run}` ({} metrics, {events} events, schema {})\n",
        metrics.len(),
        imt_obs::manifest::SCHEMA
    );
    if let Json::Obj(pairs) = &doc {
        let sections: Vec<&str> = pairs
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| !matches!(*k, "schema" | "run" | "metrics" | "events"))
            .collect();
        if !sections.is_empty() {
            writeln!(out, "sections: {}", sections.join(", ")).expect("write to String");
        }
    }
    for (kind, header) in [
        ("counter", "counters"),
        ("gauge", "gauges"),
        ("histogram", "histograms"),
        ("span", "spans"),
    ] {
        let group: Vec<&Json> = metrics
            .iter()
            .filter(|m| m.get("kind").and_then(Json::as_str) == Some(kind))
            .collect();
        if group.is_empty() {
            continue;
        }
        writeln!(out, "{header}:").expect("write to String");
        for metric in group {
            let name = metric.get("name").and_then(Json::as_str).unwrap_or("?");
            let label = metric.get("label").and_then(Json::as_str).unwrap_or("");
            let slot = if label.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{label}}}")
            };
            let field = |key: &str| metric.get(key).and_then(Json::as_u64).unwrap_or(0);
            match kind {
                "counter" | "gauge" => {
                    writeln!(out, "  {slot} = {}", field("value")).expect("write to String");
                }
                "histogram" => {
                    writeln!(
                        out,
                        "  {slot}: count={} sum={} min={} max={}",
                        field("count"),
                        field("sum"),
                        field("min"),
                        field("max")
                    )
                    .expect("write to String");
                }
                _ => {
                    let count = field("count");
                    let total = field("total_ns");
                    let mean = total.checked_div(count).unwrap_or(0);
                    writeln!(
                        out,
                        "  {slot}: count={count} total={:.3}ms mean={:.3}ms",
                        total as f64 / 1e6,
                        mean as f64 / 1e6
                    )
                    .expect("write to String");
                }
            }
        }
    }
    Ok(out)
}

pub fn kernels(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    match opts.positional.first() {
        None => {
            let mut out = String::from("paper benchmarks (add a name to run at test scale):\n");
            for kernel in imt_kernels::Kernel::ALL {
                let spec = kernel.paper_spec();
                writeln!(out, "  {:<6} paper instance: {}", kernel.name(), spec.name)
                    .expect("write to String");
            }
            Ok(out)
        }
        Some(name) => {
            let kernel = imt_kernels::Kernel::ALL
                .into_iter()
                .find(|k| k.name() == *name)
                .ok_or_else(|| CliError::new(format!("unknown kernel `{name}`")))?;
            let spec = if opts.flag("--paper-scale") {
                kernel.paper_spec()
            } else {
                kernel.test_spec()
            };
            let run = spec.run()?;
            let verified = run.stdout == spec.expected_output;
            Ok(format!(
                "{}: {} instructions, output {:?}, golden model match: {verified}\n",
                spec.name,
                run.instructions,
                run.stdout.trim_end()
            ))
        }
    }
}

pub fn bench(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    // The runner consults the process environment/arguments, so a flag on
    // `imt bench` maps onto the same switch the experiment binaries use.
    if opts.flag("--no-profile-cache") {
        std::env::set_var(imt_core::profile_cache::MODE_ENV, "off");
    }
    let scale = if opts.flag("--test-scale") {
        imt_bench::runner::Scale::Test
    } else {
        imt_bench::runner::Scale::Paper
    };
    let grid = imt_bench::runner::figure6_grid(scale);
    let mut table = imt_bench::table::Table::new(
        ["kernel", "baseline (M)", "k=4", "k=5", "k=6", "k=7"]
            .map(String::from)
            .to_vec(),
    );
    for row in &grid {
        let mut cells = vec![
            row[0].instance.clone(),
            format!("{:.2}", row[0].baseline_millions()),
        ];
        cells.extend(
            row.iter()
                .map(|point| format!("{:.1}%", point.reduction_percent())),
        );
        table.row(cells);
    }
    let mut out = format!(
        "figure 6 grid at {scale:?} scale (replay evaluation, profile cache {}):\n",
        if imt_bench::runner::profile_cache_enabled() {
            "on"
        } else {
            "off"
        }
    );
    out.push_str(&table.render());
    // The perf-history sentinel: summarise whatever BENCH_*.json
    // artifacts are on disk (stamped with *their* scale, not this run's
    // flags) and append one history entry for `imt obs regress`.
    if opts.flag("--record") {
        let results = std::path::PathBuf::from(opts.value("--results").unwrap_or("results"));
        let docs = imt_bench::history::load_docs(&results).map_err(CliError::new)?;
        let entry = imt_bench::history::summarize(&docs).map_err(CliError::new)?;
        let (path, n) = imt_bench::history::append(&results, &entry).map_err(CliError::new)?;
        let metrics = entry
            .get("metrics")
            .and_then(imt_obs::json::Json::as_object)
            .map_or(0, <[_]>::len);
        writeln!(
            out,
            "recorded history entry #{n} ({} scale, {metrics} metric(s)) -> {}",
            entry
                .get("scale")
                .and_then(imt_obs::json::Json::as_str)
                .unwrap_or("?"),
            path.display()
        )
        .expect("write to String");
    }
    Ok(out)
}

pub fn arena(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    match opts.positional.first().copied() {
        Some("run") => arena_run(&opts),
        Some("report") => arena_report(opts.positional.get(1).copied()),
        _ => Err(CliError::new(
            "usage: imt arena run [--test-scale] [--results DIR] |\n\
             \x20      imt arena report [BENCH_arena.json]",
        )),
    }
}

/// `imt arena run`: score every scheme on every kernel and refresh
/// `results/BENCH_arena.json` (same artifact `exp_arena` writes).
fn arena_run(opts: &Options<'_>) -> Result<String, CliError> {
    let scale = if opts.flag("--test-scale") {
        imt_bench::runner::Scale::Test
    } else {
        imt_bench::runner::Scale::Paper
    };
    let grid = imt_bench::arena::arena_grid(scale);
    let mut out = format!("encoder arena at {scale:?} scale:\n");
    for arena in &grid {
        writeln!(
            out,
            "\n{} — {} fetches, {} baseline transitions, budget {} bits",
            arena.instance, arena.fetches, arena.baseline_transitions, arena.budget_bits
        )
        .expect("write to String");
        let mut table = imt_bench::table::Table::new(
            ["scheme", "bits", "encoded", "reduction", "path", "front"]
                .map(String::from)
                .to_vec(),
        );
        for row in &arena.rows {
            table.row(vec![
                row.label.clone(),
                row.storage_bits.to_string(),
                row.evaluation.encoded_transitions.to_string(),
                format!("{:.2}%", row.reduction_percent()),
                row.path.to_string(),
                if row.pareto { "*" } else { "" }.to_string(),
            ]);
        }
        out.push_str(&table.render());
        writeln!(
            out,
            "best single: {} ({:.2}%); auto-select: {} ({:.2}%, {} bits, donor {})",
            arena.best_row().label,
            arena.best_row().reduction_percent(),
            arena.auto.winner,
            arena.auto.reduction_percent(),
            arena.auto.selection.bits_used,
            arena.auto.tt_donor
        )
        .expect("write to String");
    }
    let results = std::path::PathBuf::from(opts.value("--results").unwrap_or("results"));
    let doc = imt_bench::arena::arena_doc(&grid, scale);
    std::fs::create_dir_all(&results)?;
    let path = results.join("BENCH_arena.json");
    std::fs::write(&path, format!("{}\n", doc.render_pretty()))?;
    writeln!(out, "\nwrote {}", path.display()).expect("write to String");
    Ok(out)
}

/// `imt arena report`: summarise an existing `BENCH_arena.json`.
fn arena_report(path: Option<&str>) -> Result<String, CliError> {
    use imt_obs::json::Json;
    let path = path.unwrap_or("results/BENCH_arena.json");
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| CliError::new(format!("{path}: not valid JSON: {e}")))?;
    let kernels = doc
        .get("kernels")
        .and_then(Json::as_array)
        .ok_or_else(|| CliError::new(format!("{path}: missing `kernels` array")))?;
    let scale = doc.get("scale").and_then(Json::as_str).unwrap_or("?");
    let mut out = format!("{path}: {} kernel(s) at {scale} scale\n", kernels.len());
    for kernel in kernels {
        let get_str = |j: &Json, key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| "?".to_string())
        };
        let reduction = |j: &Json| {
            j.get("reduction_percent")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN)
        };
        let instance = get_str(kernel, "instance");
        let best = kernel
            .get("best_single")
            .ok_or_else(|| CliError::new(format!("{path}: {instance}: missing `best_single`")))?;
        let auto = kernel
            .get("auto")
            .ok_or_else(|| CliError::new(format!("{path}: {instance}: missing `auto`")))?;
        let front: Vec<String> = kernel
            .get("rows")
            .and_then(Json::as_array)
            .map(|rows| {
                rows.iter()
                    .filter(|r| r.get("pareto").and_then(Json::as_bool) == Some(true))
                    .map(|r| get_str(r, "label"))
                    .collect()
            })
            .unwrap_or_default();
        writeln!(
            out,
            "  {:<12} best {} {:.2}%  auto {} {:.2}% (donor {})  front: {}",
            instance,
            get_str(best, "label"),
            reduction(best),
            get_str(auto, "winner"),
            reduction(auto),
            get_str(auto, "tt_donor"),
            front.join(" ")
        )
        .expect("write to String");
    }
    Ok(out)
}

pub fn cache(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        None | Some("stats") => {
            let stats = imt_core::profile_cache::stats();
            let state = if imt_core::profile_cache::enabled() {
                "enabled"
            } else {
                "disabled (IMT_PROFILE_CACHE=off)"
            };
            Ok(format!(
                "profile cache: {state}\n  dir:     {}\n  entries: {}\n  bytes:   {}\n",
                stats.dir.display(),
                stats.entries,
                stats.bytes
            ))
        }
        Some("clear") => {
            let dir = imt_core::profile_cache::stats().dir;
            let removed = imt_core::profile_cache::clear()?;
            Ok(format!(
                "removed {removed} cached profile(s) from {}\n",
                dir.display()
            ))
        }
        Some(other) => Err(CliError::new(format!(
            "unknown cache subcommand `{other}` (expected `stats` or `clear`)"
        ))),
    }
}

pub fn fault(args: &[String]) -> Result<String, CliError> {
    let opts = parse(args);
    match opts.positional.first().copied() {
        Some("inject") => fault_inject(&opts),
        Some("campaign") => fault_campaign(&opts),
        Some("report") => fault_report(opts.positional.get(1).copied()),
        _ => Err(CliError::new(
            "usage: imt fault inject <file> --plan AT:TARGET[,..] [--protection P] |\n\
             \x20      imt fault campaign <file> [--trials N] [--seed S] [--protection P|all]\n\
             \x20          [--targets tables|text|bus] [--bits N] |\n\
             \x20      imt fault report [BENCH_fault.json]",
        )),
    }
}

/// Shared front half of `fault inject` / `fault campaign`: simulate,
/// encode with the standard encoder flags, and record the fetch trace the
/// faults replay against.
fn fault_prepare(
    opts: &Options<'_>,
) -> Result<(imt_core::EncodedProgram, imt_fault::trace::FetchTrace), CliError> {
    let path = opts
        .positional
        .get(1)
        .copied()
        .ok_or_else(|| CliError::new("expected an input file after the fault subcommand"))?;
    let program = container::load_program(path)?;
    let max_steps = opts.numeric("--max-steps", 1_000_000_000)?;
    let window = opts.numeric("--window", 50_000)? as usize;
    let config = encoder_config(opts)?;
    let mut cpu = Cpu::new(&program)?;
    cpu.run(max_steps)?;
    let encoded = encode_program(&program, cpu.profile(), &config)?;
    let trace = imt_fault::trace::FetchTrace::record(&program, &encoded, max_steps, window)
        .map_err(|e| CliError::new(e.to_string()))?;
    Ok((encoded, trace))
}

fn fault_protection(opts: &Options<'_>, default: &str) -> Result<imt_core::Protection, CliError> {
    let name = opts.value("--protection").unwrap_or(default);
    imt_core::Protection::parse(name).ok_or_else(|| {
        CliError::new(format!(
            "--protection expects none|parity|sec, got `{name}`"
        ))
    })
}

/// Replays one explicit fault plan and reports exactly what happened.
fn fault_inject(opts: &Options<'_>) -> Result<String, CliError> {
    let plan_spec = opts
        .value("--plan")
        .ok_or_else(|| CliError::new("fault inject requires --plan AT:TARGET[,AT:TARGET...]"))?;
    let plan =
        imt_fault::plan::FaultPlan::parse(plan_spec).map_err(|e| CliError::new(e.to_string()))?;
    let protection = fault_protection(opts, "parity")?;
    let (encoded, trace) = fault_prepare(opts)?;
    let outcome = imt_fault::trace::replay(&trace, &encoded, protection, &plan)
        .map_err(|e| CliError::new(e.to_string()))?;
    let mut out = format!(
        "protection {protection}, {} fetches replayed, {} fault(s) applied:\n",
        outcome.fetches, outcome.injected
    );
    for f in plan.faults() {
        writeln!(out, "  fetch {:>8}: {}", f.at_fetch, f.target).expect("write to String");
    }
    writeln!(
        out,
        "corrected {} entries, detected {} entries, {} fetches degraded to original words",
        outcome.corrected, outcome.detected, outcome.degraded_fetches
    )
    .expect("write to String");
    writeln!(
        out,
        "bus transitions {} -> {} ({:.2}% reduction retained)",
        outcome.baseline_transitions,
        outcome.bus_transitions,
        outcome.reduction_percent()
    )
    .expect("write to String");
    let verdict = if outcome.wrong_words > 0 {
        format!(
            "SILENT CORRUPTION: {} wrong word(s) reached the core",
            outcome.wrong_words
        )
    } else if outcome.degraded_fetches > 0 || outcome.detected > 0 {
        "degraded gracefully: zero wrong words reached the core".to_string()
    } else if outcome.corrected > 0 {
        "corrected in place: full reduction kept, zero wrong words".to_string()
    } else {
        "no observable effect".to_string()
    };
    writeln!(out, "verdict: {verdict}").expect("write to String");
    Ok(out)
}

/// Runs a seeded upset campaign; `--protection all` sweeps every level.
fn fault_campaign(opts: &Options<'_>) -> Result<String, CliError> {
    let targets_name = opts.value("--targets").unwrap_or("tables");
    let targets = imt_fault::plan::TargetClass::parse(targets_name).ok_or_else(|| {
        CliError::new(format!(
            "--targets expects tables|text|bus, got `{targets_name}`"
        ))
    })?;
    let levels: Vec<imt_core::Protection> = if opts.value("--protection") == Some("all") {
        imt_core::Protection::ALL.to_vec()
    } else {
        vec![fault_protection(opts, "none")?]
    };
    let trials = opts.numeric("--trials", 32)? as usize;
    let seed = opts.numeric("--seed", 0x1317_2003)?;
    let bits = opts.numeric("--bits", 1)? as usize;
    let (encoded, trace) = fault_prepare(opts)?;
    let mut out = format!(
        "{trials} trial(s) of {bits} {targets_name} upset bit(s) over {} recorded fetches (seed {seed:#x}):\n",
        trace.len()
    );
    writeln!(
        out,
        "{:<10}  {:>6}  {:>9}  {:>8}  {:>6}  {:>8}  {:>9}  {:>12}",
        "protection",
        "benign",
        "corrected",
        "degraded",
        "silent",
        "SDC rate",
        "coverage%",
        "retained red%"
    )
    .expect("write to String");
    for protection in levels {
        let spec = imt_fault::campaign::CampaignSpec {
            trials,
            seed,
            protection,
            targets,
            bits_per_trial: bits,
        };
        let s = imt_fault::campaign::run_campaign(&trace, &encoded, &spec)
            .map_err(|e| CliError::new(e.to_string()))?;
        writeln!(
            out,
            "{:<10}  {:>6}  {:>9}  {:>8}  {:>6}  {:>8.3}  {:>9.1}  {:>12.2}",
            protection.name(),
            s.benign,
            s.corrected,
            s.degraded,
            s.silent,
            s.sdc_rate(),
            s.coverage() * 100.0,
            s.retained_reduction_percent,
        )
        .expect("write to String");
    }
    Ok(out)
}

/// Summarises a `BENCH_fault.json` produced by the `exp_fault` experiment.
fn fault_report(path: Option<&str>) -> Result<String, CliError> {
    use imt_obs::json::Json;
    let path = path.unwrap_or("results/BENCH_fault.json");
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| CliError::new(format!("{path}: not valid JSON: {e}")))?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or_else(|| CliError::new(format!("{path}: missing `cells` array")))?;
    let mut out = format!("{path}: {} campaign cell(s)\n", cells.len());
    for protection in imt_core::Protection::ALL {
        let group: Vec<&Json> = cells
            .iter()
            .filter(|c| c.get("protection").and_then(Json::as_str) == Some(protection.name()))
            .collect();
        if group.is_empty() {
            continue;
        }
        let sum = |key: &str| -> u64 {
            group
                .iter()
                .map(|c| c.get(key).and_then(Json::as_u64).unwrap_or(0))
                .sum()
        };
        let mean = |key: &str| -> f64 {
            group
                .iter()
                .filter_map(|c| c.get(key).and_then(Json::as_f64))
                .sum::<f64>()
                / group.len() as f64
        };
        let trials = sum("trials");
        let silent = sum("silent");
        writeln!(
            out,
            "  {:<6}  {} cells, {} trials: {} silent ({:.1}% SDC), {} corrected, {} degraded; \
             mean retained reduction {:.2}% of clean {:.2}%",
            protection.name(),
            group.len(),
            trials,
            silent,
            if trials == 0 {
                0.0
            } else {
                silent as f64 / trials as f64 * 100.0
            },
            sum("corrected"),
            sum("degraded"),
            mean("retained_reduction_percent"),
            mean("clean_reduction_percent"),
        )
        .expect("write to String");
    }
    let protected_silent: u64 = cells
        .iter()
        .filter(|c| c.get("protection").and_then(Json::as_str) != Some("none"))
        .map(|c| c.get("silent").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    writeln!(
        out,
        "verdict: {}",
        if protected_silent == 0 {
            "no silent corruption under any protected cell"
        } else {
            "SILENT CORRUPTION under a protected cell — investigate"
        }
    )
    .expect("write to String");
    Ok(out)
}

/// Scale switch shared by the service commands: the paper instances by
/// default, `--test-scale` for the small ones (mirrors `imt bench`).
fn serve_scale(opts: &Options<'_>) -> imt_bench::runner::Scale {
    if opts.flag("--test-scale") {
        imt_bench::runner::Scale::Test
    } else {
        imt_bench::runner::Scale::Paper
    }
}

/// Resolves positional kernel names (empty → all six paper kernels).
fn resolve_kernels(names: &[&str]) -> Result<Vec<imt_kernels::Kernel>, CliError> {
    if names.is_empty() {
        return Ok(imt_kernels::Kernel::ALL.to_vec());
    }
    names
        .iter()
        .map(|name| {
            imt_kernels::Kernel::ALL
                .into_iter()
                .find(|k| k.name() == *name)
                .ok_or_else(|| CliError::new(format!("unknown kernel `{name}`")))
        })
        .collect()
}

/// Parses `--block-sizes 4,5,7` style lists.
fn parse_block_sizes(list: &str) -> Result<Vec<usize>, CliError> {
    list.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| CliError::new(format!("--block-sizes expects numbers, got `{part}`")))
        })
        .collect()
}

/// `imt batch`: submit kernel × block-size encode/eval requests through
/// the `imt-serve` service and print each result as it is answered.
pub fn batch(args: &[String]) -> Result<String, CliError> {
    use imt_serve::request::Request;
    use imt_serve::service::{Service, ServiceConfig};

    let opts = parse(args);
    let scale = serve_scale(&opts);
    let kernels = resolve_kernels(&opts.positional)?;
    let block_sizes = parse_block_sizes(opts.value("--block-sizes").unwrap_or("4,5,6,7"))?;
    let workers = opts.numeric("--workers", 2)? as usize;
    let jobs = kernels.len() * block_sizes.len();
    let service = Service::start(
        ServiceConfig::default()
            .with_workers(workers)
            .with_queue_capacity(jobs.max(1))
            .with_max_batch(block_sizes.len().max(1)),
    );
    let mut tickets = Vec::with_capacity(jobs);
    for &kernel in &kernels {
        for &k in &block_sizes {
            let config = EncoderConfig::default()
                .with_block_size(k)
                .map_err(|e| CliError::new(e.to_string()))?;
            let request = Request::new(scale.spec(kernel), config);
            tickets.push(
                service
                    .submit(request)
                    .map_err(|e| CliError::new(e.to_string()))?,
            );
        }
    }
    let mut table = imt_bench::table::Table::new(
        [
            "kernel",
            "k",
            "reduction%",
            "blocks",
            "batch",
            "queue ms",
            "service ms",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut failures: Vec<String> = Vec::new();
    for ticket in tickets {
        let response = ticket.wait();
        match &response.outcome {
            Ok(done) => table.row(vec![
                response.kernel.clone(),
                response.block_size.to_string(),
                format!("{:.2}", done.evaluation.reduction_percent()),
                done.encoded_blocks.to_string(),
                response.batch_size.to_string(),
                format!("{:.1}", response.queue_ns as f64 / 1e6),
                format!("{:.1}", response.service_ns as f64 / 1e6),
            ]),
            Err(e) => failures.push(format!(
                "{} k={}: {e}",
                response.kernel, response.block_size
            )),
        }
    }
    let stats = service.stats();
    service.shutdown();
    let mut out = format!(
        "batched {jobs} encode/eval request(s) over {workers} worker(s) ({} scale):\n",
        scale.name()
    );
    out.push_str(&table.render());
    writeln!(
        out,
        "served in {} batch(es), mean batch size {:.2}",
        stats.batches,
        stats.mean_batch_size()
    )
    .expect("write to String");
    for failure in &failures {
        writeln!(out, "FAILED: {failure}").expect("write to String");
    }
    Ok(out)
}

/// `imt serve`: run a closed-loop load session against an in-process
/// service and report throughput, latency percentiles, and batching.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    use imt_serve::request::Request;
    use imt_serve::service::{Admission, Service, ServiceConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let opts = parse(args);
    let scale = serve_scale(&opts);
    let workers = opts.numeric("--workers", 2)? as usize;
    let queue = opts.numeric("--queue", 32)? as usize;
    let max_batch = opts.numeric("--max-batch", 8)? as usize;
    let requests = opts.numeric("--requests", 24)? as usize;
    let deadline_ms = opts.numeric("--deadline-ms", 0)?;
    let delivery_ms = opts.numeric("--delivery-ms", 0)?;
    let admission = if opts.flag("--reject") {
        Admission::Reject
    } else {
        Admission::Block
    };
    let mut config = ServiceConfig::default()
        .with_workers(workers)
        .with_queue_capacity(queue)
        .with_max_batch(max_batch)
        .with_admission(admission);
    if delivery_ms > 0 {
        config = config.with_delivery_latency(std::time::Duration::from_millis(delivery_ms));
    }
    if deadline_ms > 0 {
        config = config.with_default_deadline(std::time::Duration::from_millis(deadline_ms));
    }
    let tenant_quota = opts.numeric("--tenant-quota", 0)? as usize;
    if tenant_quota > 0 {
        config = config.with_tenant_quota(tenant_quota);
    }
    if let Some(addr) = opts.value("--listen") {
        return serve_listen(&opts, config, addr);
    }
    let service = Service::start(config);

    // Deterministic request sequence: kernels × block sizes 4–7, cycled.
    let cells: Vec<(imt_kernels::Kernel, usize)> = imt_kernels::Kernel::ALL
        .iter()
        .flat_map(|&kernel| (4..=7).map(move |k| (kernel, k)))
        .collect();
    let next = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(requests));
    let clients = workers.max(4).min(requests.max(1));
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    break;
                }
                let (kernel, k) = cells[i % cells.len()];
                let config = EncoderConfig::default()
                    .with_block_size(k)
                    .expect("block sizes 4..=7 are valid");
                match service.submit(Request::new(scale.spec(kernel), config)) {
                    Ok(ticket) => {
                        let response = ticket.wait();
                        latencies
                            .lock()
                            .expect("latency collection lock")
                            .push(response.latency_ns());
                    }
                    Err(imt_serve::ServeError::Overloaded { .. }) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => break,
                }
            });
        }
    });
    let wall = started.elapsed();
    let stats = service.stats();
    service.shutdown();

    let mut latencies = latencies.into_inner().expect("latency collection lock");
    latencies.sort_unstable();
    let pct = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
            latencies[rank] as f64 / 1e6
        }
    };
    let mut out = format!(
        "closed-loop session, {requests} request(s), {clients} client(s), {} scale:\n\
         \x20 workers={workers} queue={queue} max-batch={max_batch} admission={}\n",
        scale.name(),
        match admission {
            Admission::Block => "block",
            Admission::Reject => "reject",
        },
    );
    writeln!(
        out,
        "  completed = {}, failed = {}, rejected = {}",
        stats.completed,
        stats.failed,
        rejected.load(Ordering::Relaxed)
    )
    .expect("write to String");
    writeln!(
        out,
        "  wall = {:.0} ms, throughput = {:.1} req/s",
        wall.as_secs_f64() * 1e3,
        stats.completed as f64 / wall.as_secs_f64()
    )
    .expect("write to String");
    writeln!(
        out,
        "  latency p50/p90/p99 = {:.1}/{:.1}/{:.1} ms",
        pct(50.0),
        pct(90.0),
        pct(99.0)
    )
    .expect("write to String");
    writeln!(
        out,
        "  batches = {} (mean size {:.2}), peak queue depth = {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.peak_depth
    )
    .expect("write to String");
    Ok(out)
}

/// `imt serve --listen ADDR`: exposes the job service over TCP or a
/// Unix socket using the `imt-net` wire protocol. With
/// `--for-requests N` the server answers N requests and exits (the
/// testable mode); without it, it serves until the process is killed.
/// `--reactor` swaps the thread-per-connection front-end for the epoll
/// event loop (`--reactors N` shards across N event loops); admission
/// is forced to typed rejection so the reactor never parks a thread.
fn serve_listen(
    opts: &Options<'_>,
    config: imt_serve::service::ServiceConfig,
    addr: &str,
) -> Result<String, CliError> {
    use imt_net::reactor::{ReactorConfig, ReactorServer};
    use imt_net::server::{NetServer, ServerConfig, ServerStatsSnapshot};
    use imt_net::ListenAddr;
    use imt_serve::service::{Admission, Service};

    enum Front {
        Blocking(NetServer),
        Reactor(ReactorServer),
    }

    impl Front {
        fn stats(&self) -> ServerStatsSnapshot {
            match self {
                Front::Blocking(server) => server.stats(),
                Front::Reactor(server) => server.stats(),
            }
        }

        fn local_addr(&self) -> &ListenAddr {
            match self {
                Front::Blocking(server) => server.local_addr(),
                Front::Reactor(server) => server.local_addr(),
            }
        }

        fn stop(self) {
            match self {
                Front::Blocking(server) => server.stop(),
                Front::Reactor(server) => server.stop(),
            }
        }
    }

    let listen = ListenAddr::parse(addr).map_err(CliError::new)?;
    let for_requests = opts.numeric("--for-requests", 0)?;
    let reactor = opts.flag("--reactor");
    let reactors = opts.numeric("--reactors", 2)?.max(1) as usize;
    let config = if reactor {
        config.with_admission(Admission::Reject)
    } else {
        config
    };
    let service = std::sync::Arc::new(Service::start(config));
    let server = if reactor {
        ReactorServer::start(
            std::sync::Arc::clone(&service),
            &listen,
            ReactorConfig::default().with_reactors(reactors),
        )
        .map(Front::Reactor)
        .map_err(|e| CliError::new(format!("cannot listen on {listen}: {e}")))?
    } else {
        NetServer::start(
            std::sync::Arc::clone(&service),
            &listen,
            ServerConfig::default(),
        )
        .map(Front::Blocking)
        .map_err(|e| CliError::new(format!("cannot listen on {listen}: {e}")))?
    };
    // The bound address matters when the caller asked for port 0.
    eprintln!(
        "imt serve: listening on {} ({})",
        server.local_addr(),
        if reactor { "reactor" } else { "blocking" },
    );
    loop {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let answered = {
            let s = server.stats();
            s.responses + s.protocol_errors
        };
        if for_requests > 0 && answered >= for_requests {
            break;
        }
    }
    let net = server.stats();
    server.stop();
    let stats = service.stats();
    match std::sync::Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => return Err(CliError::new("server kept a service handle after stop")),
    }
    let mut out = format!(
        "served {} request(s) over {} ({} connection(s)):\n",
        net.responses, listen, net.connections
    );
    if reactor {
        writeln!(out, "  mode: reactor ×{reactors} event loops").expect("write to String");
    }
    writeln!(
        out,
        "  completed = {}, failed = {}, quota-rejected = {}",
        stats.completed, stats.failed, stats.quota_rejected
    )
    .expect("write to String");
    writeln!(
        out,
        "  wire: bad requests = {}, protocol errors = {}, read timeouts = {}",
        net.bad_requests, net.protocol_errors, net.read_timeouts
    )
    .expect("write to String");
    Ok(out)
}

/// `imt client ADDR [kernels..]`: drives a remote `imt serve --listen`
/// through the wire protocol, one request per kernel × block size.
/// The whole run — including `--repeat N` passes over the matrix —
/// rides a single pooled persistent connection instead of a fresh
/// connect per request; the pool health-checks it on every checkout
/// and transparently redials if the server restarted.
pub fn client(args: &[String]) -> Result<String, CliError> {
    use imt_net::msg::NetRequest;
    use imt_net::pool::{ClientPool, PoolConfig};
    use imt_net::ListenAddr;

    let opts = parse(args);
    let scale = serve_scale(&opts);
    let Some((addr_text, kernel_names)) = opts.positional.split_first() else {
        return Err(CliError::new(
            "expected a server address (host:port or unix:PATH)",
        ));
    };
    let addr = ListenAddr::parse(addr_text).map_err(CliError::new)?;
    let kernels = resolve_kernels(kernel_names)?;
    let block_sizes = parse_block_sizes(opts.value("--block-sizes").unwrap_or("4,5,6,7"))?;
    let tenant = opts.value("--tenant").unwrap_or("");
    let retries = opts.numeric("--retries", 2)? as u32;
    let deadline_ms = opts.numeric("--deadline-ms", 30_000)?;
    let repeat = opts.numeric("--repeat", 1)?.max(1) as usize;
    let mut pool_config = PoolConfig::default()
        .with_deadline(std::time::Duration::from_millis(deadline_ms))
        .with_max_idle(1);
    pool_config.retries = retries;
    let pool = ClientPool::new(addr, pool_config);

    let mut table = imt_bench::table::Table::new(
        [
            "kernel",
            "k",
            "reduction%",
            "blocks",
            "queue ms",
            "service ms",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut refused: Vec<String> = Vec::new();
    let mut completed = 0usize;
    for pass in 0..repeat {
        for &kernel in &kernels {
            for &k in &block_sizes {
                let mut request =
                    NetRequest::new(kernel.name(), scale == imt_bench::runner::Scale::Test)
                        .with_block_size(k as u32);
                if !tenant.is_empty() {
                    request = request.with_tenant(tenant);
                }
                let response = pool
                    .call(&request)
                    .map_err(|e| CliError::new(format!("{} k={k}: {e}", kernel.name())))?;
                match &response.outcome {
                    Ok(done) => {
                        completed += 1;
                        // The table shows one pass; later passes only
                        // count (their numbers repeat modulo noise).
                        if pass == 0 {
                            table.row(vec![
                                response.kernel.clone(),
                                response.block_size.to_string(),
                                format!("{:.2}", done.evaluation.reduction_percent()),
                                done.encoded_blocks.to_string(),
                                format!("{:.1}", response.queue_ns as f64 / 1e6),
                                format!("{:.1}", response.service_ns as f64 / 1e6),
                            ]);
                        }
                    }
                    Err(e) => refused.push(format!(
                        "{} k={}: {e}",
                        response.kernel, response.block_size
                    )),
                }
            }
        }
    }
    let mut out = table.render();
    for line in &refused {
        writeln!(out, "refused: {line}").expect("write to String");
    }
    if repeat > 1 {
        writeln!(
            out,
            "{repeat} passes over one persistent connection ({} idle in pool)",
            pool.idle_count(),
        )
        .expect("write to String");
    }
    writeln!(
        out,
        "{completed} completed, {} refused (tenant: {})",
        refused.len(),
        if tenant.is_empty() { "-" } else { tenant },
    )
    .expect("write to String");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("imt_cli_test_{name}_{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const LOOP_SRC: &str = "\
        .text\n\
main:   li $t0, 50\n\
loop:   xor $t1, $t1, $t0\n\
        addiu $t0, $t0, -1\n\
        bgtz $t0, loop\n\
        li $v0, 1\n\
        move $a0, $t1\n\
        syscall\n\
        li $v0, 10\n\
        syscall\n";

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn asm_listing_flag() {
        let src = write_temp("listing.s", LOOP_SRC);
        let out = asm(&args(&[&src, "--listing"])).unwrap();
        assert!(out.contains("main:"));
        assert!(out.contains("bgtz"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn asm_dis_run_pipeline() {
        let src = write_temp("pipeline.s", LOOP_SRC);
        let img = format!("{src}.imt");
        let out = asm(&args(&[&src, "-o", &img])).unwrap();
        assert!(out.contains("9 instructions"));
        let out = dis(&args(&[&img])).unwrap();
        assert!(out.contains("bgtz"));
        let out = run(&args(&[&img])).unwrap();
        assert!(out.contains("[exit 0"));
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&img).ok();
    }

    #[test]
    fn profile_reports_the_loop() {
        let src = write_temp("profile.s", LOOP_SRC);
        let out = profile(&args(&[&src])).unwrap();
        assert!(out.contains("natural loops"));
        assert!(out.contains("% of all"));
        assert!(out.contains("instruction mix"));
        assert!(out.contains("int-alu"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn run_with_trace_shows_head_and_tail() {
        let src = write_temp("trace.s", LOOP_SRC);
        let out = run(&args(&[&src, "--trace", "3"])).unwrap();
        assert!(out.contains("fetches elided"));
        assert!(out.contains("syscall"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn encode_reports_reduction() {
        let src = write_temp("encode.s", LOOP_SRC);
        let out = encode(&args(&[&src, "--block-size", "4"])).unwrap();
        assert!(out.contains("% reduction"));
        assert!(out.contains("decoder verified"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn encode_emits_a_loadable_table_image() {
        let src = write_temp("tables.s", LOOP_SRC);
        let img = format!("{src}.ttb");
        let out = encode(&args(&[&src, "--emit-tables", &img])).unwrap();
        assert!(out.contains("table image"));
        let bytes = std::fs::read(&img).unwrap();
        assert_eq!(&bytes[..4], b"TTB1");
        let unpacked =
            imt_core::tableimage::unpack_tables(&bytes, imt_bitcode::TransformSet::CANONICAL_EIGHT)
                .unwrap();
        assert!(!unpacked.tt.is_empty());
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&img).ok();
    }

    #[test]
    fn schedule_verifies_and_writes_an_image() {
        let src = write_temp("sched.s", LOOP_SRC);
        let img = format!("{src}.imt");
        let out = schedule(&args(&[&src, "-o", &img])).unwrap();
        assert!(out.contains("verified: scheduled program output is identical"));
        assert!(std::path::Path::new(&img).exists());
        // The written image runs and prints the same output.
        let rerun = run(&args(&[&img])).unwrap();
        let orig = run(&args(&[&src])).unwrap();
        assert_eq!(rerun, orig);
        std::fs::remove_file(&src).ok();
        std::fs::remove_file(&img).ok();
    }

    #[test]
    fn analyze_reports_lanes_and_budget() {
        let src = write_temp("analyze.s", LOOP_SRC);
        let out = analyze(&args(&[&src])).unwrap();
        assert!(out.contains("per-lane structure"));
        assert!(out.contains("hardware budget"));
        assert!(out.contains("total reduction"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn tables_prints_figure4_shape() {
        let out = tables(&args(&["-k", "3"])).unwrap();
        assert!(out.contains("improvement = 75.0%"));
        assert!(tables(&args(&["-k", "1"])).is_err());
    }

    #[test]
    fn kernels_list_and_run() {
        let out = kernels(&[]).unwrap();
        assert!(out.contains("mmul"));
        let out = kernels(&args(&["fft"])).unwrap();
        assert!(out.contains("golden model match: true"));
        assert!(kernels(&args(&["bogus"])).is_err());
    }

    #[test]
    fn trace_head_and_tail_flags_bound_each_end() {
        let src = write_temp("tracehead.s", LOOP_SRC);
        // Head only: no tail entries, so the elision marker runs to the end.
        let out = run(&args(&[&src, "--trace-head", "2"])).unwrap();
        let first = out.lines().next().unwrap();
        assert!(
            first.trim_start().starts_with('0'),
            "head starts at fetch 0: {first}"
        );
        assert!(out.contains("fetches elided"));
        assert!(!out
            .lines()
            .any(|l| l.contains("syscall") && l.contains("0x")));
        // Tail only: the final syscall is visible, fetch 0 is not.
        let out = run(&args(&[&src, "--trace-tail", "2"])).unwrap();
        assert!(out.contains("syscall"));
        assert!(!out.lines().next().unwrap().trim_start().starts_with("0 "));
        // `--trace N` remains the symmetric shorthand, overridable per end.
        let out = run(&args(&[&src, "--trace", "2", "--trace-tail", "1"])).unwrap();
        assert!(out.contains("fetches elided"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn obs_check_validates_a_directory() {
        let dir = std::env::temp_dir().join(format!("imt_cli_obs_check_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = r#"{"schema":"imt-obs/v1","run":"x","metrics":[],"events":[]}"#;
        std::fs::write(dir.join("good.json"), good).unwrap();
        let out = obs(&args(&["check", &dir.to_string_lossy()])).unwrap();
        assert!(out.contains("ok    good.json"));
        assert!(out.contains("1 manifest(s) valid"));
        // A crash-guard manifest is valid but flagged as aborted.
        let crashed = r#"{"schema":"imt-obs/v1","run":"y","status":"aborted",
            "metrics":[],"events":[]}"#;
        std::fs::write(dir.join("crashed.json"), crashed).unwrap();
        let out = obs(&args(&["check", &dir.to_string_lossy()])).unwrap();
        assert!(out.contains("ABRT  crashed.json"), "{out}");
        assert!(out.contains("2 manifest(s) valid"), "{out}");
        assert!(out.contains("warning: 1 aborted run(s)"), "{out}");
        // One bad manifest fails the whole check.
        std::fs::write(dir.join("bad.json"), r#"{"run":"x"}"#).unwrap();
        let err = obs(&args(&["check", &dir.to_string_lossy()])).unwrap_err();
        assert!(err.to_string().contains("FAIL  bad.json"));
        assert!(err.to_string().contains("missing `schema`"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_report_summarises_a_manifest() {
        let dir = std::env::temp_dir().join(format!("imt_cli_obs_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = r#"{"schema":"imt-obs/v1","run":"demo",
            "environment":{"threads":4},
            "metrics":[
              {"name":"a.count","label":"","kind":"counter","value":3},
              {"name":"b.time","label":"tri","kind":"span",
               "count":2,"total_ns":4000000,"min_ns":1000000,"max_ns":3000000}],
            "events":[]}"#;
        let path = dir.join("demo.json");
        std::fs::write(&path, manifest).unwrap();
        let out = obs(&args(&["report", &path.to_string_lossy()])).unwrap();
        assert!(out.contains("run `demo`"));
        assert!(out.contains("sections: environment"));
        assert!(out.contains("a.count = 3"));
        assert!(out.contains("b.time{tri}: count=2 total=4.000ms mean=2.000ms"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_without_subcommand_shows_usage() {
        let err = obs(&[]).unwrap_err();
        assert!(err.to_string().contains("imt obs check"));
        assert!(err.to_string().contains("imt obs trace export"));
        assert!(err.to_string().contains("imt obs regress"));
    }

    /// A manifest carrying a trace section, as `IMT_OBS=trace` writes:
    /// one request root with a nested child span and an instant.
    const TRACED_MANIFEST: &str = r#"{"schema":"imt-obs/v1","run":"traced",
        "metrics":[],"events":[],
        "trace":{"dropped":0,"events":[
          {"name":"serve.request","kind":"span","trace":1,"span":1,
           "parent":0,"thread":7,"start_ns":1000,"dur_ns":9000},
          {"name":"serve.execute","kind":"span","trace":1,"span":2,
           "parent":1,"thread":7,"start_ns":2000,"dur_ns":5000},
          {"name":"serve.respond","kind":"instant","trace":1,"span":3,
           "parent":1,"thread":7,"start_ns":9500,"dur_ns":0}]}}"#;

    #[test]
    fn obs_trace_export_writes_valid_chrome_json() {
        let dir = std::env::temp_dir().join(format!("imt_cli_trace_export_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("traced.json"), TRACED_MANIFEST).unwrap();
        // A manifest without a trace section is skipped, not an error.
        let plain = r#"{"schema":"imt-obs/v1","run":"plain","metrics":[],"events":[]}"#;
        std::fs::write(dir.join("plain.json"), plain).unwrap();
        let out_path = dir.join("out").join("trace.json");
        let out = obs(&args(&[
            "trace",
            "export",
            &dir.to_string_lossy(),
            "-o",
            &out_path.to_string_lossy(),
        ]))
        .unwrap();
        assert!(
            out.contains("exported 3 trace event(s) (2 spans) from 1 run(s)"),
            "{out}"
        );
        assert!(out.contains("1 manifest(s) had no trace section"), "{out}");
        let chrome =
            imt_obs::json::Json::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        imt_obs::trace::validate_chrome(&chrome).unwrap();
        let rendered = chrome.render();
        assert!(rendered.contains("serve.request"));
        assert!(rendered.contains("serve.respond"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_trace_export_accepts_one_manifest_and_rejects_traceless_input() {
        let dir = std::env::temp_dir().join(format!("imt_cli_trace_one_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("traced.json");
        std::fs::write(&manifest, TRACED_MANIFEST).unwrap();
        let out_path = dir.join("trace.json");
        let out = obs(&args(&[
            "trace",
            "export",
            &manifest.to_string_lossy(),
            "-o",
            &out_path.to_string_lossy(),
        ]))
        .unwrap();
        assert!(out.contains("from 1 run(s)"), "{out}");
        assert!(out_path.exists());
        // A directory with no traced manifest at all is an error with a
        // hint at the env var that produces one.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = obs(&args(&["trace", "export", &empty.to_string_lossy()])).unwrap_err();
        assert!(err.to_string().contains("IMT_OBS=trace"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A minimal `BENCH_serve.json` at the given scale and throughput.
    fn write_serve_artifact(dir: &std::path::Path, scale: &str, rps: f64) {
        let doc = format!(
            r#"{{"scale":"{scale}","sweeps":[{{"workers":4,"throughput_rps":{rps},"p99_ms":4.0}}]}}"#
        );
        std::fs::write(dir.join("BENCH_serve.json"), doc).unwrap();
    }

    #[test]
    fn obs_regress_passes_baseline_and_fails_a_seeded_slowdown() {
        let dir = std::env::temp_dir().join(format!("imt_cli_regress_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let results = dir.to_string_lossy().into_owned();
        // No history yet: a pass with a pointer at `imt bench --record`.
        write_serve_artifact(&dir, "test", 100.0);
        let out = obs(&args(&["regress", "--results", &results])).unwrap();
        assert!(out.contains("no perf history"), "{out}");
        // Record three baseline entries, then check the same artifacts.
        for _ in 0..3 {
            let docs = imt_bench::history::load_docs(&dir).unwrap();
            let entry = imt_bench::history::summarize(&docs).unwrap();
            imt_bench::history::append(&dir, &entry).unwrap();
        }
        let out = obs(&args(&["regress", "--results", &results])).unwrap();
        assert!(out.contains("no regressions"), "{out}");
        assert!(out.contains("serve.throughput_rps"), "{out}");
        // Seed a 25% throughput slowdown: the gate must exit nonzero.
        write_serve_artifact(&dir, "test", 75.0);
        let err = obs(&args(&["regress", "--results", &results])).unwrap_err();
        assert!(err.to_string().contains("performance regression"), "{err}");
        assert!(err.to_string().contains("serve.throughput_rps"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_record_appends_a_history_entry() {
        let dir = std::env::temp_dir().join(format!("imt_cli_bench_record_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_serve_artifact(&dir, "test", 200.0);
        let out = bench(&args(&[
            "--test-scale",
            "--record",
            "--results",
            &dir.to_string_lossy(),
        ]))
        .unwrap();
        assert!(out.contains("figure 6 grid at Test scale"));
        assert!(
            out.contains("recorded history entry #1 (test scale"),
            "{out}"
        );
        let history = imt_bench::history::read_history(&dir).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(
            history[0]
                .get("metrics")
                .and_then(|m| m.get("serve.throughput_rps"))
                .and_then(imt_obs::json::Json::as_f64),
            Some(200.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_without_subcommand_shows_usage() {
        let err = fault(&[]).unwrap_err();
        assert!(err.to_string().contains("imt fault campaign"));
    }

    #[test]
    fn fault_inject_degrades_under_parity() {
        let src = write_temp("fault_inject.s", LOOP_SRC);
        let out = fault(&args(&[
            "inject",
            &src,
            "--plan",
            "10:tt:0:3",
            "--protection",
            "parity",
        ]))
        .unwrap();
        assert!(out.contains("verdict: degraded gracefully"), "{out}");
        assert!(out.contains("tt:0:3"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn fault_inject_requires_a_plan() {
        let src = write_temp("fault_noplan.s", LOOP_SRC);
        let err = fault(&args(&["inject", &src])).unwrap_err();
        assert!(err.to_string().contains("--plan"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn fault_campaign_sweeps_all_protections() {
        let src = write_temp("fault_campaign.s", LOOP_SRC);
        let out = fault(&args(&[
            "campaign",
            &src,
            "--protection",
            "all",
            "--trials",
            "6",
        ]))
        .unwrap();
        for level in ["none", "parity", "sec"] {
            assert!(out.contains(level), "missing {level} row:\n{out}");
        }
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn fault_report_summarises_bench_json() {
        let doc = r#"{"cells": [
            {"protection": "none", "trials": 4, "silent": 2, "corrected": 0,
             "degraded": 0, "clean_reduction_percent": 30.0,
             "retained_reduction_percent": 30.0},
            {"protection": "parity", "trials": 4, "silent": 0, "corrected": 0,
             "degraded": 4, "clean_reduction_percent": 30.0,
             "retained_reduction_percent": 25.0}
        ]}"#;
        let path = write_temp("fault_report.json", doc);
        let out = fault(&["report".to_string(), path.clone()]).unwrap();
        assert!(out.contains("2 campaign cell(s)"));
        assert!(out.contains("no silent corruption under any protected cell"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arena_report_summarises_bench_json() {
        let doc = r#"{"scale": "test", "kernels": [
            {"instance": "tri-12x3",
             "rows": [
                {"label": "tt-k7", "pareto": true},
                {"label": "gray", "pareto": false}
             ],
             "best_single": {"label": "tt-k7", "reduction_percent": 39.56},
             "auto": {"winner": "composite", "tt_donor": "tt-k7",
                      "reduction_percent": 41.57}}
        ]}"#;
        let path = write_temp("arena_report.json", doc);
        let out = arena(&args(&["report", &path])).unwrap();
        assert!(out.contains("1 kernel(s) at test scale"));
        assert!(out.contains("best tt-k7 39.56%"));
        assert!(out.contains("auto composite 41.57% (donor tt-k7)"));
        assert!(out.contains("front: tt-k7"));
        assert!(
            !out.contains("gray"),
            "non-front rows stay out of the front list"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arena_requires_a_subcommand() {
        let err = arena(&[]).unwrap_err();
        assert!(err.to_string().contains("usage: imt arena"));
        let err = arena(&args(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("usage: imt arena"));
    }

    #[test]
    fn fault_rejects_bad_protection_and_targets() {
        let src = write_temp("fault_bad.s", LOOP_SRC);
        let err = fault(&args(&["campaign", &src, "--protection", "ecc"])).unwrap_err();
        assert!(err.to_string().contains("none|parity|sec"));
        let err = fault(&args(&["campaign", &src, "--targets", "cache"])).unwrap_err();
        assert!(err.to_string().contains("tables|text|bus"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn option_parsing_errors_are_friendly() {
        let err = run(&args(&["nonexistent_file.s"])).unwrap_err();
        assert!(err.to_string().contains("i/o error"));
        let src = write_temp("badnum.s", LOOP_SRC);
        let err = run(&args(&[&src, "--max-steps", "many"])).unwrap_err();
        assert!(err.to_string().contains("expects a number"));
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn bench_renders_the_grid_at_test_scale() {
        let out = bench(&args(&["--test-scale"])).unwrap();
        assert!(out.contains("figure 6 grid at Test scale"));
        assert!(out.contains("k=7"));
        for kernel in imt_kernels::Kernel::ALL {
            assert!(out.contains(kernel.name()), "missing {}", kernel.name());
        }
    }

    #[test]
    fn batch_serves_requests_through_the_service() {
        let out = batch(&args(&["tri", "--test-scale", "--block-sizes", "5,6"])).unwrap();
        assert!(out.contains("batched 2 encode/eval request(s)"));
        assert!(out.contains("tri-"), "instance name missing: {out}");
        assert!(out.contains("batch(es), mean batch size"));
        assert!(!out.contains("FAILED"), "no request should fail: {out}");
    }

    #[test]
    fn batch_rejects_unknown_kernels_and_bad_block_sizes() {
        let err = batch(&args(&["warp", "--test-scale"])).unwrap_err();
        assert!(err.to_string().contains("unknown kernel"));
        let err = batch(&args(&["tri", "--test-scale", "--block-sizes", "five"])).unwrap_err();
        assert!(err.to_string().contains("--block-sizes expects numbers"));
    }

    #[test]
    fn serve_runs_a_closed_loop_session() {
        let out = serve(&args(&[
            "--test-scale",
            "--requests",
            "6",
            "--workers",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("closed-loop session, 6 request(s)"));
        assert!(out.contains("completed = 6, failed = 0, rejected = 0"));
        assert!(out.contains("latency p50/p90/p99"));
    }

    #[test]
    fn serve_listen_and_client_round_trip_over_a_unix_socket() {
        let sock = std::env::temp_dir().join(format!(
            "imt-cli-net-{}-{}.sock",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let addr = format!("unix:{}", sock.display());
        let server = std::thread::spawn({
            let addr = addr.clone();
            move || {
                serve(&args(&[
                    "--listen",
                    &addr,
                    "--for-requests",
                    "1",
                    "--workers",
                    "1",
                ]))
            }
        });
        for _ in 0..500 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let out = client(&args(&[
            &addr,
            "tri",
            "--block-sizes",
            "5",
            "--test-scale",
            "--tenant",
            "cli",
        ]))
        .unwrap();
        assert!(out.contains("tri-12x3"), "row for the kernel: {out}");
        assert!(
            out.contains("1 completed, 0 refused (tenant: cli)"),
            "{out}"
        );
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("served 1 request(s)"), "{summary}");
        assert!(summary.contains("completed = 1, failed = 0"), "{summary}");
        std::fs::remove_file(&sock).ok();
    }

    #[test]
    fn client_rejects_a_malformed_address() {
        let err = client(&args(&["unix:"])).unwrap_err();
        assert!(err.to_string().contains("missing its path"));
        let err = client(&[]).unwrap_err();
        assert!(err.to_string().contains("expected a server address"));
    }

    #[test]
    fn serve_listen_rejects_an_unbindable_address() {
        let err = serve(&args(&["--listen", "unix:/nonexistent-dir/x/y.sock"])).unwrap_err();
        assert!(err.to_string().contains("cannot listen"), "{err}");
    }

    #[test]
    fn cache_stats_and_bad_subcommand() {
        let out = cache(&args(&["stats"])).unwrap();
        assert!(out.contains("profile cache"));
        assert!(out.contains("imt-profile-cache"));
        // Bare `imt cache` is stats too.
        assert!(cache(&[]).unwrap().contains("entries:"));
        let err = cache(&args(&["purge"])).unwrap_err();
        assert!(err.to_string().contains("stats"));
    }
}
