//! The `.imt` program-image container.
//!
//! A minimal little-endian binary format for assembled programs, so the
//! CLI can separate assembling from running (firmware-style):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "IMT1"
//! 4       4     text_base
//! 8       4     data_base
//! 12      4     entry
//! 16      4     text word count (N)
//! 20      4     data byte count (M)
//! 24      4*N   text words
//! 24+4N   M     data bytes
//! ```
//!
//! Symbols and source lines are tool-side conveniences and are not stored.

use std::collections::BTreeMap;

use imt_isa::Program;

use crate::CliError;

const MAGIC: &[u8; 4] = b"IMT1";

/// Serialises a program into the container format.
pub fn save(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + program.text.len() * 4 + program.data.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&program.text_base.to_le_bytes());
    out.extend_from_slice(&program.data_base.to_le_bytes());
    out.extend_from_slice(&program.entry.to_le_bytes());
    out.extend_from_slice(&(program.text.len() as u32).to_le_bytes());
    out.extend_from_slice(&(program.data.len() as u32).to_le_bytes());
    for word in &program.text {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&program.data);
    out
}

/// Deserialises a container image.
///
/// # Errors
///
/// Returns [`CliError`] for a bad magic, truncated input, or trailing
/// garbage.
pub fn load(bytes: &[u8]) -> Result<Program, CliError> {
    let field = |offset: usize| -> Result<u32, CliError> {
        bytes
            .get(offset..offset + 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .ok_or_else(|| CliError::new("truncated image header"))
    };
    if bytes.get(0..4) != Some(MAGIC.as_slice()) {
        return Err(CliError::new("not an IMT program image (bad magic)"));
    }
    let text_base = field(4)?;
    let data_base = field(8)?;
    let entry = field(12)?;
    let text_len = field(16)? as usize;
    let data_len = field(20)? as usize;
    let text_end = 24 + text_len * 4;
    let data_end = text_end + data_len;
    if bytes.len() != data_end {
        return Err(CliError::new(format!(
            "image size mismatch: header implies {data_end} bytes, file has {}",
            bytes.len()
        )));
    }
    let mut text = Vec::with_capacity(text_len);
    for i in 0..text_len {
        text.push(field(24 + i * 4)?);
    }
    let data = bytes[text_end..data_end].to_vec();
    Ok(Program {
        text,
        data,
        text_base,
        data_base,
        entry,
        symbols: BTreeMap::new(),
        source_lines: Vec::new(),
    })
}

/// Loads a program from a path: `.imt` containers are parsed, anything
/// else is assembled as source.
///
/// # Errors
///
/// Propagates i/o, container and assembly errors.
pub fn load_program(path: &str) -> Result<Program, CliError> {
    let bytes = std::fs::read(path)?;
    if bytes.starts_with(MAGIC) {
        load(&bytes)
    } else {
        let source = String::from_utf8(bytes)
            .map_err(|_| CliError::new(format!("{path} is neither an image nor UTF-8 source")))?;
        Ok(imt_isa::asm::assemble(&source)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;

    fn sample() -> Program {
        assemble(".data\nx: .word 7\n.text\nmain: la $t0, x\nlw $a0, 0($t0)\nli $v0, 10\nsyscall\n")
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_the_image() {
        let program = sample();
        let bytes = save(&program);
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded.text, program.text);
        assert_eq!(loaded.data, program.data);
        assert_eq!(loaded.entry, program.entry);
        assert_eq!(loaded.text_base, program.text_base);
        assert_eq!(loaded.data_base, program.data_base);
    }

    #[test]
    fn loaded_image_still_runs() {
        let program = sample();
        let loaded = load(&save(&program)).unwrap();
        let mut cpu = imt_sim::Cpu::new(&loaded).unwrap();
        cpu.run(100).unwrap();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(load(b"nope").is_err());
        let mut bytes = save(&sample());
        bytes.pop();
        assert!(load(&bytes).is_err());
        bytes.push(0);
        bytes.push(0); // trailing garbage
        assert!(load(&bytes).is_err());
    }
}
