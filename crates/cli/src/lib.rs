//! # imt-cli — the `imt` command-line tool
//!
//! A thin, dependency-free driver over the workspace:
//!
//! ```text
//! imt asm <file.s> [-o image.imt]        assemble; write a program image
//! imt dis <image.imt | file.s>           disassemble text with addresses
//! imt run <image.imt | file.s> [opts]    execute; print output and stats
//! imt profile <file>                     execute; per-loop fetch report
//! imt encode <file> [opts]               full pipeline; reduction report
//! imt tables [-k N]                      print the optimal code table
//! imt kernels [name]                     list / run the paper benchmarks
//! imt bench [opts]                       figure 6 grid via replay eval
//! imt arena <run|report> [opts]          encoder arena; Pareto + auto-select
//! imt serve [opts]                       load session vs the job service
//! imt serve --listen <addr> [opts]       expose the service over the wire
//! imt client <addr> [kernels..] [opts]   drive a remote server over the wire
//! imt batch [kernels..] [opts]           request set through the service
//! imt cache [stats|clear]                inspect / wipe the profile cache
//! imt fault <inject|campaign|report>     upset injection and campaigns
//! ```
//!
//! All command logic lives in this library and returns its output as a
//! string, so the test suite drives the real code paths; `main.rs` only
//! forwards `std::env::args` and prints.

pub mod container;

mod commands;

use std::error::Error;
use std::fmt;

/// An error surfaced to the CLI user.
#[derive(Debug)]
pub struct CliError {
    message: String,
}

impl CliError {
    /// Creates an error with the given user-facing message.
    pub fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(format!("i/o error: {e}"))
    }
}

impl From<imt_isa::AsmError> for CliError {
    fn from(e: imt_isa::AsmError) -> Self {
        CliError::new(format!("assembly error: {e}"))
    }
}

impl From<imt_sim::SimError> for CliError {
    fn from(e: imt_sim::SimError) -> Self {
        CliError::new(format!("simulation error: {e}"))
    }
}

impl From<imt_core::CoreError> for CliError {
    fn from(e: imt_core::CoreError) -> Self {
        CliError::new(format!("encoding error: {e}"))
    }
}

/// Usage text printed for `imt help` and argument errors.
pub const USAGE: &str = "\
imt — application-specific instruction memory transformations (DATE 2003)

usage: imt <command> [args]

commands:
  asm <file.s> [-o image.imt | --listing]
                                   assemble; write an image or a listing
  dis <file>                       disassemble (accepts .s or .imt)
  run <file> [--max-steps N] [--trace N] [--trace-head N] [--trace-tail N]
                                   execute; print output (+head/tail trace)
  profile <file> [--max-steps N]   execute and report loops by fetch share
  encode <file> [--block-size K] [--tt N] [--bbit N] [--all-sixteen]
         [--emit-tables out.ttb]   encode the hot region and measure
  analyze <file> [encode opts]     per-lane anatomy + hardware budget
  schedule <file> [-o out.imt]     transition-aware reorder (verified)
  tables [--block-size K] [--all-sixteen]
                                   print the optimal code table (Fig. 2/4)
  kernels [name]                   list the paper kernels, or run one
  bench [--test-scale] [--no-profile-cache] [--record] [--results DIR]
                                   figure 6 grid via replay evaluation;
                                   --record appends a BENCH_*.json summary
                                   to results/BENCH_history.jsonl
  arena run [--test-scale] [--results DIR]
                                   score every encoding scheme on every
                                   kernel (Pareto + auto-select); writes
                                   results/BENCH_arena.json
  arena report [BENCH_arena.json]  summarise an exp_arena result file
  serve [--workers N] [--queue N] [--max-batch N] [--requests N] [--reject]
        [--deadline-ms N] [--delivery-ms N] [--tenant-quota N] [--test-scale]
                                   closed-loop load session against the
                                   batched job service; latency report
  serve --listen <host:port | unix:PATH> [--for-requests N] [pool opts]
                                   expose the service over the imt-net
                                   wire protocol (TCP or Unix socket);
                                   --for-requests N answers N then exits
  client <host:port | unix:PATH> [kernels..] [--block-sizes 4,5,..]
         [--tenant T] [--retries N] [--deadline-ms N] [--test-scale]
                                   drive a remote server; one request
                                   per kernel x block size, with
                                   deadline + idempotent retry
  batch [kernels..] [--block-sizes 4,5,..] [--workers N] [--test-scale]
                                   encode/eval a request set through the
                                   service; one result row per request
  cache [stats | clear]            profile-cache location, size, wipe
  fault inject <file> --plan AT:TARGET[,..] [--protection none|parity|sec]
                                   apply named upsets and replay the fetch
                                   stream (targets: tt:E:B bbit:E:B
                                   text:W:B bus:B)
  fault campaign <file> [--trials N] [--seed S] [--protection P|all]
        [--targets tables|text|bus] [--bits N] [--window N]
                                   seeded upset campaign; SDC/coverage
  fault report [BENCH_fault.json]  summarise an exp_fault result file
  obs check [dir]                  validate run manifests (imt-obs/v1)
  obs report <manifest.json>       summarise one run manifest
  obs trace export [dir | manifest.json] [-o out.json]
                                   convert traced manifests to Chrome
                                   trace-event JSON (chrome://tracing)
  obs regress [--results DIR] [--window N]
                                   compare current BENCH_*.json against
                                   BENCH_history.jsonl; nonzero on
                                   regression
  help                             this text

observability: set IMT_OBS=report for a stderr metrics report,
IMT_OBS=json to write a run manifest under IMT_OBS_PATH (default
results/obs) after each command, or IMT_OBS=trace to additionally
capture a causal span timeline in the manifest.
";

/// Runs the CLI on pre-split arguments (without the program name) and
/// returns what should be printed.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for unknown commands,
/// bad arguments, and any underlying assembly/simulation/encoding failure.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(USAGE.to_string());
    };
    let rest = &args[1..];
    // Crash bracket: if a command panics mid-run under IMT_OBS=json, the
    // guard flushes a partial manifest with status "aborted" so `imt obs
    // check` can report the crashed run. Commands that end normally —
    // success or a reported error — defuse it below.
    let guard = imt_obs::manifest::RunGuard::begin(format!("cli-{command}"));
    let result = match command.as_str() {
        "asm" => commands::asm(rest),
        "dis" => commands::dis(rest),
        "run" => commands::run(rest),
        "profile" => commands::profile(rest),
        "encode" => commands::encode(rest),
        "analyze" => commands::analyze(rest),
        "schedule" => commands::schedule(rest),
        "tables" => commands::tables(rest),
        "kernels" => commands::kernels(rest),
        "bench" => commands::bench(rest),
        "arena" => commands::arena(rest),
        "serve" => commands::serve(rest),
        "client" => commands::client(rest),
        "batch" => commands::batch(rest),
        "cache" => commands::cache(rest),
        "fault" => commands::fault(rest),
        "obs" => {
            guard.complete();
            return commands::obs(rest);
        }
        "help" | "--help" | "-h" => {
            guard.complete();
            return Ok(USAGE.to_string());
        }
        other => {
            guard.complete();
            return Err(CliError::new(format!(
                "unknown command `{other}`\n\n{USAGE}"
            )));
        }
    };
    // Under `IMT_OBS`, a successful command ends with its run manifest
    // (stderr/file only — the command's stdout is untouched). `obs` and
    // `help` return above: inspecting manifests should not write new ones.
    if result.is_ok() && imt_obs::enabled() {
        let extra = vec![("command", imt_obs::json::Json::str(command))];
        if let Err(error) = imt_obs::manifest::finish_run(&format!("cli-{command}"), extra) {
            eprintln!("imt-obs: failed to write manifest for {command}: {error}");
        }
    }
    // Reaching here means the command ran to completion (ok, or an error
    // already reported to the caller) — not a crash.
    guard.complete();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_args_prints_usage() {
        let out = run_cli(&[]).unwrap();
        assert!(out.contains("usage: imt"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run_cli(&["frobnicate".into()]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert!(err.to_string().contains("usage: imt"));
    }

    #[test]
    fn help_is_available() {
        for flag in ["help", "--help", "-h"] {
            assert!(run_cli(&[flag.into()]).unwrap().contains("commands:"));
        }
    }
}
