//! The `imt` binary: forwards arguments to [`imt_cli::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match imt_cli::run_cli(&args) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("imt: {error}");
            std::process::exit(1);
        }
    }
}
