//! Offline stand-in for the subset of the crates.io `criterion` API this
//! workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! small wall-clock benchmark harness with criterion's macro and builder
//! surface: `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput::Elements`] and [`black_box`].
//!
//! Differences from upstream, by design: no statistical analysis, plots or
//! saved baselines — each benchmark warms up briefly, then measures batches
//! for a fixed window and reports the best batch mean (ns/iter plus
//! throughput when configured). Tune with `CRITERION_WARMUP_MS` /
//! `CRITERION_MEASURE_MS` (defaults 300 / 1000).

use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Name of one benchmark: a function name, or `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (words, instructions, blocks …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Runs the measured closure and accumulates timing.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the best measured batch.
    best_ns_per_iter: f64,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    /// Benchmarks `routine`: warm up, then measure batches until the
    /// measurement window closes, keeping the fastest batch mean (least
    /// noise-inflated).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate a batch size that lasts roughly 1 ms so the
        // per-batch `Instant` overhead is negligible.
        let mut batch: u64 = 1;
        let calibrate_until = Instant::now() + self.warmup;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
            if Instant::now() >= calibrate_until {
                break;
            }
        }
        // Remaining warmup.
        while Instant::now() < calibrate_until {
            for _ in 0..batch {
                black_box(routine());
            }
        }
        // Measurement window.
        let mut best = f64::INFINITY;
        let end = Instant::now() + self.measure;
        let mut measured_batches = 0u32;
        while Instant::now() < end || measured_batches == 0 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
            measured_batches += 1;
            if measured_batches >= 10_000 {
                break;
            }
        }
        self.best_ns_per_iter = best;
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(full_label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        best_ns_per_iter: f64::NAN,
        warmup: env_ms("CRITERION_WARMUP_MS", 300),
        measure: env_ms("CRITERION_MEASURE_MS", 1000),
    };
    f(&mut bencher);
    let ns = bencher.best_ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3} Melem/s)", n as f64 / ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / ns * 1_000.0 * 1e6 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{full_label:<48} {:>12}/iter{rate}", format_time(ns));
}

/// A named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores harness CLI arguments (`--bench`, filters …),
    /// for `criterion_group!` compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        run_one(&id.label, None, |b| f(b));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "10");
        std::env::set_var("CRITERION_MEASURE_MS", "20");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 5).label, "f/5");
        assert_eq!(BenchmarkId::from_parameter("fft").label, "fft");
    }
}
