//! Offline stand-in for the subset of the crates.io `proptest` API this
//! workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal property-testing harness with the same macro and strategy
//! surface the test suites rely on: `proptest!` (with optional
//! `#![proptest_config(..)]`), `prop_oneof!`, `prop_assert*!`, [`Just`],
//! [`any`], integer-range strategies, tuple strategies, `prop_map`,
//! `prop_recursive`, and [`collection::vec`].
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case panics with its case index and seed;
//!   seeds are a pure function of (test name, case index), so reruns are
//!   deterministic and the failure reproduces as-is.
//! - **Case count** defaults to 64 (upstream: 256) and can be overridden
//!   globally with the `PROPTEST_CASES` environment variable or per-block
//!   with `ProptestConfig::with_cases`.

use std::marker::PhantomData;
use std::rc::Rc;

pub use rand;

/// Deterministic per-case random source handed to strategies.
pub struct TestRng(pub rand::rngs::StdRng);

impl TestRng {
    /// Derives the RNG for one test case from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> (Self, u64) {
        // FNV-1a over the name keeps seeds stable across runs and
        // platforms without relying on `DefaultHasher` internals.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (
            TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                seed,
            )),
            seed,
        )
    }

    /// Uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Strategy combinators and core trait.
pub mod strategy {
    use super::*;

    /// A generator of test values. Object-safe so strategies can be boxed
    /// and recombined recursively.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type. The result is cheaply
        /// clonable ([`Rc`]-backed), which `prop_recursive` relies on.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `recurse` receives a strategy for
        /// the previous nesting level and returns one that may embed it.
        ///
        /// Depth is bounded by construction (`depth` levels built
        /// eagerly), so unlike upstream there is no probabilistic decay —
        /// `_desired_size`/`_expected_branch` are accepted for signature
        /// compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut level = self.clone().boxed();
            for _ in 0..depth {
                let deeper = recurse(level).boxed();
                // 1 part leaf to 2 parts recursion keeps generated trees
                // bushy without exploding.
                level = Union::new(vec![self.clone().boxed(), deeper.clone(), deeper]).boxed();
            }
            level
        }
    }

    /// Clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform values of a primitive type; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }
    impl<T> Copy for Any<T> {}

    /// Uniform strategy over all values of `T`.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample(&mut rng.0)
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let arm = rng.index(self.arms.len());
            self.arms[arm].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(&mut rng.0, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Vector of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.hi - self.len.lo + 1;
            let n = self.len.lo + rng.index(span);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration and per-case bookkeeping used by `proptest!`.
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Prints the failing case's coordinates if the case body panics, so
    /// the (deterministic) failure is easy to re-run.
    pub struct CaseGuard {
        pub test_name: &'static str,
        pub case: u32,
        pub seed: u64,
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest failure: {} case {} (seed {:#018x}); \
                     seeds are deterministic, rerunning reproduces it",
                    self.test_name, self.case, self.seed
                );
            }
        }
    }
}

/// One-stop import, mirroring upstream's `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Each `#[test] fn name(pat in strategy, ..)`
/// becomes a normal test that samples its strategies `config.cases` times
/// and runs the body against each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as Default>::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategies = ($($strat,)*);
            for __case in 0..__config.cases {
                let (mut __rng, __seed) =
                    $crate::TestRng::for_case(stringify!($name), __case);
                let __guard = $crate::test_runner::CaseGuard {
                    test_name: stringify!($name),
                    case: __case,
                    seed: __seed,
                };
                let ($($arg,)*) =
                    $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                { $body }
                drop(__guard);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..9, b in 5usize..=10, v in crate::collection::vec(0i16..4, 2..6)) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((5..=10).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0..4).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u8), (10u8..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn recursion_depth_is_bounded(
            t in Just(Tree::Leaf(0)).prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let (mut a, seed_a) = crate::TestRng::for_case("x", 5);
        let (mut b, seed_b) = crate::TestRng::for_case("x", 5);
        assert_eq!(seed_a, seed_b);
        assert_eq!(a.next_u64(), b.next_u64());
        let (mut c, _) = crate::TestRng::for_case("x", 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
