//! Offline stand-in for the subset of the crates.io `rand` 0.8 API this
//! workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, dependency-free implementation of the `rand` surface it needs:
//! [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms and of ample statistical
//! quality for workload generation and property tests.
//!
//! Note: the bit streams differ from crates.io `rand`'s ChaCha12-based
//! `StdRng`, so artifacts derived from seeded randomness differ from ones
//! generated with the upstream crate (the experiment harness regenerated
//! all `results/*.txt` after the switch; see EXPERIMENTS.md).

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform value from `range`.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64.
    ///
    /// ```
    /// use rand::{Rng, SeedableRng};
    /// let mut a = rand::rngs::StdRng::seed_from_u64(7);
    /// let mut b = rand::rngs::StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn uniform_bits_look_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let ones: u32 = (0..1000).map(|_| rng.gen::<u64>().count_ones()).sum();
        let rate = ones as f64 / 64_000.0;
        assert!((rate - 0.5).abs() < 0.01, "bit rate {rate}");
    }

    #[test]
    fn works_through_unsized_references() {
        // `Rng` must stay usable via `&mut R` and `?Sized` bounds, as the
        // workspace's generators take `R: Rng + ?Sized`.
        fn take_unsized<R: super::RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(5);
        take_unsized(&mut rng);
    }
}
