//! Encoder configuration.

use imt_bitcode::block::{OverlapHistory, MAX_BLOCK_SIZE};
use imt_bitcode::stream::ChainStrategy;
use imt_bitcode::TransformSet;

/// Configuration of the encoding pipeline.
///
/// The defaults follow the paper's recommended operating point: block size
/// 5 (§5.2 argues for 5–6), the canonical eight transformations (3 control
/// bits per line per block), a 16-entry Transformation Table and a 16-entry
/// BBIT (§7.2 sizes the BBIT "in the range of 10").
///
/// ```
/// use imt_core::EncoderConfig;
/// use imt_bitcode::TransformSet;
///
/// # fn main() -> Result<(), imt_core::CoreError> {
/// let config = EncoderConfig::default()
///     .with_block_size(6)?
///     .with_transforms(TransformSet::ALL_SIXTEEN)?
///     .with_tt_capacity(32);
/// assert_eq!(config.block_size(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    block_size: usize,
    transforms: TransformSet,
    overlap: OverlapHistory,
    strategy: ChainStrategy,
    tt_capacity: usize,
    bbit_capacity: usize,
    max_loops: usize,
    include_called_functions: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            block_size: 5,
            transforms: TransformSet::CANONICAL_EIGHT,
            overlap: OverlapHistory::Stored,
            strategy: ChainStrategy::Greedy,
            tt_capacity: 16,
            bbit_capacity: 16,
            max_loops: 4,
            include_called_functions: false,
        }
    }
}

impl EncoderConfig {
    /// Creates the default configuration (equivalent to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the block size `k`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::BlockSize`] if `k` is outside
    /// `2..=MAX_BLOCK_SIZE`.
    pub fn with_block_size(mut self, k: usize) -> Result<Self, crate::CoreError> {
        if !(2..=MAX_BLOCK_SIZE).contains(&k) {
            return Err(crate::CoreError::BlockSize { requested: k });
        }
        self.block_size = k;
        Ok(self)
    }

    /// Sets the allowed transformation set.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Codec`] if `transforms` does not
    /// contain the identity transform, the encoder's feasibility
    /// fallback.
    pub fn with_transforms(mut self, transforms: TransformSet) -> Result<Self, crate::CoreError> {
        if !transforms.contains(imt_bitcode::Transform::IDENTITY) {
            return Err(crate::CoreError::Codec(
                imt_bitcode::CodecError::TransformSet {
                    mask: transforms.mask(),
                },
            ));
        }
        self.transforms = transforms;
        Ok(self)
    }

    /// Sets the overlap-history semantics (§6).
    #[must_use]
    pub fn with_overlap(mut self, overlap: OverlapHistory) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets the chain strategy (greedy, as in the paper, or the exact
    /// two-state dynamic program).
    #[must_use]
    pub fn with_strategy(mut self, strategy: ChainStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the Transformation Table capacity (entries).
    #[must_use]
    pub fn with_tt_capacity(mut self, entries: usize) -> Self {
        self.tt_capacity = entries;
        self
    }

    /// Sets the BBIT capacity (basic blocks).
    #[must_use]
    pub fn with_bbit_capacity(mut self, entries: usize) -> Self {
        self.bbit_capacity = entries;
        self
    }

    /// Sets how many of the hottest loops are considered for encoding.
    #[must_use]
    pub fn with_max_loops(mut self, loops: usize) -> Self {
        self.max_loops = loops;
        self
    }

    /// Also encodes functions called from inside selected loops — the
    /// paper's §7.2 alternative to leaving call targets unencoded, "if the
    /// total number of application basic blocks can be accommodated in the
    /// BBIT" (capacity limits still apply per block).
    #[must_use]
    pub fn with_called_functions(mut self, include: bool) -> Self {
        self.include_called_functions = include;
        self
    }

    /// The block size `k`.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The allowed transformation set.
    pub fn transforms(&self) -> TransformSet {
        self.transforms
    }

    /// The overlap-history semantics.
    pub fn overlap(&self) -> OverlapHistory {
        self.overlap
    }

    /// The chain strategy.
    pub fn strategy(&self) -> ChainStrategy {
        self.strategy
    }

    /// The Transformation Table capacity.
    pub fn tt_capacity(&self) -> usize {
        self.tt_capacity
    }

    /// The BBIT capacity.
    pub fn bbit_capacity(&self) -> usize {
        self.bbit_capacity
    }

    /// How many hot loops are considered.
    pub fn max_loops(&self) -> usize {
        self.max_loops
    }

    /// Whether called functions are pulled into the encoded region.
    pub fn include_called_functions(&self) -> bool {
        self.include_called_functions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = EncoderConfig::default();
        assert_eq!(c.block_size(), 5);
        assert_eq!(c.transforms(), TransformSet::CANONICAL_EIGHT);
        assert_eq!(c.overlap(), OverlapHistory::Stored);
        assert_eq!(c.strategy(), ChainStrategy::Greedy);
        assert_eq!(c.tt_capacity(), 16);
        assert_eq!(c.bbit_capacity(), 16);
    }

    #[test]
    fn builder_validation() {
        assert!(EncoderConfig::default().with_block_size(1).is_err());
        assert!(EncoderConfig::default()
            .with_block_size(MAX_BLOCK_SIZE + 1)
            .is_err());
        let c = EncoderConfig::default()
            .with_block_size(7)
            .unwrap()
            .with_tt_capacity(4);
        assert_eq!(c.block_size(), 7);
        assert_eq!(c.tt_capacity(), 4);
    }
}
