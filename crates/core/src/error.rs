use std::error::Error;
use std::fmt;

use imt_bitcode::CodecError;
use imt_cfg::CfgError;
use imt_sim::SimError;

/// Errors raised by the encoding pipeline and its evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A block size outside the supported range was configured.
    BlockSize {
        /// The rejected size.
        requested: usize,
    },
    /// The profile slice does not cover the program text.
    ProfileLength {
        /// Instructions in the text segment.
        text_len: usize,
        /// Entries in the supplied profile.
        profile_len: usize,
    },
    /// Control-flow recovery failed.
    Cfg(CfgError),
    /// Bit-line encoding failed.
    Codec(CodecError),
    /// Simulation failed during evaluation.
    Sim(SimError),
    /// A packed table image is malformed.
    TableImage {
        /// What was wrong.
        detail: &'static str,
    },
    /// The hardware model decoded a word that differs from the original.
    ///
    /// This is an internal-consistency failure: evaluation surfaces it so a
    /// buggy schedule can never silently report savings.
    DecodeMismatch {
        /// Fetch address of the first mismatch.
        pc: u32,
        /// What the fetch decoder produced.
        decoded: u32,
        /// What the original program holds.
        expected: u32,
    },
    /// The fetch-edge profile records a non-sequential entry into the
    /// middle of an encoded block, so closed-form replay cannot reproduce
    /// the decoder's history state there. Structurally impossible for
    /// schedules built from real basic blocks; surfaced so callers can
    /// fall back to full simulation instead of reporting wrong numbers.
    ReplayInfeasible {
        /// Address of the mid-block entry point.
        pc: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BlockSize { requested } => {
                write!(f, "block size {requested} outside the supported range")
            }
            CoreError::ProfileLength {
                text_len,
                profile_len,
            } => write!(
                f,
                "profile has {profile_len} entries but the text segment has {text_len} instructions"
            ),
            CoreError::Cfg(e) => write!(f, "control-flow recovery failed: {e}"),
            CoreError::Codec(e) => write!(f, "bit-line encoding failed: {e}"),
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::TableImage { detail } => write!(f, "malformed table image: {detail}"),
            CoreError::DecodeMismatch {
                pc,
                decoded,
                expected,
            } => write!(
                f,
                "fetch decoder produced {decoded:08x} at {pc:08x}, expected {expected:08x}"
            ),
            CoreError::ReplayInfeasible { pc } => write!(
                f,
                "fetch profile enters an encoded block mid-stream at {pc:08x}; replay evaluation is infeasible"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Cfg(e) => Some(e),
            CoreError::Codec(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CfgError> for CoreError {
    fn from(e: CfgError) -> Self {
        CoreError::Cfg(e)
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
        let e = CoreError::from(CfgError::EmptyText);
        assert!(e.to_string().contains("control-flow"));
        assert!(e.source().is_some());
        let e = CoreError::DecodeMismatch {
            pc: 0x400000,
            decoded: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("00400000"));
    }
}
