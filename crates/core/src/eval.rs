//! Dynamic evaluation: replay a real execution against the encoded image.
//!
//! This is the experiment of the paper's §8: run the program on the
//! simulated core, stream every fetch through two bus monitors — one fed
//! the original words, one fed the encoded image — and, crucially, through
//! the [`crate::hardware::FetchDecoder`] hardware model,
//! checking bit-for-bit that the decoded stream equals the original
//! instruction stream. A schedule that decodes incorrectly can therefore
//! never report savings.
//!
//! Two evaluation paths produce bit-identical [`Evaluation`]s:
//!
//! * [`evaluate`] — full simulation, O(dynamic fetches);
//! * [`evaluate_replay`] — closed-form replay over a recorded
//!   [`FetchEdgeProfile`], O(static edges): the transition totals are
//!   `Σ_edges weight(e) · popcount(stored[src] ^ stored[dst])`, and the
//!   decoder is verified once per scheduled block instead of once per
//!   dynamic traversal (sound because blocks are single-entry and a BBIT
//!   hit resets the decoder, so every traversal decodes identically).
//!
//! [`evaluate_auto`] picks between them from a typed [`EvalNeeds`]:
//! anything beyond data-bus transition counts (icache, timing, address
//! bus) requires the full simulator and is routed there explicitly.

use imt_bitcode::simd;
use imt_bitcode::slice::BitMatrix;
use imt_isa::program::Program;
use imt_sim::bus::DataBusMonitor;
use imt_sim::cpu::{Cpu, FetchSink};
use imt_sim::edge::FetchEdgeProfile;

use crate::error::CoreError;
use crate::hardware::FetchDecoder;
use crate::pipeline::{EncodedProgram, BUS_WIDTH};

/// Result of replaying a program against its encoded image.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Instructions fetched (= executed).
    pub fetches: u64,
    /// Total bus transitions with the original image — the paper's `#TR`.
    pub baseline_transitions: u64,
    /// Total bus transitions with the encoded image.
    pub encoded_transitions: u64,
    /// Per-line baseline transitions.
    pub per_lane_baseline: Vec<u64>,
    /// Per-line encoded transitions.
    pub per_lane_encoded: Vec<u64>,
    /// Fetches whose decoded word differed from the original (must be 0;
    /// also surfaced as an error by [`evaluate`]).
    pub decode_mismatches: u64,
    /// Fetches decoded through an active TT schedule.
    pub decoded_fetches: u64,
    /// Fetches that passed through untouched.
    pub passthrough_fetches: u64,
    /// Exit code of the simulated program.
    pub exit_code: i32,
    /// Everything the program printed.
    pub stdout: String,
}

impl Evaluation {
    /// Percentage of bus transitions eliminated (the paper's
    /// `Reduction(%)` rows in Figure 6).
    pub fn reduction_percent(&self) -> f64 {
        if self.baseline_transitions == 0 {
            return 0.0;
        }
        (self.baseline_transitions - self.encoded_transitions) as f64
            / self.baseline_transitions as f64
            * 100.0
    }
}

struct EvalSink<'a> {
    encoded_text: &'a [u32],
    text_base: u32,
    baseline: DataBusMonitor,
    encoded: DataBusMonitor,
    decoder: FetchDecoder,
    mismatches: u64,
    first_mismatch: Option<(u32, u32, u32)>,
}

impl FetchSink for EvalSink<'_> {
    #[inline]
    fn on_fetch(&mut self, pc: u32, word: u32) {
        self.baseline.observe(word as u64);
        let index = ((pc - self.text_base) / 4) as usize;
        let stored = self.encoded_text[index];
        self.encoded.observe(stored as u64);
        let decoded = self.decoder.on_fetch(pc, stored);
        if decoded != word {
            self.mismatches += 1;
            self.first_mismatch.get_or_insert((pc, decoded, word));
        }
    }
}

/// Replays `program` for up to `max_steps` instructions against its
/// encoded image, verifying the fetch decoder on every fetch.
///
/// # Errors
///
/// [`CoreError::Sim`] if the program faults or exceeds `max_steps`;
/// [`CoreError::DecodeMismatch`] if the hardware model ever restores a
/// word incorrectly (the evaluation numbers would be meaningless).
pub fn evaluate(
    program: &Program,
    encoded: &EncodedProgram,
    max_steps: u64,
) -> Result<Evaluation, CoreError> {
    let _span = imt_obs::span!("core.evaluate");
    let mut cpu = Cpu::new(program)?;
    let mut sink = EvalSink {
        encoded_text: &encoded.text,
        text_base: encoded.text_base,
        baseline: DataBusMonitor::new(BUS_WIDTH),
        encoded: DataBusMonitor::new(BUS_WIDTH),
        decoder: FetchDecoder::new(
            &encoded.tt,
            &encoded.bbit,
            BUS_WIDTH,
            encoded.config.block_size(),
            encoded.config.overlap(),
        ),
        mismatches: 0,
        first_mismatch: None,
    };
    let summary = cpu.run_with_sink(max_steps, &mut sink)?;
    if let Some((pc, decoded, expected)) = sink.first_mismatch {
        return Err(CoreError::DecodeMismatch {
            pc,
            decoded,
            expected,
        });
    }
    let evaluation = Evaluation {
        fetches: summary.instructions,
        baseline_transitions: sink.baseline.total_transitions(),
        encoded_transitions: sink.encoded.total_transitions(),
        per_lane_baseline: sink.baseline.per_lane().to_vec(),
        per_lane_encoded: sink.encoded.per_lane().to_vec(),
        decode_mismatches: sink.mismatches,
        decoded_fetches: sink.decoder.decoded_fetches(),
        passthrough_fetches: sink.decoder.passthrough_fetches(),
        exit_code: summary.exit_code,
        stdout: cpu.stdout().to_string(),
    };
    if imt_obs::enabled() {
        publish_eval_obs(&evaluation);
    }
    Ok(evaluation)
}

/// Replays a recorded fetch-edge profile against the encoded image in
/// closed form — O(distinct edges) instead of O(dynamic fetches) — and
/// returns an [`Evaluation`] bit-identical to [`evaluate`]'s on the same
/// program.
///
/// The transition totals (total *and* per lane) are weighted XOR+popcount
/// sums over the edge multiset; the per-lane breakdown reuses the
/// lane-transposed popcount machinery of [`imt_bitcode::packed`]. The
/// decode check walks every scheduled block once through the real
/// [`FetchDecoder`]: a BBIT hit resets the decoder state, blocks are
/// strictly sequential inside, and the profile is checked to contain no
/// mid-block entries — so one walk per block witnesses every dynamic
/// traversal, and a corrupted image or table is still refused.
///
/// # Errors
///
/// [`CoreError::ProfileLength`] if the profile covers a different text
/// length; [`CoreError::TableImage`] if the encoded image is malformed;
/// [`CoreError::DecodeMismatch`] if the hardware model restores any word
/// incorrectly; [`CoreError::ReplayInfeasible`] if the profile enters an
/// encoded block mid-stream (fall back to [`evaluate`]).
pub fn evaluate_replay(
    program: &Program,
    encoded: &EncodedProgram,
    profile: &FetchEdgeProfile,
) -> Result<Evaluation, CoreError> {
    let _span = imt_obs::span!("core.evaluate_replay");
    let text_len = program.text.len();
    if profile.text_len() != text_len {
        return Err(CoreError::ProfileLength {
            text_len,
            profile_len: profile.text_len(),
        });
    }
    if encoded.text.len() != text_len {
        return Err(CoreError::TableImage {
            detail: "encoded image length differs from the program text",
        });
    }

    // Static decode verification: walk each scheduled block's fetch
    // sequence once through the hardware model.
    let mut decoder = FetchDecoder::new(
        &encoded.tt,
        &encoded.bbit,
        BUS_WIDTH,
        encoded.config.block_size(),
        encoded.config.overlap(),
    );
    let mut in_span = vec![false; text_len];
    let mut span_start = vec![false; text_len];
    for (start_pc, end_pc) in decoder.scheduled_spans() {
        let start = pc_to_index(start_pc, encoded.text_base, text_len)?;
        let end = pc_to_index(end_pc.wrapping_sub(4), encoded.text_base, text_len)? + 1;
        span_start[start] = true;
        decoder.reset();
        for (index, inside) in in_span.iter_mut().enumerate().take(end).skip(start) {
            *inside = true;
            let pc = encoded.text_base + 4 * index as u32;
            let decoded = decoder.on_fetch(pc, encoded.text[index]);
            if decoded != program.text[index] {
                return Err(CoreError::DecodeMismatch {
                    pc,
                    decoded,
                    expected: program.text[index],
                });
            }
        }
    }
    // Outside every scheduled block the image must be the original words
    // (they pass through the decoder untouched).
    for (index, _) in in_span.iter().enumerate().filter(|&(_, &inside)| !inside) {
        if encoded.text[index] != program.text[index] {
            return Err(CoreError::DecodeMismatch {
                pc: encoded.text_base + 4 * index as u32,
                decoded: encoded.text[index],
                expected: program.text[index],
            });
        }
    }

    // The soundness precondition: every dynamic entry into a scheduled
    // block lands on its start PC (single-entry basic blocks). The
    // recorded edges witness every entry, so this is checkable exactly.
    let interior = |index: usize| in_span[index] && !span_start[index];
    if let Some(seed) = profile.seed_index() {
        if interior(seed) {
            return Err(CoreError::ReplayInfeasible {
                pc: encoded.text_base + 4 * seed as u32,
            });
        }
    }
    for (src, dst, _) in profile.edges() {
        if interior(dst) && src + 1 != dst {
            return Err(CoreError::ReplayInfeasible {
                pc: encoded.text_base + 4 * dst as u32,
            });
        }
    }

    // Closed-form transition counts over the weighted edge multiset.
    let (baseline_total, per_lane_baseline) = weighted_transitions(&program.text, profile);
    let (encoded_total, per_lane_encoded) = weighted_transitions(&encoded.text, profile);

    // Every fetch of a scheduled index decodes through the TT (entries are
    // always via the BBIT'd start PC, interiors always sequential — both
    // just verified), so the decoded/passthrough split follows from the
    // per-index counts.
    let per_index = profile.per_index_counts();
    let decoded_fetches: u64 = per_index
        .iter()
        .zip(&in_span)
        .filter(|&(_, &inside)| inside)
        .map(|(&count, _)| count)
        .sum();

    let evaluation = Evaluation {
        fetches: profile.fetches(),
        baseline_transitions: baseline_total,
        encoded_transitions: encoded_total,
        per_lane_baseline,
        per_lane_encoded,
        decode_mismatches: 0,
        decoded_fetches,
        passthrough_fetches: profile.fetches() - decoded_fetches,
        exit_code: profile.exit_code(),
        stdout: profile.stdout().to_string(),
    };
    if imt_obs::enabled() {
        imt_obs::counter!("core.eval.replays").inc();
        publish_eval_obs(&evaluation);
    }
    Ok(evaluation)
}

pub(crate) fn pc_to_index(pc: u32, text_base: u32, text_len: usize) -> Result<usize, CoreError> {
    let offset = pc.wrapping_sub(text_base);
    let index = (offset / 4) as usize;
    if pc < text_base || !offset.is_multiple_of(4) || index >= text_len {
        return Err(CoreError::TableImage {
            detail: "scheduled span outside the text image",
        });
    }
    Ok(index)
}

/// Total and per-lane weighted transitions of `words` over the profile's
/// edge multiset.
///
/// The total is a direct weighted popcount. The per-lane breakdown uses
/// the bit-sliced machinery of [`BitMatrix`]: one tile-transpose pass
/// turns the per-edge XOR words into one bitset per bus lane and each
/// edge weight into one bitset per weight bit, then
/// `per_lane[l] = Σ_b 2^b · popcount(lane_l & weight_plane_b)` — pure
/// word-wide AND+popcount, no per-bit or per-lane extraction loops.
///
/// Public because the scheme arena ([`crate::scheme`]) prices every
/// static stored image — Gray, codebook, per-lane composites — in the
/// same closed-form currency.
pub fn weighted_transitions(words: &[u32], profile: &FetchEdgeProfile) -> (u64, Vec<u64>) {
    let mut diffs = Vec::with_capacity(profile.distinct_edges());
    let mut weights = Vec::with_capacity(profile.distinct_edges());
    let mut total = 0u64;
    for (src, dst, weight) in profile.edges() {
        let diff = u64::from(words[src] ^ words[dst]);
        total += weight * u64::from(diff.count_ones());
        diffs.push(diff);
        weights.push(weight);
    }
    let mut per_lane = vec![0u64; BUS_WIDTH];
    let weight_bits = 64 - weights.iter().fold(0u64, |acc, &w| acc | w).leading_zeros();
    if weight_bits > 0 && !diffs.is_empty() {
        let path = simd::active_path();
        let lanes = BitMatrix::from_words(&diffs, BUS_WIDTH, path);
        let planes = BitMatrix::from_words(&weights, weight_bits as usize, path);
        for (lane, slot) in per_lane.iter_mut().enumerate() {
            let lane_diffs = lanes.lane_row(lane);
            let mut sum = 0u64;
            for bit in 0..planes.lanes() {
                let overlap: u64 = lane_diffs
                    .iter()
                    .zip(planes.lane_row(bit))
                    .map(|(&d, &p)| u64::from((d & p).count_ones()))
                    .sum();
                sum += overlap << bit;
            }
            *slot = sum;
        }
    }
    debug_assert_eq!(per_lane.iter().sum::<u64>(), total);
    (total, per_lane)
}

/// What an evaluation's caller needs beyond data-bus transition counts.
/// Replay covers transitions only; everything else requires the full
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalNeeds {
    /// Instruction-cache statistics (hit rates, hierarchy traffic).
    pub icache: bool,
    /// Front-end timing (redirect bubbles, stall cycles).
    pub timing: bool,
    /// Address-bus transition counts.
    pub address_bus: bool,
}

impl EvalNeeds {
    /// Data-bus transition counts only — the replay-eligible need set.
    pub const fn transitions_only() -> EvalNeeds {
        EvalNeeds {
            icache: false,
            timing: false,
            address_bus: false,
        }
    }

    /// Why these needs force full simulation, if they do.
    pub fn full_sim_reason(self) -> Option<FullSimReason> {
        if self.icache {
            Some(FullSimReason::Icache)
        } else if self.timing {
            Some(FullSimReason::Timing)
        } else if self.address_bus {
            Some(FullSimReason::AddressBus)
        } else {
            None
        }
    }
}

/// Why [`evaluate_auto`] took the full-simulation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullSimReason {
    /// Instruction-cache statistics were requested.
    Icache,
    /// Front-end timing was requested.
    Timing,
    /// Address-bus statistics were requested.
    AddressBus,
    /// No fetch-edge profile was supplied.
    NoProfile,
    /// The profile enters an encoded block mid-stream
    /// ([`CoreError::ReplayInfeasible`]).
    ReplayInfeasible,
}

/// Which path [`evaluate_auto`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPath {
    /// Closed-form replay over the edge profile.
    Replay,
    /// Full simulation, and why.
    FullSim(FullSimReason),
}

/// Evaluates via replay when `needs` allow it and a profile is available,
/// falling back to full simulation otherwise — the two paths return
/// bit-identical [`Evaluation`]s, so callers choose on cost, not result.
///
/// # Errors
///
/// As [`evaluate`] / [`evaluate_replay`] (a replay-infeasible profile is
/// not an error: it falls back to full simulation).
pub fn evaluate_auto(
    program: &Program,
    encoded: &EncodedProgram,
    max_steps: u64,
    profile: Option<&FetchEdgeProfile>,
    needs: EvalNeeds,
) -> Result<(Evaluation, EvalPath), CoreError> {
    if let Some(reason) = needs.full_sim_reason() {
        return Ok((
            evaluate(program, encoded, max_steps)?,
            EvalPath::FullSim(reason),
        ));
    }
    let Some(profile) = profile else {
        return Ok((
            evaluate(program, encoded, max_steps)?,
            EvalPath::FullSim(FullSimReason::NoProfile),
        ));
    };
    match evaluate_replay(program, encoded, profile) {
        Ok(evaluation) => Ok((evaluation, EvalPath::Replay)),
        Err(CoreError::ReplayInfeasible { .. }) => Ok((
            evaluate(program, encoded, max_steps)?,
            EvalPath::FullSim(FullSimReason::ReplayInfeasible),
        )),
        Err(e) => Err(e),
    }
}

/// Publishes one evaluation under the thread's current context label:
/// labelled transition gauges plus a structured `eval` event carrying the
/// per-lane breakdown (validated lane-sum-equals-total by `imt obs check`).
/// Both evaluation paths publish the same metrics, including the bus
/// gauges [`DataBusMonitor::publish_obs`] would emit.
fn publish_eval_obs(eval: &Evaluation) {
    use imt_obs::json::Json;
    let label = imt_obs::current_label();
    imt_obs::counter!("core.eval.runs").inc();
    imt_obs::counter!("core.eval.fetches").add(eval.fetches);
    imt_obs::gauge_labeled("core.eval.baseline_transitions", &label).set(eval.baseline_transitions);
    imt_obs::gauge_labeled("core.eval.encoded_transitions", &label).set(eval.encoded_transitions);
    for (suffix, words, transitions) in [
        ("baseline", eval.fetches, eval.baseline_transitions),
        ("encoded", eval.fetches, eval.encoded_transitions),
    ] {
        let bus_label = format!("{label}/{suffix}");
        imt_obs::gauge_labeled("sim.bus.words", &bus_label).set(words);
        imt_obs::gauge_labeled("sim.bus.transitions", &bus_label).set(transitions);
    }
    imt_obs::event(
        "eval",
        label,
        Json::obj(vec![
            ("fetches", Json::U64(eval.fetches)),
            ("baseline_transitions", Json::U64(eval.baseline_transitions)),
            ("encoded_transitions", Json::U64(eval.encoded_transitions)),
            ("reduction_percent", Json::F64(eval.reduction_percent())),
            ("decoded_fetches", Json::U64(eval.decoded_fetches)),
            ("passthrough_fetches", Json::U64(eval.passthrough_fetches)),
            (
                "per_lane_baseline",
                Json::Arr(
                    eval.per_lane_baseline
                        .iter()
                        .map(|&t| Json::U64(t))
                        .collect(),
                ),
            ),
            (
                "per_lane_encoded",
                Json::Arr(
                    eval.per_lane_encoded
                        .iter()
                        .map(|&t| Json::U64(t))
                        .collect(),
                ),
            ),
        ]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;
    use crate::pipeline::encode_program;
    use imt_bitcode::block::OverlapHistory;
    use imt_bitcode::TransformSet;
    use imt_isa::asm::assemble;

    fn pipeline(source: &str, config: &EncoderConfig) -> (Program, EncodedProgram) {
        let program = assemble(source).expect("assembly failed");
        let mut cpu = Cpu::new(&program).expect("load failed");
        cpu.run(10_000_000).expect("run failed");
        let profile = cpu.profile().to_vec();
        let encoded = encode_program(&program, &profile, config).expect("encode failed");
        (program, encoded)
    }

    const LOOP_PROGRAM: &str = r#"
            .text
    main:   li   $t0, 1000
    loop:   xor  $t1, $t1, $t0
            sll  $t2, $t1, 3
            srl  $t3, $t1, 7
            addu $t4, $t2, $t3
            subu $t5, $t3, $t2
            and  $t6, $t4, $t5
            addiu $t0, $t0, -1
            bgtz $t0, loop
            move $a0, $t6
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
    "#;

    #[test]
    fn reduces_transitions_and_decodes_exactly() {
        for k in [4usize, 5, 6, 7] {
            for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
                let config = EncoderConfig::default()
                    .with_block_size(k)
                    .unwrap()
                    .with_overlap(overlap);
                let (program, encoded) = pipeline(LOOP_PROGRAM, &config);
                let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
                assert_eq!(eval.decode_mismatches, 0, "k={k} {overlap:?}");
                assert!(
                    eval.encoded_transitions < eval.baseline_transitions,
                    "k={k} {overlap:?}: {} >= {}",
                    eval.encoded_transitions,
                    eval.baseline_transitions
                );
                // The loop dominates: nearly all fetches decode through TT.
                assert!(eval.decoded_fetches > eval.passthrough_fetches);
                assert!(eval.reduction_percent() > 5.0, "k={k} {overlap:?}");
            }
        }
    }

    #[test]
    fn program_behaviour_is_unchanged() {
        let (program, encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        // The decoded stream drives the same execution: same output as a
        // plain run of the original.
        let mut plain = Cpu::new(&program).unwrap();
        plain.run(10_000_000).unwrap();
        assert_eq!(eval.stdout, plain.stdout());
        assert_eq!(eval.exit_code, 0);
    }

    #[test]
    fn empty_schedule_changes_nothing() {
        let config = EncoderConfig::default().with_tt_capacity(0);
        let (program, encoded) = pipeline(LOOP_PROGRAM, &config);
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        assert_eq!(eval.baseline_transitions, eval.encoded_transitions);
        assert_eq!(eval.reduction_percent(), 0.0);
        assert_eq!(eval.decoded_fetches, 0);
        assert_eq!(eval.passthrough_fetches, eval.fetches);
    }

    #[test]
    fn all_sixteen_transforms_do_no_worse_than_eight() {
        let base = EncoderConfig::default();
        let (program, encoded8) = pipeline(LOOP_PROGRAM, &base);
        let config16 = base.with_transforms(TransformSet::ALL_SIXTEEN).unwrap();
        let (_, encoded16) = pipeline(LOOP_PROGRAM, &config16);
        let eval8 = evaluate(&program, &encoded8, 10_000_000).unwrap();
        let eval16 = evaluate(&program, &encoded16, 10_000_000).unwrap();
        assert!(eval16.encoded_transitions <= eval8.encoded_transitions);
    }

    #[test]
    fn per_lane_totals_are_consistent() {
        let (program, encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        assert_eq!(
            eval.per_lane_baseline.iter().sum::<u64>(),
            eval.baseline_transitions
        );
        assert_eq!(
            eval.per_lane_encoded.iter().sum::<u64>(),
            eval.encoded_transitions
        );
    }

    #[test]
    fn corrupted_schedules_are_caught_not_measured() {
        // The verification spine's negative path: flip one transform in
        // the TT and the evaluation must refuse with DecodeMismatch
        // instead of reporting bogus savings.
        let (program, mut encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let mut tt = crate::hardware::TransformationTable::new();
        for (i, entry) in encoded.tt.entries().iter().enumerate() {
            let mut entry = entry.clone();
            if i == 0 {
                // Corrupt one lane's transform on the first entry.
                entry.lane_transforms[3] =
                    if entry.lane_transforms[3] == imt_bitcode::Transform::NOT_X {
                        imt_bitcode::Transform::XOR
                    } else {
                        imt_bitcode::Transform::NOT_X
                    };
            }
            tt.push(entry);
        }
        encoded.tt = tt;
        let err = evaluate(&program, &encoded, 10_000_000).unwrap_err();
        assert!(
            matches!(err, crate::CoreError::DecodeMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupted_image_is_caught_too() {
        // Same, for a bit flipped in the stored memory image.
        let (program, mut encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let hot = encoded.report.encoded[0].clone();
        let index = (hot.start_pc - encoded.text_base) as usize / 4 + 1;
        encoded.text[index] ^= 1 << 7;
        let err = evaluate(&program, &encoded, 10_000_000).unwrap_err();
        assert!(matches!(err, crate::CoreError::DecodeMismatch { .. }));
    }

    fn record(program: &Program) -> FetchEdgeProfile {
        FetchEdgeProfile::record(program, 10_000_000).expect("recording failed")
    }

    #[test]
    fn replay_is_bit_identical_to_full_simulation() {
        for k in [4usize, 5, 6, 7] {
            for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
                let config = EncoderConfig::default()
                    .with_block_size(k)
                    .unwrap()
                    .with_overlap(overlap);
                let (program, encoded) = pipeline(LOOP_PROGRAM, &config);
                let profile = record(&program);
                let full = evaluate(&program, &encoded, 10_000_000).unwrap();
                let replay = evaluate_replay(&program, &encoded, &profile).unwrap();
                // Full struct equality: totals, all 32 lanes, fetch split,
                // behaviour — nothing may drift between the paths.
                assert_eq!(replay, full, "k={k} {overlap:?}");
            }
        }
    }

    #[test]
    fn replay_handles_branchy_control_flow() {
        let source = r#"
            .text
    main:   li   $t0, 400
    loop:   andi $t1, $t0, 1
            beq  $t1, $zero, even
    odd:    xor  $t2, $t2, $t0
            b    next
    even:   addu $t3, $t3, $t0
    next:   addiu $t0, $t0, -1
            bgtz $t0, loop
            li   $v0, 10
            syscall
    "#;
        let (program, encoded) = pipeline(source, &EncoderConfig::default());
        let profile = record(&program);
        let full = evaluate(&program, &encoded, 10_000_000).unwrap();
        let replay = evaluate_replay(&program, &encoded, &profile).unwrap();
        assert_eq!(replay, full);
    }

    #[test]
    fn replay_refuses_a_corrupted_image() {
        // The regression guard for the replay path: a bit flipped in the
        // stored image must surface as DecodeMismatch, exactly as the
        // full-simulation path refuses it — replay must never be a way to
        // report savings from an image that would not decode.
        let (program, mut encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let profile = record(&program);
        let hot = encoded.report.encoded[0].clone();
        let index = (hot.start_pc - encoded.text_base) as usize / 4 + 1;
        encoded.text[index] ^= 1 << 7;
        let err = evaluate_replay(&program, &encoded, &profile).unwrap_err();
        assert!(matches!(err, crate::CoreError::DecodeMismatch { .. }));
    }

    #[test]
    fn replay_refuses_a_corrupted_schedule() {
        let (program, mut encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let profile = record(&program);
        let mut tt = crate::hardware::TransformationTable::new();
        for (i, entry) in encoded.tt.entries().iter().enumerate() {
            let mut entry = entry.clone();
            if i == 0 {
                entry.lane_transforms[3] =
                    if entry.lane_transforms[3] == imt_bitcode::Transform::NOT_X {
                        imt_bitcode::Transform::XOR
                    } else {
                        imt_bitcode::Transform::NOT_X
                    };
            }
            tt.push(entry);
        }
        encoded.tt = tt;
        let err = evaluate_replay(&program, &encoded, &profile).unwrap_err();
        assert!(matches!(err, crate::CoreError::DecodeMismatch { .. }));
    }

    #[test]
    fn replay_refuses_an_untouched_word_changed_outside_any_span() {
        // Outside every scheduled block the stored image must equal the
        // original — fetched or not, the replay check is total.
        let (program, mut encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let profile = record(&program);
        let last = encoded.text.len() - 1;
        encoded.text[last] ^= 1;
        let err = evaluate_replay(&program, &encoded, &profile).unwrap_err();
        assert!(matches!(err, crate::CoreError::DecodeMismatch { .. }));
    }

    #[test]
    fn replay_rejects_a_profile_for_a_different_program() {
        let (program, encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let other = assemble("    .text\nmain: li $v0, 10\n    syscall\n").unwrap();
        let profile = record(&other);
        let err = evaluate_replay(&program, &encoded, &profile).unwrap_err();
        assert!(matches!(err, crate::CoreError::ProfileLength { .. }));
    }

    #[test]
    fn evaluate_auto_routes_and_reports_its_path() {
        let (program, encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let profile = record(&program);
        let needs = EvalNeeds::transitions_only();

        let (via_replay, path) =
            evaluate_auto(&program, &encoded, 10_000_000, Some(&profile), needs).unwrap();
        assert_eq!(path, EvalPath::Replay);

        let (via_sim, path) = evaluate_auto(&program, &encoded, 10_000_000, None, needs).unwrap();
        assert_eq!(path, EvalPath::FullSim(FullSimReason::NoProfile));
        assert_eq!(via_replay, via_sim);

        let icache = EvalNeeds {
            icache: true,
            ..EvalNeeds::default()
        };
        let (_, path) =
            evaluate_auto(&program, &encoded, 10_000_000, Some(&profile), icache).unwrap();
        assert_eq!(path, EvalPath::FullSim(FullSimReason::Icache));
    }

    #[test]
    fn branchy_loop_with_two_blocks_decodes_exactly() {
        // A loop whose body alternates between two basic blocks exercises
        // BBIT re-lookup at both block entries every iteration.
        let source = r#"
            .text
    main:   li   $t0, 400
    loop:   andi $t1, $t0, 1
            beq  $t1, $zero, even
    odd:    xor  $t2, $t2, $t0
            b    next
    even:   addu $t3, $t3, $t0
    next:   addiu $t0, $t0, -1
            bgtz $t0, loop
            li   $v0, 10
            syscall
    "#;
        let (program, encoded) = pipeline(source, &EncoderConfig::default());
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        assert_eq!(eval.decode_mismatches, 0);
        assert!(eval.encoded_transitions <= eval.baseline_transitions);
        assert!(encoded.report.encoded.len() >= 2);
    }
}
