//! Dynamic evaluation: replay a real execution against the encoded image.
//!
//! This is the experiment of the paper's §8: run the program on the
//! simulated core, stream every fetch through two bus monitors — one fed
//! the original words, one fed the encoded image — and, crucially, through
//! the [`crate::hardware::FetchDecoder`] hardware model,
//! checking bit-for-bit that the decoded stream equals the original
//! instruction stream. A schedule that decodes incorrectly can therefore
//! never report savings.

use imt_isa::program::Program;
use imt_sim::bus::DataBusMonitor;
use imt_sim::cpu::{Cpu, FetchSink};

use crate::error::CoreError;
use crate::hardware::FetchDecoder;
use crate::pipeline::{EncodedProgram, BUS_WIDTH};

/// Result of replaying a program against its encoded image.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Instructions fetched (= executed).
    pub fetches: u64,
    /// Total bus transitions with the original image — the paper's `#TR`.
    pub baseline_transitions: u64,
    /// Total bus transitions with the encoded image.
    pub encoded_transitions: u64,
    /// Per-line baseline transitions.
    pub per_lane_baseline: Vec<u64>,
    /// Per-line encoded transitions.
    pub per_lane_encoded: Vec<u64>,
    /// Fetches whose decoded word differed from the original (must be 0;
    /// also surfaced as an error by [`evaluate`]).
    pub decode_mismatches: u64,
    /// Fetches decoded through an active TT schedule.
    pub decoded_fetches: u64,
    /// Fetches that passed through untouched.
    pub passthrough_fetches: u64,
    /// Exit code of the simulated program.
    pub exit_code: i32,
    /// Everything the program printed.
    pub stdout: String,
}

impl Evaluation {
    /// Percentage of bus transitions eliminated (the paper's
    /// `Reduction(%)` rows in Figure 6).
    pub fn reduction_percent(&self) -> f64 {
        if self.baseline_transitions == 0 {
            return 0.0;
        }
        (self.baseline_transitions - self.encoded_transitions) as f64
            / self.baseline_transitions as f64
            * 100.0
    }
}

struct EvalSink<'a> {
    encoded_text: &'a [u32],
    text_base: u32,
    baseline: DataBusMonitor,
    encoded: DataBusMonitor,
    decoder: FetchDecoder,
    mismatches: u64,
    first_mismatch: Option<(u32, u32, u32)>,
}

impl FetchSink for EvalSink<'_> {
    #[inline]
    fn on_fetch(&mut self, pc: u32, word: u32) {
        self.baseline.observe(word as u64);
        let index = ((pc - self.text_base) / 4) as usize;
        let stored = self.encoded_text[index];
        self.encoded.observe(stored as u64);
        let decoded = self.decoder.on_fetch(pc, stored);
        if decoded != word {
            self.mismatches += 1;
            self.first_mismatch.get_or_insert((pc, decoded, word));
        }
    }
}

/// Replays `program` for up to `max_steps` instructions against its
/// encoded image, verifying the fetch decoder on every fetch.
///
/// # Errors
///
/// [`CoreError::Sim`] if the program faults or exceeds `max_steps`;
/// [`CoreError::DecodeMismatch`] if the hardware model ever restores a
/// word incorrectly (the evaluation numbers would be meaningless).
pub fn evaluate(
    program: &Program,
    encoded: &EncodedProgram,
    max_steps: u64,
) -> Result<Evaluation, CoreError> {
    let mut cpu = Cpu::new(program)?;
    let mut sink = EvalSink {
        encoded_text: &encoded.text,
        text_base: encoded.text_base,
        baseline: DataBusMonitor::new(BUS_WIDTH),
        encoded: DataBusMonitor::new(BUS_WIDTH),
        decoder: FetchDecoder::new(
            &encoded.tt,
            &encoded.bbit,
            BUS_WIDTH,
            encoded.config.block_size(),
            encoded.config.overlap(),
        ),
        mismatches: 0,
        first_mismatch: None,
    };
    let summary = cpu.run_with_sink(max_steps, &mut sink)?;
    if let Some((pc, decoded, expected)) = sink.first_mismatch {
        return Err(CoreError::DecodeMismatch {
            pc,
            decoded,
            expected,
        });
    }
    let evaluation = Evaluation {
        fetches: summary.instructions,
        baseline_transitions: sink.baseline.total_transitions(),
        encoded_transitions: sink.encoded.total_transitions(),
        per_lane_baseline: sink.baseline.per_lane().to_vec(),
        per_lane_encoded: sink.encoded.per_lane().to_vec(),
        decode_mismatches: sink.mismatches,
        decoded_fetches: sink.decoder.decoded_fetches(),
        passthrough_fetches: sink.decoder.passthrough_fetches(),
        exit_code: summary.exit_code,
        stdout: cpu.stdout().to_string(),
    };
    if imt_obs::enabled() {
        publish_eval_obs(&evaluation, &sink);
    }
    Ok(evaluation)
}

/// Publishes one evaluation under the thread's current context label:
/// labelled transition gauges plus a structured `eval` event carrying the
/// per-lane breakdown (validated lane-sum-equals-total by `imt obs check`).
fn publish_eval_obs(eval: &Evaluation, sink: &EvalSink<'_>) {
    use imt_obs::json::Json;
    let label = imt_obs::current_label();
    imt_obs::counter!("core.eval.runs").inc();
    imt_obs::counter!("core.eval.fetches").add(eval.fetches);
    imt_obs::gauge_labeled("core.eval.baseline_transitions", &label).set(eval.baseline_transitions);
    imt_obs::gauge_labeled("core.eval.encoded_transitions", &label).set(eval.encoded_transitions);
    sink.baseline.publish_obs(&format!("{label}/baseline"));
    sink.encoded.publish_obs(&format!("{label}/encoded"));
    imt_obs::event(
        "eval",
        label,
        Json::obj(vec![
            ("fetches", Json::U64(eval.fetches)),
            ("baseline_transitions", Json::U64(eval.baseline_transitions)),
            ("encoded_transitions", Json::U64(eval.encoded_transitions)),
            ("reduction_percent", Json::F64(eval.reduction_percent())),
            ("decoded_fetches", Json::U64(eval.decoded_fetches)),
            ("passthrough_fetches", Json::U64(eval.passthrough_fetches)),
            (
                "per_lane_baseline",
                Json::Arr(
                    eval.per_lane_baseline
                        .iter()
                        .map(|&t| Json::U64(t))
                        .collect(),
                ),
            ),
            (
                "per_lane_encoded",
                Json::Arr(
                    eval.per_lane_encoded
                        .iter()
                        .map(|&t| Json::U64(t))
                        .collect(),
                ),
            ),
        ]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;
    use crate::pipeline::encode_program;
    use imt_bitcode::block::OverlapHistory;
    use imt_bitcode::TransformSet;
    use imt_isa::asm::assemble;

    fn pipeline(source: &str, config: &EncoderConfig) -> (Program, EncodedProgram) {
        let program = assemble(source).expect("assembly failed");
        let mut cpu = Cpu::new(&program).expect("load failed");
        cpu.run(10_000_000).expect("run failed");
        let profile = cpu.profile().to_vec();
        let encoded = encode_program(&program, &profile, config).expect("encode failed");
        (program, encoded)
    }

    const LOOP_PROGRAM: &str = r#"
            .text
    main:   li   $t0, 1000
    loop:   xor  $t1, $t1, $t0
            sll  $t2, $t1, 3
            srl  $t3, $t1, 7
            addu $t4, $t2, $t3
            subu $t5, $t3, $t2
            and  $t6, $t4, $t5
            addiu $t0, $t0, -1
            bgtz $t0, loop
            move $a0, $t6
            li   $v0, 1
            syscall
            li   $v0, 10
            syscall
    "#;

    #[test]
    fn reduces_transitions_and_decodes_exactly() {
        for k in [4usize, 5, 6, 7] {
            for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
                let config = EncoderConfig::default()
                    .with_block_size(k)
                    .unwrap()
                    .with_overlap(overlap);
                let (program, encoded) = pipeline(LOOP_PROGRAM, &config);
                let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
                assert_eq!(eval.decode_mismatches, 0, "k={k} {overlap:?}");
                assert!(
                    eval.encoded_transitions < eval.baseline_transitions,
                    "k={k} {overlap:?}: {} >= {}",
                    eval.encoded_transitions,
                    eval.baseline_transitions
                );
                // The loop dominates: nearly all fetches decode through TT.
                assert!(eval.decoded_fetches > eval.passthrough_fetches);
                assert!(eval.reduction_percent() > 5.0, "k={k} {overlap:?}");
            }
        }
    }

    #[test]
    fn program_behaviour_is_unchanged() {
        let (program, encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        // The decoded stream drives the same execution: same output as a
        // plain run of the original.
        let mut plain = Cpu::new(&program).unwrap();
        plain.run(10_000_000).unwrap();
        assert_eq!(eval.stdout, plain.stdout());
        assert_eq!(eval.exit_code, 0);
    }

    #[test]
    fn empty_schedule_changes_nothing() {
        let config = EncoderConfig::default().with_tt_capacity(0);
        let (program, encoded) = pipeline(LOOP_PROGRAM, &config);
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        assert_eq!(eval.baseline_transitions, eval.encoded_transitions);
        assert_eq!(eval.reduction_percent(), 0.0);
        assert_eq!(eval.decoded_fetches, 0);
        assert_eq!(eval.passthrough_fetches, eval.fetches);
    }

    #[test]
    fn all_sixteen_transforms_do_no_worse_than_eight() {
        let base = EncoderConfig::default();
        let (program, encoded8) = pipeline(LOOP_PROGRAM, &base);
        let config16 = base.with_transforms(TransformSet::ALL_SIXTEEN).unwrap();
        let (_, encoded16) = pipeline(LOOP_PROGRAM, &config16);
        let eval8 = evaluate(&program, &encoded8, 10_000_000).unwrap();
        let eval16 = evaluate(&program, &encoded16, 10_000_000).unwrap();
        assert!(eval16.encoded_transitions <= eval8.encoded_transitions);
    }

    #[test]
    fn per_lane_totals_are_consistent() {
        let (program, encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        assert_eq!(
            eval.per_lane_baseline.iter().sum::<u64>(),
            eval.baseline_transitions
        );
        assert_eq!(
            eval.per_lane_encoded.iter().sum::<u64>(),
            eval.encoded_transitions
        );
    }

    #[test]
    fn corrupted_schedules_are_caught_not_measured() {
        // The verification spine's negative path: flip one transform in
        // the TT and the evaluation must refuse with DecodeMismatch
        // instead of reporting bogus savings.
        let (program, mut encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let mut tt = crate::hardware::TransformationTable::new();
        for (i, entry) in encoded.tt.entries().iter().enumerate() {
            let mut entry = entry.clone();
            if i == 0 {
                // Corrupt one lane's transform on the first entry.
                entry.lane_transforms[3] =
                    if entry.lane_transforms[3] == imt_bitcode::Transform::NOT_X {
                        imt_bitcode::Transform::XOR
                    } else {
                        imt_bitcode::Transform::NOT_X
                    };
            }
            tt.push(entry);
        }
        encoded.tt = tt;
        let err = evaluate(&program, &encoded, 10_000_000).unwrap_err();
        assert!(
            matches!(err, crate::CoreError::DecodeMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupted_image_is_caught_too() {
        // Same, for a bit flipped in the stored memory image.
        let (program, mut encoded) = pipeline(LOOP_PROGRAM, &EncoderConfig::default());
        let hot = encoded.report.encoded[0].clone();
        let index = (hot.start_pc - encoded.text_base) as usize / 4 + 1;
        encoded.text[index] ^= 1 << 7;
        let err = evaluate(&program, &encoded, 10_000_000).unwrap_err();
        assert!(matches!(err, crate::CoreError::DecodeMismatch { .. }));
    }

    #[test]
    fn branchy_loop_with_two_blocks_decodes_exactly() {
        // A loop whose body alternates between two basic blocks exercises
        // BBIT re-lookup at both block entries every iteration.
        let source = r#"
            .text
    main:   li   $t0, 400
    loop:   andi $t1, $t0, 1
            beq  $t1, $zero, even
    odd:    xor  $t2, $t2, $t0
            b    next
    even:   addu $t3, $t3, $t0
    next:   addiu $t0, $t0, -1
            bgtz $t0, loop
            li   $v0, 10
            syscall
    "#;
        let (program, encoded) = pipeline(source, &EncoderConfig::default());
        let eval = evaluate(&program, &encoded, 10_000_000).unwrap();
        assert_eq!(eval.decode_mismatches, 0);
        assert!(eval.encoded_transitions <= eval.baseline_transitions);
        assert!(encoded.report.encoded.len() >= 2);
    }
}
