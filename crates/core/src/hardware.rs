//! Software model of the fetch-stage decode hardware (paper §7.2,
//! Figure 5).
//!
//! Two small tables drive the decoder:
//!
//! * the **Transformation Table (TT)**: one entry per encoded block of
//!   instructions, holding a transformation index for every bus line
//!   (3 control bits each with the canonical eight), plus the `E` (end)
//!   bit and the `CT` tail counter that delimit a basic block's last,
//!   possibly short, block;
//! * the **Basic Block Identification Table (BBIT)**: one entry per
//!   encoded basic block, mapping its start PC to its first TT entry.
//!
//! [`FetchDecoder`] walks these tables against the fetch stream: a BBIT
//! hit (re)activates decoding at the block's first TT entry; each fetched
//! word is restored lane by lane through the selected gate with a one-bit
//! history flip-flop per lane; the `E`/`CT` fields tell the walker when
//! the basic block's schedule is exhausted, after which words pass
//! through untouched until the next BBIT hit. Fetches with no active
//! schedule (code outside the encoded region) pass through untouched —
//! instruction memory holds original words there.
//!
//! Both tables live behind [`crate::protect::ProtectedTables`]: SRAM
//! modelled at the bit level, optionally guarded by a per-entry parity or
//! SEC Hamming code (DESIGN.md §11). A clean run never pays for this —
//! the decoder reads materialized decoded views — but when a fault
//! injector flips a stored bit the decoder scrubs the arrays, corrects
//! what the code can correct, and *degrades* blocks it can no longer
//! trust: their fetches are flagged [`FetchKind::Degraded`] so the memory
//! system falls back to the original words instead of decoding garbage.

use imt_bitcode::block::OverlapHistory;
use imt_bitcode::{Transform, TransformSet};

use crate::protect::{
    EntryLayout, FaultEvent, FaultOutcome, ProtectedTables, Protection, TableKind,
};
use crate::CoreError;

/// One Transformation Table entry: the per-line transformation selectors
/// for one block of instructions (Figure 5a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtEntry {
    /// The transformation for each bus line (index = line).
    pub lane_transforms: Vec<Transform>,
    /// The `E` delimiter: this entry is the last for its basic block.
    pub end: bool,
    /// How many instruction fetches this entry covers. For the last entry
    /// of a basic block this is the hardware's `CT` counter value; for
    /// earlier entries it is implied by the block size (`k` for the first
    /// entry, `k - 1` for continuation entries) and stored here for the
    /// software model's convenience.
    pub covers: usize,
}

impl TtEntry {
    /// Control bits consumed by this entry for `lanes` lines with
    /// `control_bits` selector width (plus 1 for `E`, plus the `CT`
    /// counter width) — the paper's hardware-cost accounting.
    pub fn storage_bits(lanes: usize, control_bits: u32, ct_bits: u32) -> u64 {
        lanes as u64 * control_bits as u64 + 1 + ct_bits as u64
    }
}

/// The Transformation Table: a small SRAM array of [`TtEntry`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransformationTable {
    entries: Vec<TtEntry>,
}

impl TransformationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, returning its index.
    pub fn push(&mut self, entry: TtEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// The entries in allocation order.
    pub fn entries(&self) -> &[TtEntry] {
        &self.entries
    }

    /// Number of entries allocated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `index`, if any.
    ///
    /// Out-of-range indices return `None` — never panic. The fetch
    /// decoder treats a dangling index (a corrupted BBIT entry, or a
    /// walker running past the table because an `E` bit was flipped
    /// away) as a detected structural fault and degrades the affected
    /// block instead of indexing blindly.
    pub fn get(&self, index: usize) -> Option<&TtEntry> {
        self.entries.get(index)
    }
}

/// The storage and logic budget of a TT/BBIT configuration — the paper's
/// §7.2 hardware-overhead accounting, computed for an actual schedule.
///
/// ```
/// use imt_core::hardware::HardwareBudget;
/// use imt_core::protect::Protection;
///
/// // The paper's operating point: 16 TT entries, 10 BBIT entries,
/// // 32 lines, 8 transformations, block size 5.
/// let budget = HardwareBudget::new(16, 10, 32, 8, 5);
/// assert_eq!(budget.tt_bits_per_entry, 32 * 3 + 1 + 3);
/// assert!(budget.total_bits() < 3000); // well under half a kilobyte
///
/// // Protecting the arrays charges the check bits to the same account.
/// let sec = budget.with_protection(Protection::Sec);
/// assert_eq!(sec.tt_check_bits_per_entry, 7); // 2^7 ≥ 100 + 7 + 1
/// assert!(sec.total_bits() > budget.total_bits());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareBudget {
    /// TT entries provisioned.
    pub tt_entries: usize,
    /// BBIT entries provisioned.
    pub bbit_entries: usize,
    /// Bits per TT entry: `lanes × ⌈log₂ transforms⌉ + 1 (E) + CT width`.
    pub tt_bits_per_entry: u64,
    /// Bits per BBIT entry: a 32-bit PC tag plus a TT index.
    pub bbit_bits_per_entry: u64,
    /// Two-input gates in the restore path (one per line per member of the
    /// transformation set, plus a per-line mux).
    pub restore_gates: u64,
    /// The check code protecting each entry (§11 fault model).
    pub protection: Protection,
    /// Check bits appended to each TT entry by `protection`.
    pub tt_check_bits_per_entry: u64,
    /// Check bits appended to each BBIT entry by `protection`.
    pub bbit_check_bits_per_entry: u64,
}

impl HardwareBudget {
    /// Computes the budget for a configuration (unprotected arrays).
    pub fn new(
        tt_entries: usize,
        bbit_entries: usize,
        lanes: usize,
        transforms: usize,
        block_size: usize,
    ) -> Self {
        let control_bits = usize::BITS - transforms.saturating_sub(1).leading_zeros();
        let ct_bits = usize::BITS - block_size.saturating_sub(1).leading_zeros().max(1);
        let tt_index_bits =
            u64::from(usize::BITS - tt_entries.saturating_sub(1).leading_zeros().max(1));
        HardwareBudget {
            tt_entries,
            bbit_entries,
            tt_bits_per_entry: lanes as u64 * u64::from(control_bits) + 1 + u64::from(ct_bits),
            bbit_bits_per_entry: 32 + tt_index_bits,
            // One gate per transformation per line plus an 8:1 (or smaller)
            // selection mux, counted as `transforms` gate-equivalents.
            restore_gates: (lanes * transforms * 2) as u64,
            protection: Protection::None,
            tt_check_bits_per_entry: 0,
            bbit_check_bits_per_entry: 0,
        }
    }

    /// Budget implied by an encoded program's tables and configuration.
    pub fn of_schedule(encoded: &crate::pipeline::EncodedProgram) -> Self {
        HardwareBudget::new(
            encoded.tt.len(),
            encoded.bbit.len(),
            crate::pipeline::BUS_WIDTH,
            encoded.config.transforms().len(),
            encoded.config.block_size(),
        )
    }

    /// Charges `protection`'s per-entry check bits to the budget, so the
    /// cost of parity/SEC shows up in the paper's storage accounting.
    #[must_use]
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self.tt_check_bits_per_entry =
            protection.check_bits(self.tt_bits_per_entry as usize) as u64;
        self.bbit_check_bits_per_entry =
            protection.check_bits(self.bbit_bits_per_entry as usize) as u64;
        self
    }

    /// Total table storage in bits, check bits included.
    pub fn total_bits(&self) -> u64 {
        self.tt_entries as u64 * (self.tt_bits_per_entry + self.tt_check_bits_per_entry)
            + self.bbit_entries as u64 * (self.bbit_bits_per_entry + self.bbit_check_bits_per_entry)
    }

    /// Total table storage in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

/// One BBIT entry: a basic block's start PC and its first TT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbitEntry {
    /// Address of the basic block's first instruction.
    pub pc: u32,
    /// Index of the block's first entry in the Transformation Table.
    pub tt_index: usize,
}

/// The Basic Block Identification Table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bbit {
    entries: Vec<BbitEntry>,
}

impl Bbit {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is already present — a basic block has exactly one
    /// schedule.
    pub fn push(&mut self, entry: BbitEntry) {
        assert!(
            self.lookup(entry.pc).is_none(),
            "BBIT already contains pc {:#010x}",
            entry.pc
        );
        self.entries.push(entry);
    }

    /// The entries in allocation order.
    pub fn entries(&self) -> &[BbitEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds the TT index for a basic block starting at `pc`.
    pub fn lookup(&self, pc: u32) -> Option<usize> {
        self.entries.iter().find(|e| e.pc == pc).map(|e| e.tt_index)
    }
}

/// How the decoder handled one fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Restored through an active TT schedule.
    Decoded,
    /// Outside any schedule: instruction memory holds the original word,
    /// which passed through untouched.
    Passthrough,
    /// Inside a block whose schedule was lost to a detected fault: the
    /// decoder refuses to decode and the memory system must deliver the
    /// original word through the fallback path (at baseline switching
    /// cost).
    Degraded,
}

/// The PC footprint and TT range of one scheduled basic block, computed
/// from the clean tables at decoder construction. When an entry is lost
/// to a fault, the span maps it back to the block(s) that must degrade.
#[derive(Debug, Clone, Copy)]
struct BlockSpan {
    start_pc: u32,
    end_pc: u32,
    tt_first: usize,
    tt_last: usize,
}

/// The fetch-side decoder: restores original instruction words from the
/// encoded fetch stream, cycle by cycle.
///
/// The model is faithful to Figure 5: per-line one-bit history registers,
/// a transformation gate selected by the active TT entry, a fetch counter
/// driven by the entry lengths and the `E`/`CT` delimiter, and a BBIT
/// lookup when crossing into a basic block. One deliberate simplification
/// is documented in DESIGN.md: cold basic blocks get no BBIT entry and
/// pass through untouched, instead of sharing a single identity TT entry.
///
/// The decoder owns a bit-level copy of both tables (they are a few
/// hundred bits; cloning is free at this scale), so a fault injector can
/// flip stored bits mid-run without aliasing the caller's schedule.
/// Detected faults quarantine the affected blocks: their fetches come
/// back [`FetchKind::Degraded`] and every decision is recorded as a
/// [`FaultEvent`] retrievable with [`FetchDecoder::take_events`].
///
/// ```
/// use imt_core::hardware::{Bbit, FetchDecoder, TransformationTable};
/// use imt_bitcode::block::OverlapHistory;
///
/// // With empty tables the decoder is a wire: words pass through.
/// let tt = TransformationTable::new();
/// let bbit = Bbit::new();
/// let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
/// assert_eq!(dec.on_fetch(0x0040_0000, 0xDEAD_BEEF), 0xDEAD_BEEF);
/// ```
#[derive(Debug)]
pub struct FetchDecoder {
    tables: ProtectedTables,
    lanes: usize,
    /// The block size the schedule was built for (validated against the
    /// TT entries at construction).
    block_size: usize,
    overlap: OverlapHistory,
    state: Option<ActiveRun>,
    /// Clean-schedule footprints, for mapping lost entries to PC ranges.
    spans: Vec<BlockSpan>,
    /// PC ranges whose schedule was lost: fetches here degrade.
    degraded: Vec<(u32, u32)>,
    /// Detection/correction/quarantine decisions not yet collected.
    events: Vec<FaultEvent>,
    /// Fetches decoded through an active schedule (diagnostics).
    decoded_fetches: u64,
    /// Fetches passed through untouched (diagnostics).
    passthrough_fetches: u64,
    /// Fetches refused after a detected fault (diagnostics).
    degraded_fetches: u64,
}

#[derive(Debug, Clone, Copy)]
struct ActiveRun {
    tt_index: usize,
    /// Index of the BBIT entry that activated this run.
    bbit_index: usize,
    /// 0-based block number within the basic block.
    block_index: usize,
    /// Fetches already consumed from the current entry.
    fetch_in_block: usize,
    /// Next PC the run expects (runs are strictly sequential).
    expected_pc: u32,
    /// Previous stored word on the bus.
    prev_stored: u32,
    /// Previous restored word (the history flip-flops).
    prev_decoded: u32,
}

impl FetchDecoder {
    /// Creates an unprotected decoder over the given tables.
    ///
    /// `lanes` is the bus width, `block_size` the `k` the schedule was
    /// built with, `overlap` the §6 history semantics. Entries are stored
    /// under the universal sixteen-transform layout with no check code —
    /// the configuration every schedule fits.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=32`, `block_size < 2`, or the
    /// tables were built for a different `k`/lane count.
    pub fn new(
        tt: &TransformationTable,
        bbit: &Bbit,
        lanes: usize,
        block_size: usize,
        overlap: OverlapHistory,
    ) -> Self {
        Self::with_protection(
            tt,
            bbit,
            lanes,
            block_size,
            overlap,
            TransformSet::ALL_SIXTEEN,
            Protection::None,
        )
        .expect("every transform fits the sixteen-transform layout")
    }

    /// Creates a decoder whose tables are stored under `set`'s selector
    /// layout and guarded by `protection` — the configuration the
    /// `HardwareBudget` charges for.
    ///
    /// # Errors
    ///
    /// [`CoreError::TableImage`] if a TT entry uses a transform outside
    /// `set` (the schedule cannot be expressed in this hardware).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=32`, `block_size < 2`, or the
    /// tables were built for a different `k`/lane count.
    pub fn with_protection(
        tt: &TransformationTable,
        bbit: &Bbit,
        lanes: usize,
        block_size: usize,
        overlap: OverlapHistory,
        set: TransformSet,
        protection: Protection,
    ) -> Result<Self, CoreError> {
        assert!(
            (1..=32).contains(&lanes),
            "lane count {lanes} outside 1..=32"
        );
        assert!(block_size >= 2, "block size must be at least 2");
        // The schedule must have been built for this k: no entry may cover
        // more fetches than a block holds (or zero).
        for (i, entry) in tt.entries().iter().enumerate() {
            assert!(
                (1..=block_size).contains(&entry.covers),
                "TT[{i}] covers {} fetches, outside 1..={block_size}",
                entry.covers
            );
            assert_eq!(
                entry.lane_transforms.len(),
                lanes,
                "TT[{i}] has {} lane transforms for a {lanes}-lane bus",
                entry.lane_transforms.len()
            );
        }
        let layout = EntryLayout::new(set, lanes, block_size, tt.len());
        let tables = ProtectedTables::new(tt, bbit, layout, protection)?;
        let spans = compute_spans(tt, bbit);
        Ok(FetchDecoder {
            tables,
            lanes,
            block_size,
            overlap,
            state: None,
            spans,
            degraded: Vec::new(),
            events: Vec::new(),
            decoded_fetches: 0,
            passthrough_fetches: 0,
            degraded_fetches: 0,
        })
    }

    /// Fetches decoded through an active TT schedule so far.
    pub fn decoded_fetches(&self) -> u64 {
        self.decoded_fetches
    }

    /// Fetches passed through untouched so far.
    pub fn passthrough_fetches(&self) -> u64 {
        self.passthrough_fetches
    }

    /// Fetches refused after a detected fault so far.
    pub fn degraded_fetches(&self) -> u64 {
        self.degraded_fetches
    }

    /// The check code guarding the table SRAM.
    pub fn protection(&self) -> Protection {
        self.tables.protection()
    }

    /// The protected table store (the fault injector's view).
    pub fn tables(&self) -> &ProtectedTables {
        &self.tables
    }

    /// Flips stored bit `bit` of TT entry `entry`, as an SEU would; the
    /// decoder scrubs the arrays before its next fetch.
    ///
    /// # Errors
    ///
    /// [`CoreError::TableImage`] if the target is out of range.
    pub fn inject_tt_bit(&mut self, entry: usize, bit: usize) -> Result<(), CoreError> {
        self.tables.flip_tt_bit(entry, bit)
    }

    /// Flips stored bit `bit` of BBIT entry `entry`.
    ///
    /// # Errors
    ///
    /// [`CoreError::TableImage`] if the target is out of range.
    pub fn inject_bbit_bit(&mut self, entry: usize, bit: usize) -> Result<(), CoreError> {
        self.tables.flip_bbit_bit(entry, bit)
    }

    /// Drains the fault events recorded since the last call.
    pub fn take_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// PC ranges currently degraded to the fallback path.
    pub fn degraded_ranges(&self) -> &[(u32, u32)] {
        &self.degraded
    }

    /// Processes one fetch: `stored` is the word instruction memory put on
    /// the bus at `pc`; the return value is the restored original word.
    ///
    /// Callers that model the fault fallback path should use
    /// [`FetchDecoder::on_fetch_classified`]: for a degraded fetch this
    /// method returns `stored` unchanged, which inside an encoded block
    /// is *not* the original word.
    pub fn on_fetch(&mut self, pc: u32, stored: u32) -> u32 {
        self.on_fetch_classified(pc, stored).0
    }

    /// Processes one fetch and reports how it was handled.
    ///
    /// [`FetchKind::Degraded`] fetches return `stored` unchanged and the
    /// memory system is expected to refetch the original word through the
    /// fallback path — never execute the encoded bits.
    pub fn on_fetch_classified(&mut self, pc: u32, stored: u32) -> (u32, FetchKind) {
        if self.tables.is_dirty() {
            self.absorb_scrub();
        }
        if self.in_degraded(pc) {
            self.state = None;
            self.degraded_fetches += 1;
            return (stored, FetchKind::Degraded);
        }
        // BBIT hit (re)starts a schedule — also when a schedule is active:
        // a branch back to the loop header lands on a BBIT pc while the
        // previous block's schedule just ended.
        if let Some((bbit_index, tt_index)) = self.tables.bbit_lookup(pc) {
            self.state = Some(ActiveRun {
                tt_index,
                bbit_index,
                block_index: 0,
                fetch_in_block: 0,
                expected_pc: pc,
                prev_stored: 0,
                prev_decoded: 0,
            });
        }
        let Some(mut run) = self.state else {
            self.passthrough_fetches += 1;
            return (stored, FetchKind::Passthrough);
        };
        // A non-sequential fetch with no BBIT hit means control left the
        // encoded region mid-schedule; structurally impossible for
        // schedules built from real basic blocks, but the model fails
        // safe by dropping to pass-through.
        if run.expected_pc != pc {
            self.state = None;
            self.passthrough_fetches += 1;
            return (stored, FetchKind::Passthrough);
        }
        // A dangling TT index — a corrupted BBIT entry pointing past the
        // table, a walker crossing the end because an `E` bit flipped
        // away, or an entry quarantined mid-run — is a detected
        // structural fault: degrade the block, never index blindly.
        let Some(entry) = self.tables.tt_entry(run.tt_index) else {
            return self.degrade_run(run, stored);
        };

        // Restore lane by lane.
        let mut decoded = 0u32;
        for lane in 0..self.lanes {
            let stored_bit = stored >> lane & 1 == 1;
            let bit = if run.block_index == 0 && run.fetch_in_block == 0 {
                // Seed of the basic block's first (initial) block.
                stored_bit
            } else {
                let history = if run.fetch_in_block == 0 {
                    // First fetch of a chained block: the overlap bit.
                    match self.overlap {
                        OverlapHistory::Stored => run.prev_stored >> lane & 1 == 1,
                        OverlapHistory::Decoded => run.prev_decoded >> lane & 1 == 1,
                    }
                } else {
                    run.prev_decoded >> lane & 1 == 1
                };
                entry.lane_transforms[lane].apply(stored_bit, history)
            };
            decoded |= (bit as u32) << lane;
        }
        let covers = entry.covers;
        let end = entry.end;

        // Advance the walker.
        run.prev_stored = stored;
        run.prev_decoded = decoded;
        run.fetch_in_block += 1;
        run.expected_pc = pc.wrapping_add(4);
        if run.fetch_in_block >= covers {
            if end {
                self.state = None;
            } else {
                run.tt_index += 1;
                run.block_index += 1;
                run.fetch_in_block = 0;
                self.state = Some(run);
            }
        } else {
            self.state = Some(run);
        }
        self.decoded_fetches += 1;
        (decoded, FetchKind::Decoded)
    }

    /// The block size the schedule was built for.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The PC footprint of every scheduled basic block, as
    /// `(start_pc, end_pc)` half-open ranges in BBIT order — the regions
    /// whose fetches decode through the TT when entered at `start_pc`.
    pub fn scheduled_spans(&self) -> Vec<(u32, u32)> {
        self.spans.iter().map(|s| (s.start_pc, s.end_pc)).collect()
    }

    /// Drops any active schedule (e.g. between independent replays).
    /// Quarantines and degraded ranges persist — damage does not heal.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Whether `pc` lies inside a degraded block.
    fn in_degraded(&self, pc: u32) -> bool {
        self.degraded.iter().any(|&(s, e)| pc >= s && pc < e)
    }

    /// Runs a scrub pass over the protected arrays and translates its
    /// verdicts into quarantined blocks and degraded PC ranges.
    fn absorb_scrub(&mut self) {
        let events = self.tables.scrub();
        for event in &events {
            match event.outcome {
                FaultOutcome::Corrected { .. } => {
                    if imt_obs::enabled() {
                        imt_obs::counter!("fault.corrected").inc();
                    }
                }
                FaultOutcome::Detected | FaultOutcome::Structural => {
                    if imt_obs::enabled() {
                        imt_obs::counter!("fault.detected").inc();
                    }
                    match event.table {
                        TableKind::Tt => self.degrade_tt_entry(event.index),
                        TableKind::Bbit => self.degrade_block(event.index),
                    }
                }
            }
        }
        self.events.extend(events);
    }

    /// Degrades every block whose clean schedule used TT entry `index`.
    fn degrade_tt_entry(&mut self, index: usize) {
        let affected: Vec<usize> = self
            .spans
            .iter()
            .enumerate()
            .filter(|(_, s)| (s.tt_first..=s.tt_last).contains(&index))
            .map(|(b, _)| b)
            .collect();
        for bbit_index in affected {
            self.degrade_block(bbit_index);
        }
    }

    /// Quarantines BBIT entry `bbit_index` and marks its clean PC
    /// footprint as degraded.
    fn degrade_block(&mut self, bbit_index: usize) {
        self.tables.quarantine_bbit(bbit_index);
        let Some(span) = self.spans.get(bbit_index) else {
            return;
        };
        let range = (span.start_pc, span.end_pc);
        if !self.degraded.contains(&range) {
            self.degraded.push(range);
            if imt_obs::enabled() {
                imt_obs::counter!("fault.degraded").inc();
            }
        }
    }

    /// Handles a dangling TT index discovered mid-run: record a
    /// structural event, degrade the run's block, refuse the fetch.
    fn degrade_run(&mut self, run: ActiveRun, stored: u32) -> (u32, FetchKind) {
        if !self.tables.tt_quarantined(run.tt_index) {
            self.events.push(FaultEvent {
                table: TableKind::Tt,
                index: run.tt_index,
                outcome: FaultOutcome::Structural,
            });
            if imt_obs::enabled() {
                imt_obs::counter!("fault.detected").inc();
            }
        }
        self.degrade_block(run.bbit_index);
        self.state = None;
        self.degraded_fetches += 1;
        (stored, FetchKind::Degraded)
    }
}

/// Walks the clean tables once to record each scheduled block's PC
/// footprint and TT entry range.
fn compute_spans(tt: &TransformationTable, bbit: &Bbit) -> Vec<BlockSpan> {
    bbit.entries()
        .iter()
        .map(|entry| {
            let tt_first = entry.tt_index;
            let mut index = tt_first;
            let mut words = 0usize;
            while let Some(e) = tt.get(index) {
                words += e.covers;
                if e.end {
                    break;
                }
                index += 1;
            }
            BlockSpan {
                start_pc: entry.pc,
                end_pc: entry.pc.wrapping_add(4 * words as u32),
                tt_first,
                tt_last: index,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_bitcode::lanes::encode_words;
    use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
    use imt_bitcode::TransformSet;

    /// Builds a TT + BBIT for a single "basic block" of `words` starting at
    /// `pc`, mirroring what the pipeline does.
    fn schedule_for(
        words: &[u32],
        pc: u32,
        k: usize,
        overlap: OverlapHistory,
    ) -> (TransformationTable, Bbit, Vec<u32>) {
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(k)
                .unwrap()
                .with_transforms(TransformSet::CANONICAL_EIGHT)
                .unwrap()
                .with_overlap(overlap),
        );
        let wide: Vec<u64> = words.iter().map(|&w| w as u64).collect();
        let enc = encode_words(&wide, 32, &codec).unwrap();
        let blocks = enc.lanes()[0].blocks().len();
        let mut tt = TransformationTable::new();
        let mut first = None;
        for b in 0..blocks {
            let lane_transforms = (0..32)
                .map(|lane| enc.lanes()[lane].blocks()[b].transform)
                .collect();
            let covers = enc.lanes()[0].blocks()[b].len;
            let index = tt.push(TtEntry {
                lane_transforms,
                end: b + 1 == blocks,
                covers,
            });
            first.get_or_insert(index);
        }
        let mut bbit = Bbit::new();
        bbit.push(BbitEntry {
            pc,
            tt_index: first.unwrap(),
        });
        let stored: Vec<u32> = enc.words().iter().map(|&w| w as u32).collect();
        (tt, bbit, stored)
    }

    #[test]
    fn decodes_a_sequential_block_exactly() {
        let words: Vec<u32> = (0..13).map(|i| 0x1234_5678u32.rotate_left(i)).collect();
        for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
            for k in [2, 4, 5, 7] {
                let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, k, overlap);
                let mut dec = FetchDecoder::new(&tt, &bbit, 32, k, overlap);
                for (i, (&s, &w)) in stored.iter().zip(&words).enumerate() {
                    let pc = 0x0040_0000 + (i as u32) * 4;
                    assert_eq!(dec.on_fetch(pc, s), w, "k={k} overlap={overlap:?} i={i}");
                }
                assert_eq!(dec.decoded_fetches(), 13);
            }
        }
    }

    #[test]
    fn protected_decoders_match_the_unprotected_decode() {
        let words: Vec<u32> = (0..17).map(|i| 0x0F1E_2D3Cu32.rotate_left(i)).collect();
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        for protection in Protection::ALL {
            let mut dec = FetchDecoder::with_protection(
                &tt,
                &bbit,
                32,
                5,
                OverlapHistory::Stored,
                TransformSet::CANONICAL_EIGHT,
                protection,
            )
            .unwrap();
            for (i, (&s, &w)) in stored.iter().zip(&words).enumerate() {
                let pc = 0x0040_0000 + (i as u32) * 4;
                let (decoded, kind) = dec.on_fetch_classified(pc, s);
                assert_eq!(decoded, w, "{protection} i={i}");
                assert_eq!(kind, FetchKind::Decoded);
            }
            assert!(dec.take_events().is_empty());
        }
    }

    #[test]
    fn loop_iterations_restart_via_bbit() {
        // Fetch the same block three times, as a loop would.
        let words: Vec<u32> = vec![0xAAAA_AAAA, 0x5555_5555, 0xAAAA_AAAA, 0x5555_5555];
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        for _iteration in 0..3 {
            for (i, (&s, &w)) in stored.iter().zip(&words).enumerate() {
                let pc = 0x0040_0000 + (i as u32) * 4;
                assert_eq!(dec.on_fetch(pc, s), w);
            }
        }
        assert_eq!(dec.decoded_fetches(), 12);
        assert_eq!(dec.passthrough_fetches(), 0);
    }

    #[test]
    fn unencoded_fetches_pass_through() {
        let (tt, bbit, _) = schedule_for(&[0, 0, 0], 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        // A fetch elsewhere never activates the schedule.
        assert_eq!(dec.on_fetch(0x0040_1000, 0xCAFE_F00D), 0xCAFE_F00D);
        assert_eq!(dec.passthrough_fetches(), 1);
        assert_eq!(dec.decoded_fetches(), 0);
    }

    #[test]
    fn schedule_ends_at_e_bit_and_ct() {
        let words: Vec<u32> = vec![0xFFFF_FFFF; 7]; // k=5 → blocks of 5 + 2, CT = 2
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        assert_eq!(tt.len(), 2);
        assert!(!tt.entries()[0].end);
        assert_eq!(tt.entries()[0].covers, 5);
        assert!(tt.entries()[1].end);
        assert_eq!(tt.entries()[1].covers, 2); // the CT field
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        for (i, &s) in stored.iter().enumerate() {
            dec.on_fetch(0x0040_0000 + (i as u32) * 4, s);
        }
        // After E/CT exhaustion the next sequential word passes through.
        assert_eq!(dec.on_fetch(0x0040_0000 + 28, 0x1111_1111), 0x1111_1111);
        assert_eq!(dec.passthrough_fetches(), 1);
    }

    #[test]
    fn non_sequential_fetch_fails_safe() {
        let words: Vec<u32> = vec![0xAAAA_AAAA; 8];
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        dec.on_fetch(0x0040_0000, stored[0]);
        // Jump somewhere unrelated mid-schedule: decoder drops to
        // pass-through instead of corrupting.
        assert_eq!(dec.on_fetch(0x0050_0000, 0x7777_7777), 0x7777_7777);
        assert_eq!(dec.passthrough_fetches(), 1);
    }

    #[test]
    fn reset_clears_active_schedule() {
        let words: Vec<u32> = vec![0x0F0F_0F0F; 6];
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        dec.on_fetch(0x0040_0000, stored[0]);
        dec.reset();
        assert_eq!(dec.on_fetch(0x0040_0004, stored[1]), stored[1]); // passthrough now
    }

    #[test]
    fn bbit_rejects_duplicate_pcs() {
        let mut bbit = Bbit::new();
        bbit.push(BbitEntry {
            pc: 0x0040_0000,
            tt_index: 0,
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bbit.push(BbitEntry {
                pc: 0x0040_0000,
                tt_index: 1,
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn tt_storage_accounting() {
        // 32 lines × 3 control bits + E + 3-bit CT = 100 bits per entry.
        assert_eq!(TtEntry::storage_bits(32, 3, 3), 100);
    }

    #[test]
    fn budget_charges_protection_check_bits() {
        let base = HardwareBudget::new(16, 10, 32, 8, 5);
        let parity = base.with_protection(Protection::Parity);
        assert_eq!(parity.tt_check_bits_per_entry, 1);
        assert_eq!(parity.bbit_check_bits_per_entry, 1);
        assert_eq!(parity.total_bits(), base.total_bits() + 16 + 10);
        let sec = base.with_protection(Protection::Sec);
        assert_eq!(sec.tt_check_bits_per_entry, 7); // 100 data bits
        assert_eq!(sec.bbit_check_bits_per_entry, 6); // 36 data bits
    }

    #[test]
    fn dangling_tt_index_degrades_instead_of_panicking() {
        // A BBIT entry pointing past the table end: the seed repo panicked
        // ("BBIT points at a valid TT entry"); now the block degrades.
        let (tt, _, stored) =
            schedule_for(&[1, 2, 3, 4, 5, 6], 0x0040_0000, 5, OverlapHistory::Stored);
        let mut bbit = Bbit::new();
        bbit.push(BbitEntry {
            pc: 0x0040_0000,
            tt_index: tt.len() + 3,
        });
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        let (word, kind) = dec.on_fetch_classified(0x0040_0000, stored[0]);
        assert_eq!(kind, FetchKind::Degraded);
        assert_eq!(word, stored[0]);
        assert_eq!(dec.degraded_fetches(), 1);
        let events = dec.take_events();
        assert!(
            matches!(
                events.as_slice(),
                [FaultEvent {
                    table: TableKind::Tt,
                    outcome: FaultOutcome::Structural,
                    ..
                }]
            ),
            "{events:?}"
        );
    }

    #[test]
    fn parity_detects_injected_tt_fault_and_degrades_the_block() {
        let words: Vec<u32> = (0..10).map(|i| 0xC3A5_1E78u32.rotate_left(i)).collect();
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::with_protection(
            &tt,
            &bbit,
            32,
            5,
            OverlapHistory::Stored,
            TransformSet::CANONICAL_EIGHT,
            Protection::Parity,
        )
        .unwrap();
        // Decode the first word cleanly, then hit a selector bit.
        assert_eq!(dec.on_fetch(0x0040_0000, stored[0]), words[0]);
        dec.inject_tt_bit(0, 5).unwrap();
        // Every remaining fetch of the block degrades — no wrong word is
        // ever returned as "decoded".
        for (i, &s) in stored.iter().enumerate().skip(1) {
            let (word, kind) = dec.on_fetch_classified(0x0040_0000 + (i as u32) * 4, s);
            assert_eq!(kind, FetchKind::Degraded, "i={i}");
            assert_eq!(word, s);
        }
        assert!(dec
            .take_events()
            .iter()
            .any(|e| e.table == TableKind::Tt && e.outcome == FaultOutcome::Detected));
    }

    #[test]
    fn sec_corrects_injected_tt_fault_transparently() {
        let words: Vec<u32> = (0..10).map(|i| 0x9D82_44F1u32.rotate_left(i)).collect();
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::with_protection(
            &tt,
            &bbit,
            32,
            5,
            OverlapHistory::Stored,
            TransformSet::CANONICAL_EIGHT,
            Protection::Sec,
        )
        .unwrap();
        dec.inject_tt_bit(0, 40).unwrap();
        for (i, (&s, &w)) in stored.iter().zip(&words).enumerate() {
            let (word, kind) = dec.on_fetch_classified(0x0040_0000 + (i as u32) * 4, s);
            assert_eq!(kind, FetchKind::Decoded, "i={i}");
            assert_eq!(word, w, "i={i}");
        }
        let events = dec.take_events();
        assert!(
            matches!(
                events.as_slice(),
                [FaultEvent {
                    table: TableKind::Tt,
                    index: 0,
                    outcome: FaultOutcome::Corrected { .. },
                }]
            ),
            "{events:?}"
        );
        assert_eq!(dec.degraded_fetches(), 0);
    }

    #[test]
    fn detected_bbit_fault_degrades_its_block() {
        let words: Vec<u32> = (0..8).map(|i| 0x5A5A_5A5Au32.rotate_left(i)).collect();
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::with_protection(
            &tt,
            &bbit,
            32,
            5,
            OverlapHistory::Stored,
            TransformSet::CANONICAL_EIGHT,
            Protection::Parity,
        )
        .unwrap();
        // Corrupt the PC tag before any fetch: without detection the
        // block would silently pass encoded words through.
        dec.inject_bbit_bit(0, 3).unwrap();
        let (word, kind) = dec.on_fetch_classified(0x0040_0000, stored[0]);
        assert_eq!(kind, FetchKind::Degraded);
        assert_eq!(word, stored[0]);
        assert!(dec
            .take_events()
            .iter()
            .any(|e| e.table == TableKind::Bbit && e.outcome == FaultOutcome::Detected));
    }

    #[test]
    fn unprotected_tt_fault_decodes_garbage_silently() {
        // The negative control the campaign measures: with no check code a
        // selector flip yields wrong decoded words and no event.
        let words: Vec<u32> = (0..10).map(|i| 0x1357_9BDFu32.rotate_left(i)).collect();
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::with_protection(
            &tt,
            &bbit,
            32,
            5,
            OverlapHistory::Stored,
            TransformSet::CANONICAL_EIGHT,
            Protection::None,
        )
        .unwrap();
        dec.inject_tt_bit(0, 6).unwrap();
        let mut wrong = 0;
        for (i, (&s, &w)) in stored.iter().zip(&words).enumerate() {
            let (word, kind) = dec.on_fetch_classified(0x0040_0000 + (i as u32) * 4, s);
            assert_ne!(kind, FetchKind::Degraded);
            if word != w {
                wrong += 1;
            }
        }
        assert!(wrong > 0, "selector flip should corrupt decoded words");
        assert!(dec.take_events().is_empty());
    }
}
