//! Software model of the fetch-stage decode hardware (paper §7.2,
//! Figure 5).
//!
//! Two small tables drive the decoder:
//!
//! * the **Transformation Table (TT)**: one entry per encoded block of
//!   instructions, holding a transformation index for every bus line
//!   (3 control bits each with the canonical eight), plus the `E` (end)
//!   bit and the `CT` tail counter that delimit a basic block's last,
//!   possibly short, block;
//! * the **Basic Block Identification Table (BBIT)**: one entry per
//!   encoded basic block, mapping its start PC to its first TT entry.
//!
//! [`FetchDecoder`] walks these tables against the fetch stream: a BBIT
//! hit (re)activates decoding at the block's first TT entry; each fetched
//! word is restored lane by lane through the selected gate with a one-bit
//! history flip-flop per lane; the `E`/`CT` fields tell the walker when
//! the basic block's schedule is exhausted, after which words pass
//! through untouched until the next BBIT hit. Fetches with no active
//! schedule (code outside the encoded region) pass through untouched —
//! instruction memory holds original words there.

use imt_bitcode::block::OverlapHistory;
use imt_bitcode::Transform;

/// One Transformation Table entry: the per-line transformation selectors
/// for one block of instructions (Figure 5a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtEntry {
    /// The transformation for each bus line (index = line).
    pub lane_transforms: Vec<Transform>,
    /// The `E` delimiter: this entry is the last for its basic block.
    pub end: bool,
    /// How many instruction fetches this entry covers. For the last entry
    /// of a basic block this is the hardware's `CT` counter value; for
    /// earlier entries it is implied by the block size (`k` for the first
    /// entry, `k - 1` for continuation entries) and stored here for the
    /// software model's convenience.
    pub covers: usize,
}

impl TtEntry {
    /// Control bits consumed by this entry for `lanes` lines with
    /// `control_bits` selector width (plus 1 for `E`, plus the `CT`
    /// counter width) — the paper's hardware-cost accounting.
    pub fn storage_bits(lanes: usize, control_bits: u32, ct_bits: u32) -> u64 {
        lanes as u64 * control_bits as u64 + 1 + ct_bits as u64
    }
}

/// The Transformation Table: a small SRAM array of [`TtEntry`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransformationTable {
    entries: Vec<TtEntry>,
}

impl TransformationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, returning its index.
    pub fn push(&mut self, entry: TtEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// The entries in allocation order.
    pub fn entries(&self) -> &[TtEntry] {
        &self.entries
    }

    /// Number of entries allocated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&TtEntry> {
        self.entries.get(index)
    }
}

/// The storage and logic budget of a TT/BBIT configuration — the paper's
/// §7.2 hardware-overhead accounting, computed for an actual schedule.
///
/// ```
/// use imt_core::hardware::HardwareBudget;
///
/// // The paper's operating point: 16 TT entries, 10 BBIT entries,
/// // 32 lines, 8 transformations, block size 5.
/// let budget = HardwareBudget::new(16, 10, 32, 8, 5);
/// assert_eq!(budget.tt_bits_per_entry, 32 * 3 + 1 + 3);
/// assert!(budget.total_bits() < 3000); // well under half a kilobyte
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareBudget {
    /// TT entries provisioned.
    pub tt_entries: usize,
    /// BBIT entries provisioned.
    pub bbit_entries: usize,
    /// Bits per TT entry: `lanes × ⌈log₂ transforms⌉ + 1 (E) + CT width`.
    pub tt_bits_per_entry: u64,
    /// Bits per BBIT entry: a 32-bit PC tag plus a TT index.
    pub bbit_bits_per_entry: u64,
    /// Two-input gates in the restore path (one per line per member of the
    /// transformation set, plus a per-line mux).
    pub restore_gates: u64,
}

impl HardwareBudget {
    /// Computes the budget for a configuration.
    pub fn new(
        tt_entries: usize,
        bbit_entries: usize,
        lanes: usize,
        transforms: usize,
        block_size: usize,
    ) -> Self {
        let control_bits = usize::BITS - transforms.saturating_sub(1).leading_zeros();
        let ct_bits = usize::BITS - block_size.saturating_sub(1).leading_zeros().max(1);
        let tt_index_bits =
            u64::from(usize::BITS - tt_entries.saturating_sub(1).leading_zeros().max(1));
        HardwareBudget {
            tt_entries,
            bbit_entries,
            tt_bits_per_entry: lanes as u64 * u64::from(control_bits) + 1 + u64::from(ct_bits),
            bbit_bits_per_entry: 32 + tt_index_bits,
            // One gate per transformation per line plus an 8:1 (or smaller)
            // selection mux, counted as `transforms` gate-equivalents.
            restore_gates: (lanes * transforms * 2) as u64,
        }
    }

    /// Budget implied by an encoded program's tables and configuration.
    pub fn of_schedule(encoded: &crate::pipeline::EncodedProgram) -> Self {
        HardwareBudget::new(
            encoded.tt.len(),
            encoded.bbit.len(),
            crate::pipeline::BUS_WIDTH,
            encoded.config.transforms().len(),
            encoded.config.block_size(),
        )
    }

    /// Total table storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.tt_entries as u64 * self.tt_bits_per_entry
            + self.bbit_entries as u64 * self.bbit_bits_per_entry
    }

    /// Total table storage in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

/// One BBIT entry: a basic block's start PC and its first TT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbitEntry {
    /// Address of the basic block's first instruction.
    pub pc: u32,
    /// Index of the block's first entry in the Transformation Table.
    pub tt_index: usize,
}

/// The Basic Block Identification Table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bbit {
    entries: Vec<BbitEntry>,
}

impl Bbit {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is already present — a basic block has exactly one
    /// schedule.
    pub fn push(&mut self, entry: BbitEntry) {
        assert!(
            self.lookup(entry.pc).is_none(),
            "BBIT already contains pc {:#010x}",
            entry.pc
        );
        self.entries.push(entry);
    }

    /// The entries in allocation order.
    pub fn entries(&self) -> &[BbitEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds the TT index for a basic block starting at `pc`.
    pub fn lookup(&self, pc: u32) -> Option<usize> {
        self.entries.iter().find(|e| e.pc == pc).map(|e| e.tt_index)
    }
}

/// The fetch-side decoder: restores original instruction words from the
/// encoded fetch stream, cycle by cycle.
///
/// The model is faithful to Figure 5: per-line one-bit history registers,
/// a transformation gate selected by the active TT entry, a fetch counter
/// driven by the entry lengths and the `E`/`CT` delimiter, and a BBIT
/// lookup when crossing into a basic block. One deliberate simplification
/// is documented in DESIGN.md: cold basic blocks get no BBIT entry and
/// pass through untouched, instead of sharing a single identity TT entry.
///
/// ```
/// use imt_core::hardware::{Bbit, FetchDecoder, TransformationTable};
/// use imt_bitcode::block::OverlapHistory;
///
/// // With empty tables the decoder is a wire: words pass through.
/// let tt = TransformationTable::new();
/// let bbit = Bbit::new();
/// let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
/// assert_eq!(dec.on_fetch(0x0040_0000, 0xDEAD_BEEF), 0xDEAD_BEEF);
/// ```
#[derive(Debug)]
pub struct FetchDecoder<'t> {
    tt: &'t TransformationTable,
    bbit: &'t Bbit,
    lanes: usize,
    /// The block size the schedule was built for (validated against the
    /// TT entries at construction).
    block_size: usize,
    overlap: OverlapHistory,
    state: Option<ActiveRun>,
    /// Fetches decoded through an active schedule (diagnostics).
    decoded_fetches: u64,
    /// Fetches passed through untouched (diagnostics).
    passthrough_fetches: u64,
}

#[derive(Debug, Clone, Copy)]
struct ActiveRun {
    tt_index: usize,
    /// 0-based block number within the basic block.
    block_index: usize,
    /// Fetches already consumed from the current entry.
    fetch_in_block: usize,
    /// Next PC the run expects (runs are strictly sequential).
    expected_pc: u32,
    /// Previous stored word on the bus.
    prev_stored: u32,
    /// Previous restored word (the history flip-flops).
    prev_decoded: u32,
}

impl<'t> FetchDecoder<'t> {
    /// Creates a decoder over the given tables.
    ///
    /// `lanes` is the bus width, `block_size` the `k` the schedule was
    /// built with, `overlap` the §6 history semantics.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is outside `1..=32` or `block_size < 2`.
    pub fn new(
        tt: &'t TransformationTable,
        bbit: &'t Bbit,
        lanes: usize,
        block_size: usize,
        overlap: OverlapHistory,
    ) -> Self {
        assert!(
            (1..=32).contains(&lanes),
            "lane count {lanes} outside 1..=32"
        );
        assert!(block_size >= 2, "block size must be at least 2");
        // The schedule must have been built for this k: no entry may cover
        // more fetches than a block holds.
        for (i, entry) in tt.entries().iter().enumerate() {
            assert!(
                entry.covers <= block_size,
                "TT[{i}] covers {} fetches, more than block size {block_size}",
                entry.covers
            );
            assert_eq!(
                entry.lane_transforms.len(),
                lanes,
                "TT[{i}] has {} lane transforms for a {lanes}-lane bus",
                entry.lane_transforms.len()
            );
        }
        FetchDecoder {
            tt,
            bbit,
            lanes,
            block_size,
            overlap,
            state: None,
            decoded_fetches: 0,
            passthrough_fetches: 0,
        }
    }

    /// Fetches decoded through an active TT schedule so far.
    pub fn decoded_fetches(&self) -> u64 {
        self.decoded_fetches
    }

    /// Fetches passed through untouched so far.
    pub fn passthrough_fetches(&self) -> u64 {
        self.passthrough_fetches
    }

    /// Processes one fetch: `stored` is the word instruction memory put on
    /// the bus at `pc`; the return value is the restored original word.
    pub fn on_fetch(&mut self, pc: u32, stored: u32) -> u32 {
        // BBIT hit (re)starts a schedule — also when a schedule is active:
        // a branch back to the loop header lands on a BBIT pc while the
        // previous block's schedule just ended.
        if let Some(tt_index) = self.bbit.lookup(pc) {
            self.state = Some(ActiveRun {
                tt_index,
                block_index: 0,
                fetch_in_block: 0,
                expected_pc: pc,
                prev_stored: 0,
                prev_decoded: 0,
            });
        }
        let Some(mut run) = self.state else {
            self.passthrough_fetches += 1;
            return stored;
        };
        // A non-sequential fetch with no BBIT hit means control left the
        // encoded region mid-schedule; structurally impossible for
        // schedules built from real basic blocks, but the model fails
        // safe by dropping to pass-through.
        if run.expected_pc != pc {
            self.state = None;
            self.passthrough_fetches += 1;
            return stored;
        }
        let entry = self
            .tt
            .get(run.tt_index)
            .expect("BBIT points at a valid TT entry");

        // Restore lane by lane.
        let mut decoded = 0u32;
        for lane in 0..self.lanes {
            let stored_bit = stored >> lane & 1 == 1;
            let bit = if run.block_index == 0 && run.fetch_in_block == 0 {
                // Seed of the basic block's first (initial) block.
                stored_bit
            } else {
                let history = if run.fetch_in_block == 0 {
                    // First fetch of a chained block: the overlap bit.
                    match self.overlap {
                        OverlapHistory::Stored => run.prev_stored >> lane & 1 == 1,
                        OverlapHistory::Decoded => run.prev_decoded >> lane & 1 == 1,
                    }
                } else {
                    run.prev_decoded >> lane & 1 == 1
                };
                entry.lane_transforms[lane].apply(stored_bit, history)
            };
            decoded |= (bit as u32) << lane;
        }

        // Advance the walker.
        run.prev_stored = stored;
        run.prev_decoded = decoded;
        run.fetch_in_block += 1;
        run.expected_pc = pc.wrapping_add(4);
        if run.fetch_in_block >= entry.covers {
            if entry.end {
                self.state = None;
            } else {
                run.tt_index += 1;
                run.block_index += 1;
                run.fetch_in_block = 0;
                self.state = Some(run);
            }
        } else {
            self.state = Some(run);
        }
        self.decoded_fetches += 1;
        decoded
    }

    /// The block size the schedule was built for.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Drops any active schedule (e.g. between independent replays).
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_bitcode::lanes::encode_words;
    use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
    use imt_bitcode::TransformSet;

    /// Builds a TT + BBIT for a single "basic block" of `words` starting at
    /// `pc`, mirroring what the pipeline does.
    fn schedule_for(
        words: &[u32],
        pc: u32,
        k: usize,
        overlap: OverlapHistory,
    ) -> (TransformationTable, Bbit, Vec<u32>) {
        let codec = StreamCodec::new(
            StreamCodecConfig::block_size(k)
                .unwrap()
                .with_transforms(TransformSet::CANONICAL_EIGHT)
                .with_overlap(overlap),
        );
        let wide: Vec<u64> = words.iter().map(|&w| w as u64).collect();
        let enc = encode_words(&wide, 32, &codec).unwrap();
        let blocks = enc.lanes()[0].blocks().len();
        let mut tt = TransformationTable::new();
        let mut first = None;
        for b in 0..blocks {
            let lane_transforms = (0..32)
                .map(|lane| enc.lanes()[lane].blocks()[b].transform)
                .collect();
            let covers = enc.lanes()[0].blocks()[b].len;
            let index = tt.push(TtEntry {
                lane_transforms,
                end: b + 1 == blocks,
                covers,
            });
            first.get_or_insert(index);
        }
        let mut bbit = Bbit::new();
        bbit.push(BbitEntry {
            pc,
            tt_index: first.unwrap(),
        });
        let stored: Vec<u32> = enc.words().iter().map(|&w| w as u32).collect();
        (tt, bbit, stored)
    }

    #[test]
    fn decodes_a_sequential_block_exactly() {
        let words: Vec<u32> = (0..13).map(|i| 0x1234_5678u32.rotate_left(i)).collect();
        for overlap in [OverlapHistory::Stored, OverlapHistory::Decoded] {
            for k in [2, 4, 5, 7] {
                let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, k, overlap);
                let mut dec = FetchDecoder::new(&tt, &bbit, 32, k, overlap);
                for (i, (&s, &w)) in stored.iter().zip(&words).enumerate() {
                    let pc = 0x0040_0000 + (i as u32) * 4;
                    assert_eq!(dec.on_fetch(pc, s), w, "k={k} overlap={overlap:?} i={i}");
                }
                assert_eq!(dec.decoded_fetches(), 13);
            }
        }
    }

    #[test]
    fn loop_iterations_restart_via_bbit() {
        // Fetch the same block three times, as a loop would.
        let words: Vec<u32> = vec![0xAAAA_AAAA, 0x5555_5555, 0xAAAA_AAAA, 0x5555_5555];
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        for _iteration in 0..3 {
            for (i, (&s, &w)) in stored.iter().zip(&words).enumerate() {
                let pc = 0x0040_0000 + (i as u32) * 4;
                assert_eq!(dec.on_fetch(pc, s), w);
            }
        }
        assert_eq!(dec.decoded_fetches(), 12);
        assert_eq!(dec.passthrough_fetches(), 0);
    }

    #[test]
    fn unencoded_fetches_pass_through() {
        let (tt, bbit, _) = schedule_for(&[0, 0, 0], 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        // A fetch elsewhere never activates the schedule.
        assert_eq!(dec.on_fetch(0x0040_1000, 0xCAFE_F00D), 0xCAFE_F00D);
        assert_eq!(dec.passthrough_fetches(), 1);
        assert_eq!(dec.decoded_fetches(), 0);
    }

    #[test]
    fn schedule_ends_at_e_bit_and_ct() {
        let words: Vec<u32> = vec![0xFFFF_FFFF; 7]; // k=5 → blocks of 5 + 2, CT = 2
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        assert_eq!(tt.len(), 2);
        assert!(!tt.entries()[0].end);
        assert_eq!(tt.entries()[0].covers, 5);
        assert!(tt.entries()[1].end);
        assert_eq!(tt.entries()[1].covers, 2); // the CT field
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        for (i, &s) in stored.iter().enumerate() {
            dec.on_fetch(0x0040_0000 + (i as u32) * 4, s);
        }
        // After E/CT exhaustion the next sequential word passes through.
        assert_eq!(dec.on_fetch(0x0040_0000 + 28, 0x1111_1111), 0x1111_1111);
        assert_eq!(dec.passthrough_fetches(), 1);
    }

    #[test]
    fn non_sequential_fetch_fails_safe() {
        let words: Vec<u32> = vec![0xAAAA_AAAA; 8];
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        dec.on_fetch(0x0040_0000, stored[0]);
        // Jump somewhere unrelated mid-schedule: decoder drops to
        // pass-through instead of corrupting.
        assert_eq!(dec.on_fetch(0x0050_0000, 0x7777_7777), 0x7777_7777);
        assert_eq!(dec.passthrough_fetches(), 1);
    }

    #[test]
    fn reset_clears_active_schedule() {
        let words: Vec<u32> = vec![0x0F0F_0F0F; 6];
        let (tt, bbit, stored) = schedule_for(&words, 0x0040_0000, 5, OverlapHistory::Stored);
        let mut dec = FetchDecoder::new(&tt, &bbit, 32, 5, OverlapHistory::Stored);
        dec.on_fetch(0x0040_0000, stored[0]);
        dec.reset();
        assert_eq!(dec.on_fetch(0x0040_0004, stored[1]), stored[1]); // passthrough now
    }

    #[test]
    fn bbit_rejects_duplicate_pcs() {
        let mut bbit = Bbit::new();
        bbit.push(BbitEntry {
            pc: 0x0040_0000,
            tt_index: 0,
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bbit.push(BbitEntry {
                pc: 0x0040_0000,
                tt_index: 1,
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn tt_storage_accounting() {
        // 32 lines × 3 control bits + E + 3-bit CT = 100 bits per entry.
        assert_eq!(TtEntry::storage_bits(32, 3, 3), 100);
    }
}
