//! # imt-core — application-specific instruction memory transformations
//!
//! The primary contribution of the DATE 2003 paper, end to end:
//!
//! 1. **Profile** an application on the [`imt-sim`](imt_sim) core and
//!    recover its loops with [`imt-cfg`](imt_cfg).
//! 2. **Select** the hot region — the basic blocks of the major loops —
//!    subject to the capacities of the two hardware tables (§7.2): the
//!    *Transformation Table* (TT, one entry per encoded block of
//!    instructions holding a `τ` index per bus line plus the `E`/`CT` tail
//!    delimiter) and the *Basic Block Identification Table* (BBIT, mapping
//!    a basic block's start PC to its first TT entry).
//! 3. **Encode** each selected basic block: every bus line's vertical bit
//!    sequence is split into blocks of `k` bits overlapping by one
//!    (`imt-bitcode`), each assigned the optimal two-input transformation.
//!    The encoded words are what instruction memory stores.
//! 4. **Decode on fetch**: [`hardware::FetchDecoder`] is a cycle-accurate
//!    software model of the fetch-stage hardware — per-line history
//!    flip-flops, a gate selected by the TT entry, BBIT lookup at block
//!    entry — that restores the original instruction stream.
//! 5. **Evaluate**: [`eval::evaluate`] replays a real execution, feeding
//!    the baseline and encoded images through bus monitors, verifying the
//!    decoder bit-for-bit, and reporting the transition reduction (the
//!    paper's Figure 6 metric).
//!
//! ## Quick example
//!
//! ```
//! use imt_core::{encode_program, eval::evaluate, EncoderConfig};
//! use imt_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(r#"
//!         .text
//! main:   li   $t0, 500
//! loop:   xor  $t1, $t1, $t0
//!         sll  $t2, $t1, 3
//!         addiu $t0, $t0, -1
//!         bgtz $t0, loop
//!         li   $v0, 10
//!         syscall
//! "#)?;
//! // Profile, select the hot loop, encode it.
//! let mut cpu = imt_sim::Cpu::new(&program)?;
//! cpu.run(100_000)?;
//! let encoded = encode_program(&program, cpu.profile(), &EncoderConfig::default())?;
//!
//! // Replay through the hardware model: decoded stream must match, and
//! // the encoded bus must switch less.
//! let eval = evaluate(&program, &encoded, 100_000)?;
//! assert_eq!(eval.decode_mismatches, 0);
//! assert!(eval.encoded_transitions < eval.baseline_transitions);
//! # Ok(())
//! # }
//! ```

// Library code must not panic on caller input: unwraps are reserved for
// tests (see clippy.toml), and fallible paths return typed errors.
#![warn(clippy::unwrap_used)]

pub mod eval;
pub mod hardware;
pub mod pipeline;
pub mod profile_cache;
pub mod protect;
pub mod schedule;
pub mod scheme;
pub mod tableimage;

mod config;
mod error;

pub use config::EncoderConfig;
pub use error::CoreError;
pub use pipeline::{encode_program, EncodedProgram, RegionReport};
pub use protect::{FaultEvent, FaultOutcome, Protection, TableKind};
