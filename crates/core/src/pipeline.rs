//! The application-specific encoding pipeline: profile → hot loops →
//! capacity-constrained block selection → encoded memory image + TT/BBIT
//! contents.

use imt_bitcode::lanes::{width_mask, word_transitions};
use imt_bitcode::par::par_map;
use imt_bitcode::slice::{encode_words_sliced, SlicedEncoding};
use imt_bitcode::stream::{StreamCodec, StreamCodecConfig};
use imt_cfg::{block_weights, hot_loops, BlockId, Cfg};
use imt_isa::program::Program;

use crate::config::EncoderConfig;
use crate::error::CoreError;
use crate::hardware::{Bbit, BbitEntry, TransformationTable, TtEntry};

/// Bus width of the instruction data path.
pub const BUS_WIDTH: usize = 32;

/// Per-block outcome of the selection and encoding pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedBlockInfo {
    /// The basic block in the program's CFG.
    pub block: BlockId,
    /// Address of its first instruction.
    pub start_pc: u32,
    /// Instructions in the block.
    pub instructions: usize,
    /// Index of its first Transformation Table entry.
    pub tt_first: usize,
    /// Number of TT entries it consumes (= blocks per bit line).
    pub tt_count: usize,
    /// Static within-block bus transitions of the original words.
    pub original_transitions: u64,
    /// Static within-block bus transitions of the encoded words.
    pub encoded_transitions: u64,
    /// Profiled fetches from this block.
    pub fetch_weight: u64,
}

/// Why a hot-loop basic block was left unencoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemotionReason {
    /// Not enough free Transformation Table entries.
    TtCapacity,
    /// Not enough free BBIT entries.
    BbitCapacity,
    /// Encoding would not remove any transitions (e.g. a 1-instruction
    /// block); spending table entries on it is pointless.
    NoSaving,
    /// The block never executed in the profile.
    ColdBlock,
}

impl DemotionReason {
    /// A short stable name (used as a metric label suffix).
    pub fn name(self) -> &'static str {
        match self {
            DemotionReason::TtCapacity => "tt-capacity",
            DemotionReason::BbitCapacity => "bbit-capacity",
            DemotionReason::NoSaving => "no-saving",
            DemotionReason::ColdBlock => "cold-block",
        }
    }
}

/// Summary of the region-selection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReport {
    /// Hot loops that contributed candidate blocks.
    pub loops_considered: usize,
    /// Blocks encoded, in selection (weight) order.
    pub encoded: Vec<EncodedBlockInfo>,
    /// Hot-loop blocks left as-is, with the reason.
    pub demoted: Vec<(BlockId, DemotionReason)>,
    /// TT entries allocated.
    pub tt_used: usize,
    /// BBIT entries allocated.
    pub bbit_used: usize,
}

/// A program with its hot region encoded: the memory image, the table
/// contents the fetch hardware needs, and the selection report.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedProgram {
    /// The full text image as stored in instruction memory: encoded words
    /// inside selected blocks, original words elsewhere.
    pub text: Vec<u32>,
    /// The Transformation Table contents.
    pub tt: TransformationTable,
    /// The BBIT contents.
    pub bbit: Bbit,
    /// The configuration the schedule was built with.
    pub config: EncoderConfig,
    /// What was selected and why.
    pub report: RegionReport,
    /// Base address of `text[0]`.
    pub text_base: u32,
}

impl EncodedProgram {
    /// Static transitions eliminated inside encoded blocks.
    pub fn static_saved_transitions(&self) -> u64 {
        self.report
            .encoded
            .iter()
            .map(|b| b.original_transitions - b.encoded_transitions)
            .sum()
    }
}

/// A candidate block's encoding, computed before (and independently of)
/// the capacity-constrained selection pass.
enum PreparedCandidate {
    /// Block never executed in the profile; nothing to encode.
    Cold,
    Encoded {
        encoding: SlicedEncoding,
        encoded_words: Vec<u32>,
        original_transitions: u64,
        encoded_transitions: u64,
    },
}

/// Runs the full pipeline: CFG recovery, hot-loop ranking, greedy
/// capacity-constrained selection, per-block lane encoding.
///
/// `profile` is the per-instruction execution count from
/// [`imt_sim::Cpu::profile`] (or any estimate of the same shape — a static
/// all-ones profile selects by loop structure alone).
///
/// Blocks are considered hottest-first across the top
/// [`EncoderConfig::max_loops`] loops; each consumes one BBIT entry and as
/// many TT entries as its instruction count requires at the configured
/// block size. Blocks that do not fit, never ran, or save nothing are
/// demoted to pass-through (the paper's identity treatment of infrequent
/// blocks, §7.2).
///
/// # Errors
///
/// [`CoreError::ProfileLength`] if the profile does not cover the text;
/// [`CoreError::Cfg`] if the text is empty or malformed;
/// [`CoreError::Codec`] only on internal misuse (widths are fixed here).
pub fn encode_program(
    program: &Program,
    profile: &[u64],
    config: &EncoderConfig,
) -> Result<EncodedProgram, CoreError> {
    let _span = imt_obs::span!("core.encode_program");
    if profile.len() < program.text.len() {
        return Err(CoreError::ProfileLength {
            text_len: program.text.len(),
            profile_len: profile.len(),
        });
    }
    let cfg = Cfg::build(program)?;
    let weights = block_weights(&cfg, profile);
    let loops = hot_loops(&cfg, profile);
    let top: Vec<_> = loops
        .iter()
        .filter(|l| l.fetch_weight > 0)
        .take(config.max_loops())
        .collect();

    // Candidate blocks: union of the top loops' bodies, hottest first.
    // With `include_called_functions`, the bodies of functions called from
    // inside those loops join the candidate set (§7.2's alternative).
    let mut candidates: Vec<BlockId> = Vec::new();
    for l in &top {
        for &b in &l.natural_loop.body {
            if !candidates.contains(&b) {
                candidates.push(b);
            }
        }
        if config.include_called_functions() {
            for callee in cfg.called_functions(&l.natural_loop.body) {
                for b in cfg.reachable_from(callee) {
                    if !candidates.contains(&b) {
                        candidates.push(b);
                    }
                }
            }
        }
    }
    candidates.sort_by_key(|b| std::cmp::Reverse(weights[b.0]));

    let codec = StreamCodec::new(
        StreamCodecConfig::block_size(config.block_size())
            .map_err(CoreError::Codec)?
            .with_transforms(config.transforms())
            .map_err(CoreError::Codec)?
            .with_overlap(config.overlap())
            .with_strategy(config.strategy()),
    );

    // Encoding a candidate depends only on its own words, so all
    // candidates encode in parallel; the capacity-constrained selection
    // below stays serial in candidate (weight) order, which keeps the
    // TT/BBIT allocation — and thus the whole image — bit-identical to a
    // serial run.
    let bus_mask = width_mask(BUS_WIDTH);
    let prepare_span = imt_obs::span!("core.prepare_candidates");
    let prepared: Vec<Result<PreparedCandidate, CoreError>> =
        par_map(&candidates, 1, |_, &block_id| {
            if weights[block_id.0] == 0 {
                return Ok(PreparedCandidate::Cold);
            }
            let block = cfg.block(block_id);
            let words = &program.text[block.range()];
            let wide: Vec<u64> = words.iter().map(|&w| w as u64).collect();
            let encoding =
                encode_words_sliced(&wide, BUS_WIDTH, &codec).map_err(CoreError::Codec)?;
            let encoded_words: Vec<u32> = encoding.words().iter().map(|&w| w as u32).collect();
            Ok(PreparedCandidate::Encoded {
                original_transitions: word_transitions(&wide, bus_mask),
                encoded_transitions: word_transitions(encoding.words(), bus_mask),
                encoding,
                encoded_words,
            })
        });
    drop(prepare_span);

    let mut text = program.text.clone();
    let mut tt = TransformationTable::new();
    let mut bbit = Bbit::new();
    let mut encoded = Vec::new();
    let mut demoted = Vec::new();

    for (block_id, prepared) in candidates.into_iter().zip(prepared) {
        let block = cfg.block(block_id);
        let weight = weights[block_id.0];
        let (encoding, encoded_words, original_transitions, encoded_transitions) = match prepared? {
            PreparedCandidate::Cold => {
                demoted.push((block_id, DemotionReason::ColdBlock));
                continue;
            }
            PreparedCandidate::Encoded {
                encoding,
                encoded_words,
                original_transitions,
                encoded_transitions,
            } => (
                encoding,
                encoded_words,
                original_transitions,
                encoded_transitions,
            ),
        };
        if encoded_transitions >= original_transitions {
            demoted.push((block_id, DemotionReason::NoSaving));
            continue;
        }
        let tt_count = encoding.block_count();
        if tt.len() + tt_count > config.tt_capacity() {
            demoted.push((block_id, DemotionReason::TtCapacity));
            continue;
        }
        if bbit.len() + 1 > config.bbit_capacity() {
            demoted.push((block_id, DemotionReason::BbitCapacity));
            continue;
        }

        // Commit: TT entries (one per block position, shared across lanes),
        // BBIT entry, and the encoded words in the memory image.
        let tt_first = tt.len();
        for position in 0..tt_count {
            let lane_transforms = (0..BUS_WIDTH)
                .map(|lane| encoding.transform(position, lane))
                .collect();
            let covers = encoding.block_len(position);
            tt.push(TtEntry {
                lane_transforms,
                end: position + 1 == tt_count,
                covers,
            });
        }
        let start_pc = cfg.block_address(block_id);
        bbit.push(BbitEntry {
            pc: start_pc,
            tt_index: tt_first,
        });
        text[block.range()].copy_from_slice(&encoded_words);
        encoded.push(EncodedBlockInfo {
            block: block_id,
            start_pc,
            instructions: block.len,
            tt_first,
            tt_count,
            original_transitions,
            encoded_transitions,
            fetch_weight: weight,
        });
    }

    let report = RegionReport {
        loops_considered: top.len(),
        encoded,
        demoted,
        tt_used: tt.len(),
        bbit_used: bbit.len(),
    };
    if imt_obs::enabled() {
        publish_report_obs(&report);
    }
    Ok(EncodedProgram {
        text,
        tt,
        bbit,
        config: *config,
        report,
        text_base: program.text_base,
    })
}

/// Publishes one selection pass into the registry under the thread's
/// current context label. Gauges (idempotent set), not counters, so a
/// re-run of the same labelled region overwrites instead of accumulating
/// — manifests stay deterministic under the parallel experiment grids.
fn publish_report_obs(report: &RegionReport) {
    let label = imt_obs::current_label();
    imt_obs::counter!("core.encode.runs").inc();
    imt_obs::gauge_labeled("core.encode.blocks_encoded", &label).set(report.encoded.len() as u64);
    imt_obs::gauge_labeled("core.encode.tt_used", &label).set(report.tt_used as u64);
    imt_obs::gauge_labeled("core.encode.bbit_used", &label).set(report.bbit_used as u64);
    let original: u64 = report.encoded.iter().map(|b| b.original_transitions).sum();
    let encoded: u64 = report.encoded.iter().map(|b| b.encoded_transitions).sum();
    imt_obs::gauge_labeled("core.encode.static_original_transitions", &label).set(original);
    imt_obs::gauge_labeled("core.encode.static_encoded_transitions", &label).set(encoded);
    imt_obs::gauge_labeled("core.encode.static_saved_transitions", &label).set(original - encoded);
    for reason in [
        DemotionReason::TtCapacity,
        DemotionReason::BbitCapacity,
        DemotionReason::NoSaving,
        DemotionReason::ColdBlock,
    ] {
        let n = report.demoted.iter().filter(|(_, r)| *r == reason).count();
        if n > 0 {
            let sub = if label.is_empty() {
                reason.name().to_string()
            } else {
                format!("{label}/{}", reason.name())
            };
            imt_obs::gauge_labeled("core.encode.demoted", &sub).set(n as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;
    use imt_sim::Cpu;

    fn profiled(source: &str) -> (Program, Vec<u64>) {
        let program = assemble(source).expect("assembly failed");
        let mut cpu = Cpu::new(&program).expect("load failed");
        cpu.run(10_000_000).expect("run failed");
        let profile = cpu.profile().to_vec();
        (program, profile)
    }

    const LOOP_PROGRAM: &str = r#"
            .text
    main:   li   $t0, 200
    loop:   xor  $t1, $t1, $t0
            sll  $t2, $t1, 3
            srl  $t3, $t1, 7
            addu $t4, $t2, $t3
            addiu $t0, $t0, -1
            bgtz $t0, loop
            li   $v0, 10
            syscall
    "#;

    #[test]
    fn encodes_the_hot_loop() {
        let (program, profile) = profiled(LOOP_PROGRAM);
        let encoded = encode_program(&program, &profile, &EncoderConfig::default()).unwrap();
        assert_eq!(encoded.report.encoded.len(), 1);
        let info = &encoded.report.encoded[0];
        assert_eq!(info.instructions, 6); // the loop body block
        assert!(info.encoded_transitions < info.original_transitions);
        assert_eq!(encoded.report.bbit_used, 1);
        assert_eq!(encoded.report.tt_used, info.tt_count);
        // 6 instructions at k = 5: blocks of 5 + 1 → 2 TT entries.
        assert_eq!(info.tt_count, 2);
        assert!(encoded.tt.entries()[1].end);
        assert_eq!(encoded.tt.entries()[1].covers, 1);
        // The image outside the loop is untouched.
        assert_eq!(encoded.text[0], program.text[0]);
        assert_eq!(encoded.text[7], program.text[7]);
        // The image inside the loop differs somewhere.
        assert_ne!(&encoded.text[1..7], &program.text[1..7]);
    }

    #[test]
    fn capacity_zero_encodes_nothing() {
        let (program, profile) = profiled(LOOP_PROGRAM);
        let config = EncoderConfig::default().with_tt_capacity(0);
        let encoded = encode_program(&program, &profile, &config).unwrap();
        assert!(encoded.report.encoded.is_empty());
        assert_eq!(encoded.text, program.text);
        assert!(encoded
            .report
            .demoted
            .iter()
            .any(|(_, r)| *r == DemotionReason::TtCapacity));
    }

    #[test]
    fn bbit_capacity_limits_block_count() {
        // Two hot loops → two candidate blocks; BBIT of 1 takes only the
        // hottest.
        let source = r#"
            .text
    main:   li   $t0, 300
    loop1:  xor  $t1, $t1, $t0
            addiu $t0, $t0, -1
            bgtz $t0, loop1
            li   $t0, 100
    loop2:  sll  $t2, $t0, 2
            addiu $t0, $t0, -1
            bgtz $t0, loop2
            li   $v0, 10
            syscall
    "#;
        let (program, profile) = profiled(source);
        let config = EncoderConfig::default()
            .with_bbit_capacity(1)
            .with_max_loops(4);
        let encoded = encode_program(&program, &profile, &config).unwrap();
        assert_eq!(encoded.report.encoded.len(), 1);
        // loop1 runs 300 times and must win.
        assert_eq!(encoded.report.encoded[0].fetch_weight, 900);
        assert!(encoded
            .report
            .demoted
            .iter()
            .any(|(_, r)| *r == DemotionReason::BbitCapacity));
    }

    #[test]
    fn profile_length_is_validated() {
        let (program, _) = profiled(LOOP_PROGRAM);
        let err = encode_program(&program, &[0, 1], &EncoderConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::ProfileLength { .. }));
    }

    #[test]
    fn no_loops_means_no_encoding() {
        let (program, profile) = profiled(".text\nmain: li $t0, 1\nli $v0, 10\nsyscall\n");
        let encoded = encode_program(&program, &profile, &EncoderConfig::default()).unwrap();
        assert!(encoded.report.encoded.is_empty());
        assert_eq!(encoded.text, program.text);
        assert_eq!(encoded.static_saved_transitions(), 0);
    }

    #[test]
    fn called_functions_join_the_region_when_asked() {
        // A hot loop whose body calls a helper: by default the helper
        // passes through (the paper's default, §7.2); with
        // `with_called_functions(true)` it is encoded too.
        let source = r#"
            .text
    main:   li   $s0, 300
    loop:   jal  helper
            addiu $s0, $s0, -1
            bgtz $s0, loop
            li   $v0, 10
            syscall
    helper: xor  $t1, $t1, $s0
            sll  $t2, $t1, 3
            srl  $t3, $t1, 5
            addu $t4, $t2, $t3
            subu $t5, $t4, $t1
            jr   $ra
    "#;
        let (program, profile) = profiled(source);
        let without = encode_program(&program, &profile, &EncoderConfig::default()).unwrap();
        let with = encode_program(
            &program,
            &profile,
            &EncoderConfig::default().with_called_functions(true),
        )
        .unwrap();
        assert!(with.report.encoded.len() > without.report.encoded.len());
        assert!(with.static_saved_transitions() > without.static_saved_transitions());
        // The helper's 6-instruction block is among the encoded ones.
        assert!(with.report.encoded.iter().any(|b| b.instructions == 6));
        // Both schedules decode exactly on a real replay, and pulling the
        // helper in improves the dynamic reduction.
        let eval_without = crate::eval::evaluate(&program, &without, 1_000_000).unwrap();
        let eval_with = crate::eval::evaluate(&program, &with, 1_000_000).unwrap();
        assert_eq!(eval_without.decode_mismatches, 0);
        assert_eq!(eval_with.decode_mismatches, 0);
        assert!(eval_with.reduction_percent() > eval_without.reduction_percent());
    }

    #[test]
    fn static_saved_transitions_accumulates() {
        let (program, profile) = profiled(LOOP_PROGRAM);
        let encoded = encode_program(&program, &profile, &EncoderConfig::default()).unwrap();
        let info = &encoded.report.encoded[0];
        assert_eq!(
            encoded.static_saved_transitions(),
            info.original_transitions - info.encoded_transitions
        );
    }
}
