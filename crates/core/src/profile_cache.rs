//! On-disk fetch-profile cache shared by every experiment binary and the
//! CLI.
//!
//! A [`FetchEdgeProfile`] captures everything the replay evaluator
//! ([`crate::eval::evaluate_replay`]) needs about one program run, and the
//! run it summarises is deterministic — so one recording can serve all 21
//! `exp_*` bins and the CLI across processes. Entries live under
//! `<target>/imt-profile-cache/`, keyed by an FNV-1a content hash of the
//! program image (text words, data bytes, load addresses, entry point),
//! the step budget, and the simulator's recording-semantics version
//! ([`imt_sim::edge::PROFILE_SEMANTICS_VERSION`]).
//!
//! Invalidation rules:
//!
//! * any change to the program bytes or step budget changes the key;
//! * any change to fetch semantics must bump `PROFILE_SEMANTICS_VERSION`,
//!   which changes every key;
//! * a malformed or stale entry (format error, wrong text length) is a
//!   miss — the caller re-records and overwrites;
//! * `IMT_PROFILE_CACHE=off` (or `0`/`no`) disables the cache, and
//!   `imt cache clear` / [`clear`] wipes it.
//!
//! Writes are atomic (unique temp file + rename), so concurrent writers —
//! threads or processes — racing on the same key at worst both record and
//! one wins the rename; readers always see a complete entry.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use imt_isa::program::Program;
use imt_sim::edge::{FetchEdgeProfile, PROFILE_SEMANTICS_VERSION};

/// Environment variable overriding the cache directory.
pub const DIR_ENV: &str = "IMT_PROFILE_CACHE_DIR";

/// Environment variable disabling the cache (`off`, `0`, or `no`).
pub const MODE_ENV: &str = "IMT_PROFILE_CACHE";

/// Whether the on-disk cache is enabled by the environment. Binaries may
/// additionally honour a `--no-profile-cache` flag on top of this.
pub fn enabled() -> bool {
    !matches!(
        std::env::var(MODE_ENV).ok().as_deref(),
        Some("off") | Some("0") | Some("no")
    )
}

/// The cache directory: `$IMT_PROFILE_CACHE_DIR` if set, otherwise
/// `imt-profile-cache/` inside the cargo target directory that built the
/// running executable (found by walking up from `current_exe`), falling
/// back to `target/imt-profile-cache` under the working directory.
pub fn dir() -> PathBuf {
    if let Some(dir) = std::env::var_os(DIR_ENV) {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.join("imt-profile-cache");
            }
        }
    }
    PathBuf::from("target").join("imt-profile-cache")
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(PRIME);
    }
}

/// Content key for `(program, max_steps)` under the current simulator
/// semantics: 16 lowercase hex digits.
pub fn content_key(program: &Program, max_steps: u64) -> String {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    fnv1a(&mut hash, &PROFILE_SEMANTICS_VERSION.to_le_bytes());
    fnv1a(&mut hash, &(program.text.len() as u64).to_le_bytes());
    for &word in &program.text {
        fnv1a(&mut hash, &word.to_le_bytes());
    }
    fnv1a(&mut hash, &(program.data.len() as u64).to_le_bytes());
    fnv1a(&mut hash, &program.data);
    fnv1a(&mut hash, &program.text_base.to_le_bytes());
    fnv1a(&mut hash, &program.data_base.to_le_bytes());
    fnv1a(&mut hash, &program.entry.to_le_bytes());
    fnv1a(&mut hash, &max_steps.to_le_bytes());
    format!("{hash:016x}")
}

fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.edges"))
}

/// Loads the cached profile for `(program, max_steps)` from `dir`, or
/// `None` on a miss (absent, malformed, or recorded over a different text
/// length — any of which means "re-record").
pub fn load_from(dir: &Path, program: &Program, max_steps: u64) -> Option<FetchEdgeProfile> {
    let path = entry_path(dir, &content_key(program, max_steps));
    let bytes = fs::read(path).ok()?;
    let profile = FetchEdgeProfile::from_bytes(&bytes).ok()?;
    if profile.text_len() != program.text.len() {
        return None;
    }
    if imt_obs::enabled() {
        imt_obs::counter!("cache.profile.disk_hits").inc();
    }
    Some(profile)
}

/// [`load_from`] against the default [`dir`].
pub fn load(program: &Program, max_steps: u64) -> Option<FetchEdgeProfile> {
    load_from(&dir(), program, max_steps)
}

/// Stores `profile` for `(program, max_steps)` in `dir`, atomically
/// (temp file + rename).
///
/// # Errors
///
/// Any I/O error creating the directory or writing the entry.
pub fn store_in(
    dir: &Path,
    program: &Program,
    max_steps: u64,
    profile: &FetchEdgeProfile,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let key = content_key(program, max_steps);
    let path = entry_path(dir, &key);
    // The temp name must be unique per *call*, not just per process:
    // threads racing a cold miss on the same key would otherwise share
    // one temp path, and the loser's rename fails (or ships the winner's
    // half-written bytes). pid + a process-wide counter keeps both
    // cross-process and cross-thread writers disjoint.
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!("{key}.{}.{seq}.tmp", std::process::id()));
    fs::write(&tmp, profile.to_bytes())?;
    fs::rename(&tmp, &path)?;
    if imt_obs::enabled() {
        imt_obs::counter!("cache.profile.stores").inc();
    }
    Ok(path)
}

/// [`store_in`] against the default [`dir`].
///
/// # Errors
///
/// Any I/O error creating the directory or writing the entry.
pub fn store(program: &Program, max_steps: u64, profile: &FetchEdgeProfile) -> io::Result<PathBuf> {
    store_in(&dir(), program, max_steps, profile)
}

/// What [`stats`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// The directory inspected.
    pub dir: PathBuf,
    /// Cached profiles present.
    pub entries: usize,
    /// Total size of those entries in bytes.
    pub bytes: u64,
}

/// Counts the entries in `dir` (a missing directory is an empty cache).
pub fn stats_of(dir: &Path) -> CacheStats {
    let mut entries = 0usize;
    let mut bytes = 0u64;
    if let Ok(read) = fs::read_dir(dir) {
        for entry in read.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "edges") {
                entries += 1;
                bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    CacheStats {
        dir: dir.to_path_buf(),
        entries,
        bytes,
    }
}

/// [`stats_of`] against the default [`dir`].
pub fn stats() -> CacheStats {
    stats_of(&dir())
}

/// Deletes every cached profile in `dir`, returning how many were
/// removed. A missing directory is an empty cache, not an error.
///
/// # Errors
///
/// Any I/O error while deleting an entry.
pub fn clear_of(dir: &Path) -> io::Result<usize> {
    let mut removed = 0usize;
    let read = match fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in read {
        let path = entry?.path();
        let stale = path.extension().is_some_and(|e| e == "edges" || e == "tmp");
        if stale {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// [`clear_of`] against the default [`dir`].
///
/// # Errors
///
/// Any I/O error while deleting an entry.
pub fn clear() -> io::Result<usize> {
    clear_of(&dir())
}

#[cfg(test)]
mod tests {
    use super::*;
    use imt_isa::asm::assemble;

    fn program(iterations: u32) -> Program {
        assemble(&format!(
            ".text\nmain:   li $t0, {iterations}\nloop:   addiu $t0, $t0, -1\n        bgtz $t0, loop\n        li $v0, 10\n        syscall\n"
        ))
        .expect("assembly failed")
    }

    fn temp_cache(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "imt-profile-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_roundtrip_and_stats() {
        let dir = temp_cache("roundtrip");
        let program = program(10);
        let profile = FetchEdgeProfile::record(&program, 1_000).unwrap();
        assert_eq!(load_from(&dir, &program, 1_000), None);
        store_in(&dir, &program, 1_000, &profile).unwrap();
        assert_eq!(load_from(&dir, &program, 1_000), Some(profile));
        let stats = stats_of(&dir);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert_eq!(clear_of(&dir).unwrap(), 1);
        assert_eq!(stats_of(&dir).entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_programs_budgets_and_versions() {
        let a = content_key(&program(10), 1_000);
        let b = content_key(&program(11), 1_000);
        let c = content_key(&program(10), 2_000);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, content_key(&program(10), 1_000));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = temp_cache("corrupt");
        let program = program(10);
        let profile = FetchEdgeProfile::record(&program, 1_000).unwrap();
        let path = store_in(&dir, &program, 1_000, &profile).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&path, bytes).unwrap();
        assert_eq!(load_from(&dir, &program, 1_000), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_of_missing_dir_is_empty() {
        let dir = temp_cache("missing");
        assert_eq!(clear_of(&dir).unwrap(), 0);
        assert_eq!(stats_of(&dir).entries, 0);
    }
}
