//! Table protection: entry bit layouts, parity / SEC Hamming check codes,
//! and the protected SRAM model behind the fetch decoder (DESIGN.md §11).
//!
//! The TT and BBIT are tiny reprogrammable SRAM arrays in the fetch stage,
//! which makes them the natural soft-error target of the whole mechanism:
//! one flipped τ-selector bit corrupts every subsequent decoded word of its
//! block. This module models the arrays at the bit level so faults can be
//! injected where real upsets land:
//!
//! * [`EntryLayout`] fixes the serialized bit order of a TT entry
//!   (`lanes × ⌈log₂|set|⌉` selector bits in preference order, the `E` bit,
//!   the `CT` counter) and of a BBIT entry (32-bit PC tag, TT index) — the
//!   same accounting [`crate::hardware::HardwareBudget`] charges;
//! * [`Protection`] selects the per-entry check code: none, even parity
//!   (detect-only), or a single-error-correcting Hamming code;
//! * [`ProtectedTables`] stores each entry as its raw code word, lets a
//!   fault injector flip arbitrary stored bits, and — on a scrub pass —
//!   verifies, corrects, or quarantines entries, reporting every decision
//!   as a typed [`FaultEvent`].
//!
//! Structural validation is independent of the check code: a selector
//! index outside the transformation set, a `CT` value of zero or above the
//! block size, or a TT index past the table end can never decode and is
//! quarantined even under [`Protection::None`].

use imt_bitcode::{Transform, TransformSet};

use crate::error::CoreError;
use crate::hardware::{Bbit, BbitEntry, TransformationTable, TtEntry};

/// Check code protecting each TT/BBIT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// Raw SRAM: upsets are only caught if they happen to be structurally
    /// invalid.
    #[default]
    None,
    /// One even-parity bit per entry: detects every odd-weight upset,
    /// corrects nothing.
    Parity,
    /// Single-error-correcting Hamming code: corrects any single-bit
    /// upset in place; multi-bit upsets may be miscorrected (SEC, not
    /// SECDED — the paper-scale tables are too small to justify the
    /// extra bit).
    Sec,
}

impl Protection {
    /// Every level, in increasing-cost order.
    pub const ALL: [Protection; 3] = [Protection::None, Protection::Parity, Protection::Sec];

    /// Check bits appended to an entry of `data_bits` payload bits.
    pub fn check_bits(self, data_bits: usize) -> usize {
        match self {
            Protection::None => 0,
            Protection::Parity => 1,
            Protection::Sec => hamming_check_bits(data_bits),
        }
    }

    /// The level's canonical lowercase name (CLI flag value).
    pub fn name(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::Parity => "parity",
            Protection::Sec => "sec",
        }
    }

    /// Parses a CLI flag value (`none` / `parity` / `sec`).
    pub fn parse(s: &str) -> Option<Protection> {
        match s {
            "none" => Some(Protection::None),
            "parity" => Some(Protection::Parity),
            "sec" => Some(Protection::Sec),
            _ => None,
        }
    }
}

impl std::fmt::Display for Protection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which of the two fetch-stage tables a fault event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// The Transformation Table.
    Tt,
    /// The Basic Block Identification Table.
    Bbit,
}

impl std::fmt::Display for TableKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TableKind::Tt => "tt",
            TableKind::Bbit => "bbit",
        })
    }
}

/// What a scrub pass decided about one table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The check code located and repaired a single flipped bit.
    Corrected {
        /// Code-word position of the repaired bit.
        bit: usize,
    },
    /// The check code detected an upset it cannot locate; the entry is
    /// quarantined and its basic block degrades to the fallback path.
    Detected,
    /// The entry decodes to a structurally impossible schedule (selector
    /// out of set, `CT` out of `1..=k`, TT index past the table); caught
    /// even with no check code, quarantined like a detected upset.
    Structural,
}

/// A typed record of one detection/correction/quarantine decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The table holding the affected entry.
    pub table: TableKind,
    /// The affected entry's index.
    pub index: usize,
    /// What the scrub decided.
    pub outcome: FaultOutcome,
}

/// The serialized bit order of TT and BBIT entries for one configuration —
/// the single source of truth shared by the check codes, the fault
/// injector's bit addressing, and the budget accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryLayout {
    set: TransformSet,
    lanes: usize,
    block_size: usize,
    control_bits: u32,
    ct_bits: u32,
    tt_index_bits: u32,
    tt_capacity: usize,
}

impl EntryLayout {
    /// Builds the layout for `lanes` bus lines, transformation set `set`,
    /// block size `block_size` and a TT of `tt_capacity` entries.
    pub fn new(set: TransformSet, lanes: usize, block_size: usize, tt_capacity: usize) -> Self {
        EntryLayout {
            set,
            lanes,
            block_size,
            control_bits: set.control_bits().max(1),
            ct_bits: (usize::BITS - block_size.saturating_sub(1).leading_zeros()).max(1),
            tt_index_bits: (usize::BITS - tt_capacity.saturating_sub(1).leading_zeros()).max(1),
            tt_capacity,
        }
    }

    /// Payload bits of one TT entry: selectors, `E`, `CT`.
    pub fn tt_data_bits(&self) -> usize {
        self.lanes * self.control_bits as usize + 1 + self.ct_bits as usize
    }

    /// Payload bits of one BBIT entry: 32-bit PC tag plus a TT index.
    pub fn bbit_data_bits(&self) -> usize {
        32 + self.tt_index_bits as usize
    }

    /// The transformation set selectors index into.
    pub fn set(&self) -> TransformSet {
        self.set
    }

    /// The block size `k` whose `CT` values (`1..=k`) are valid.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Serializes a TT entry, LSB-first per field, selector lanes first.
    ///
    /// Returns `None` if a lane's transform is outside the layout's set —
    /// such an entry cannot exist in this hardware configuration.
    fn pack_tt(&self, entry: &TtEntry) -> Option<Vec<bool>> {
        if entry.lane_transforms.len() != self.lanes {
            return None;
        }
        if entry.covers == 0 || entry.covers > self.block_size {
            return None;
        }
        let order: Vec<Transform> = self.set.iter().collect();
        let mut bits = Vec::with_capacity(self.tt_data_bits());
        for transform in &entry.lane_transforms {
            let selector = order.iter().position(|t| t == transform)?;
            for b in 0..self.control_bits {
                bits.push(selector >> b & 1 == 1);
            }
        }
        bits.push(entry.end);
        // CT is stored biased (`covers - 1`) so the full-tail value
        // `covers == k` fits when `k` is a power of two (e.g. k=4 in the
        // 2-bit counter sized for `k-1`).
        for b in 0..self.ct_bits {
            bits.push((entry.covers - 1) >> b & 1 == 1);
        }
        Some(bits)
    }

    /// Deserializes a TT entry; `Err(outcome)` flags a structurally
    /// invalid bit pattern (selector outside the set, `CT` not in
    /// `1..=k`).
    fn unpack_tt(&self, bits: &[bool]) -> Result<TtEntry, FaultOutcome> {
        let order: Vec<Transform> = self.set.iter().collect();
        let mut at = 0usize;
        let mut field = |width: u32| {
            let mut value = 0usize;
            for b in 0..width {
                value |= (bits[at] as usize) << b;
                at += 1;
            }
            value
        };
        let mut lane_transforms = Vec::with_capacity(self.lanes);
        for _ in 0..self.lanes {
            let selector = field(self.control_bits);
            match order.get(selector) {
                Some(&t) => lane_transforms.push(t),
                None => return Err(FaultOutcome::Structural),
            }
        }
        let end = field(1) == 1;
        let covers = field(self.ct_bits) + 1;
        if covers > self.block_size {
            return Err(FaultOutcome::Structural);
        }
        Ok(TtEntry {
            lane_transforms,
            end,
            covers,
        })
    }

    /// Serializes a BBIT entry: PC tag, then the TT index.
    fn pack_bbit(&self, entry: &BbitEntry) -> Vec<bool> {
        let mut bits = Vec::with_capacity(self.bbit_data_bits());
        for b in 0..32 {
            bits.push(entry.pc >> b & 1 == 1);
        }
        for b in 0..self.tt_index_bits {
            bits.push(entry.tt_index >> b & 1 == 1);
        }
        bits
    }

    /// Deserializes a BBIT entry; a TT index at or past the table
    /// capacity is structurally invalid.
    fn unpack_bbit(&self, bits: &[bool]) -> Result<BbitEntry, FaultOutcome> {
        let mut pc = 0u32;
        for (b, &bit) in bits.iter().take(32).enumerate() {
            pc |= (bit as u32) << b;
        }
        let mut tt_index = 0usize;
        for b in 0..self.tt_index_bits as usize {
            tt_index |= (bits[32 + b] as usize) << b;
        }
        if tt_index >= self.tt_capacity.max(1) {
            return Err(FaultOutcome::Structural);
        }
        Ok(BbitEntry { pc, tt_index })
    }
}

/// Check bits `r` a SEC Hamming code needs for `m` data bits
/// (`2^r ≥ m + r + 1`).
fn hamming_check_bits(m: usize) -> usize {
    let mut r = 0usize;
    while (1usize << r) < m + r + 1 {
        r += 1;
    }
    r
}

/// Encodes `data` into a Hamming code word (positions `1..=m+r`, check
/// bits at the power-of-two positions).
fn hamming_encode(data: &[bool]) -> Vec<bool> {
    let m = data.len();
    let r = hamming_check_bits(m);
    let n = m + r;
    let mut code = vec![false; n];
    let mut next = 0usize;
    for pos in 1..=n {
        if !pos.is_power_of_two() {
            code[pos - 1] = data[next];
            next += 1;
        }
    }
    for c in 0..r {
        let mask = 1usize << c;
        let mut parity = false;
        for pos in 1..=n {
            if pos & mask != 0 && !pos.is_power_of_two() {
                parity ^= code[pos - 1];
            }
        }
        code[mask - 1] = parity;
    }
    code
}

/// Decodes a Hamming code word in place. Returns the corrected data bits
/// and what happened; a syndrome pointing past the code word means the
/// upset is uncorrectable (only possible for multi-bit damage).
fn hamming_decode(code: &mut [bool]) -> (Vec<bool>, Option<FaultOutcome>) {
    let n = code.len();
    let mut syndrome = 0usize;
    for pos in 1..=n {
        if code[pos - 1] {
            syndrome ^= pos;
        }
    }
    let outcome = if syndrome == 0 {
        None
    } else if syndrome <= n {
        code[syndrome - 1] = !code[syndrome - 1];
        Some(FaultOutcome::Corrected { bit: syndrome - 1 })
    } else {
        Some(FaultOutcome::Detected)
    };
    let data = (1..=n)
        .filter(|pos| !pos.is_power_of_two())
        .map(|pos| code[pos - 1])
        .collect();
    (data, outcome)
}

/// Encodes `data` under `protection` into the stored code word.
fn encode_word(protection: Protection, data: &[bool]) -> Vec<bool> {
    match protection {
        Protection::None => data.to_vec(),
        Protection::Parity => {
            let mut word = data.to_vec();
            word.push(data.iter().fold(false, |p, &b| p ^ b));
            word
        }
        Protection::Sec => hamming_encode(data),
    }
}

/// Checks (and for SEC, repairs) a stored code word, returning the data
/// bits plus the check code's verdict. `None` means the code saw nothing
/// wrong — which for [`Protection::None`] means nothing at all.
fn decode_word(
    protection: Protection,
    word: &mut [bool],
    data_bits: usize,
) -> (Vec<bool>, Option<FaultOutcome>) {
    match protection {
        Protection::None => (word.to_vec(), None),
        Protection::Parity => {
            let parity = word.iter().fold(false, |p, &b| p ^ b);
            let verdict = if parity {
                Some(FaultOutcome::Detected)
            } else {
                None
            };
            (word[..data_bits].to_vec(), verdict)
        }
        Protection::Sec => hamming_decode(word),
    }
}

/// The TT and BBIT as protected SRAM: every entry stored as its raw code
/// word, with materialized decoded views refreshed by [`scrub`].
///
/// The decoded views are what the fetch decoder reads each cycle, so the
/// clean-path decode cost is unchanged; the bit-level store only matters
/// when a fault injector flips something, which marks the array dirty and
/// forces a scrub before the next fetch.
///
/// [`scrub`]: ProtectedTables::scrub
#[derive(Debug, Clone)]
pub struct ProtectedTables {
    protection: Protection,
    layout: EntryLayout,
    tt_code: Vec<Vec<bool>>,
    bbit_code: Vec<Vec<bool>>,
    tt_view: Vec<Option<TtEntry>>,
    bbit_view: Vec<Option<BbitEntry>>,
    dirty: bool,
}

impl ProtectedTables {
    /// Packs `tt` and `bbit` into protected storage.
    ///
    /// # Errors
    ///
    /// [`CoreError::TableImage`] if a TT entry uses a transform outside
    /// `layout`'s set or the wrong lane count — such a schedule cannot be
    /// expressed in this hardware configuration.
    pub fn new(
        tt: &TransformationTable,
        bbit: &Bbit,
        layout: EntryLayout,
        protection: Protection,
    ) -> Result<Self, CoreError> {
        let mut tt_code = Vec::with_capacity(tt.len());
        let mut tt_view = Vec::with_capacity(tt.len());
        for entry in tt.entries() {
            let data = layout.pack_tt(entry).ok_or(CoreError::TableImage {
                detail: "TT entry does not fit the protection layout's transform set",
            })?;
            tt_code.push(encode_word(protection, &data));
            tt_view.push(Some(entry.clone()));
        }
        let mut bbit_code = Vec::with_capacity(bbit.len());
        let mut bbit_view = Vec::with_capacity(bbit.len());
        for entry in bbit.entries() {
            bbit_code.push(encode_word(protection, &layout.pack_bbit(entry)));
            bbit_view.push(Some(*entry));
        }
        Ok(ProtectedTables {
            protection,
            layout,
            tt_code,
            bbit_code,
            tt_view,
            bbit_view,
            dirty: false,
        })
    }

    /// The configured check code.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// The entry serialization this store uses.
    pub fn layout(&self) -> &EntryLayout {
        &self.layout
    }

    /// TT entries stored (quarantined ones included).
    pub fn tt_len(&self) -> usize {
        self.tt_code.len()
    }

    /// BBIT entries stored (quarantined ones included).
    pub fn bbit_len(&self) -> usize {
        self.bbit_code.len()
    }

    /// Stored bits per TT entry, check bits included — the injectable
    /// surface of one entry.
    pub fn tt_stored_bits(&self) -> usize {
        self.layout.tt_data_bits() + self.protection.check_bits(self.layout.tt_data_bits())
    }

    /// Stored bits per BBIT entry, check bits included.
    pub fn bbit_stored_bits(&self) -> usize {
        self.layout.bbit_data_bits() + self.protection.check_bits(self.layout.bbit_data_bits())
    }

    /// Whether a flip has landed since the last scrub.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Flips stored bit `bit` of TT entry `entry` and marks the array
    /// dirty.
    ///
    /// # Errors
    ///
    /// [`CoreError::TableImage`] if `entry` or `bit` is out of range.
    pub fn flip_tt_bit(&mut self, entry: usize, bit: usize) -> Result<(), CoreError> {
        let word = self.tt_code.get_mut(entry).ok_or(CoreError::TableImage {
            detail: "TT fault target entry out of range",
        })?;
        let slot = word.get_mut(bit).ok_or(CoreError::TableImage {
            detail: "TT fault target bit out of range",
        })?;
        *slot = !*slot;
        self.dirty = true;
        Ok(())
    }

    /// Flips stored bit `bit` of BBIT entry `entry` and marks the array
    /// dirty.
    ///
    /// # Errors
    ///
    /// [`CoreError::TableImage`] if `entry` or `bit` is out of range.
    pub fn flip_bbit_bit(&mut self, entry: usize, bit: usize) -> Result<(), CoreError> {
        let word = self.bbit_code.get_mut(entry).ok_or(CoreError::TableImage {
            detail: "BBIT fault target entry out of range",
        })?;
        let slot = word.get_mut(bit).ok_or(CoreError::TableImage {
            detail: "BBIT fault target bit out of range",
        })?;
        *slot = !*slot;
        self.dirty = true;
        Ok(())
    }

    /// Verifies every stored entry against its check code and structure,
    /// repairing what the code can repair, quarantining what it cannot,
    /// and refreshing the decoded views. Returns one event per entry the
    /// pass had to act on; clears the dirty flag.
    ///
    /// Quarantined entries stay quarantined: a later scrub never
    /// resurrects an entry (the fault controller has no way to know the
    /// damage was transient).
    pub fn scrub(&mut self) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for index in 0..self.tt_code.len() {
            if self.tt_view[index].is_none() {
                continue;
            }
            let (data, verdict) = decode_word(
                self.protection,
                &mut self.tt_code[index],
                self.layout.tt_data_bits(),
            );
            match verdict {
                Some(FaultOutcome::Detected) => {
                    self.tt_view[index] = None;
                    events.push(FaultEvent {
                        table: TableKind::Tt,
                        index,
                        outcome: FaultOutcome::Detected,
                    });
                    continue;
                }
                Some(outcome) => events.push(FaultEvent {
                    table: TableKind::Tt,
                    index,
                    outcome,
                }),
                None => {}
            }
            match self.layout.unpack_tt(&data) {
                Ok(entry) => self.tt_view[index] = Some(entry),
                Err(outcome) => {
                    self.tt_view[index] = None;
                    events.push(FaultEvent {
                        table: TableKind::Tt,
                        index,
                        outcome,
                    });
                }
            }
        }
        for index in 0..self.bbit_code.len() {
            if self.bbit_view[index].is_none() {
                continue;
            }
            let (data, verdict) = decode_word(
                self.protection,
                &mut self.bbit_code[index],
                self.layout.bbit_data_bits(),
            );
            match verdict {
                Some(FaultOutcome::Detected) => {
                    self.bbit_view[index] = None;
                    events.push(FaultEvent {
                        table: TableKind::Bbit,
                        index,
                        outcome: FaultOutcome::Detected,
                    });
                    continue;
                }
                Some(outcome) => events.push(FaultEvent {
                    table: TableKind::Bbit,
                    index,
                    outcome,
                }),
                None => {}
            }
            match self.layout.unpack_bbit(&data) {
                Ok(entry) => self.bbit_view[index] = Some(entry),
                Err(outcome) => {
                    self.bbit_view[index] = None;
                    events.push(FaultEvent {
                        table: TableKind::Bbit,
                        index,
                        outcome,
                    });
                }
            }
        }
        self.dirty = false;
        events
    }

    /// Disables BBIT entry `index` (its block falls back to the recovery
    /// path).
    pub fn quarantine_bbit(&mut self, index: usize) {
        if let Some(slot) = self.bbit_view.get_mut(index) {
            *slot = None;
        }
    }

    /// The decoded TT entry at `index`, unless absent or quarantined.
    pub fn tt_entry(&self, index: usize) -> Option<&TtEntry> {
        self.tt_view.get(index).and_then(|e| e.as_ref())
    }

    /// Whether TT entry `index` is quarantined.
    pub fn tt_quarantined(&self, index: usize) -> bool {
        matches!(self.tt_view.get(index), Some(None))
    }

    /// Whether BBIT entry `index` is quarantined.
    pub fn bbit_quarantined(&self, index: usize) -> bool {
        matches!(self.bbit_view.get(index), Some(None))
    }

    /// Finds the live BBIT entry tagged `pc`, returning `(entry index,
    /// TT index)`.
    pub fn bbit_lookup(&self, pc: u32) -> Option<(usize, usize)> {
        self.bbit_view
            .iter()
            .enumerate()
            .find_map(|(i, e)| match e {
                Some(entry) if entry.pc == pc => Some((i, entry.tt_index)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt_entry(k: usize, end: bool, covers: usize) -> TtEntry {
        TtEntry {
            lane_transforms: vec![Transform::XOR; 32],
            end,
            covers: covers.min(k),
        }
    }

    fn sample_tables(k: usize) -> (TransformationTable, Bbit) {
        let mut tt = TransformationTable::new();
        tt.push(tt_entry(k, false, k));
        tt.push(tt_entry(k, true, 2));
        let mut bbit = Bbit::new();
        bbit.push(BbitEntry {
            pc: 0x0040_0100,
            tt_index: 0,
        });
        (tt, bbit)
    }

    fn layout(k: usize) -> EntryLayout {
        EntryLayout::new(TransformSet::CANONICAL_EIGHT, 32, k, 16)
    }

    #[test]
    fn layout_bit_widths_match_the_budget() {
        let l = layout(5);
        assert_eq!(l.tt_data_bits(), 32 * 3 + 1 + 3);
        assert_eq!(l.bbit_data_bits(), 32 + 4);
    }

    #[test]
    fn pack_unpack_round_trips() {
        let l = layout(5);
        let entry = tt_entry(5, true, 3);
        let bits = l.pack_tt(&entry).unwrap();
        assert_eq!(bits.len(), l.tt_data_bits());
        assert_eq!(l.unpack_tt(&bits).unwrap(), entry);
        let b = BbitEntry {
            pc: 0x1234_5678,
            tt_index: 11,
        };
        assert_eq!(l.unpack_bbit(&l.pack_bbit(&b)).unwrap(), b);
    }

    #[test]
    fn unpack_rejects_malformed_ct() {
        let l = layout(5);
        let mut bits = l.pack_tt(&tt_entry(5, true, 5)).unwrap();
        // All-zero CT decodes to covers = 1 under the biased encoding.
        let ct_at = l.tt_data_bits() - l.ct_bits as usize;
        for b in &mut bits[ct_at..] {
            *b = false;
        }
        assert_eq!(l.unpack_tt(&bits).map(|e| e.covers), Ok(1));
        // Stored 7 → covers 8 > k = 5: structural.
        for b in &mut bits[ct_at..] {
            *b = true;
        }
        assert_eq!(l.unpack_tt(&bits), Err(FaultOutcome::Structural));
        // A full-tail entry round-trips even when k is a power of two:
        // covers = k = 4 must fit the 2-bit counter sized for k-1.
        let l4 = EntryLayout::new(TransformSet::CANONICAL_EIGHT, 4, 4, 8);
        let entry = TtEntry {
            lane_transforms: vec![Transform::IDENTITY; 4],
            end: true,
            covers: 4,
        };
        let bits = l4.pack_tt(&entry).unwrap();
        assert_eq!(l4.unpack_tt(&bits), Ok(entry));
        // And covers outside 1..=k cannot be packed at all.
        assert!(l4
            .pack_tt(&TtEntry {
                lane_transforms: vec![Transform::IDENTITY; 4],
                end: false,
                covers: 5,
            })
            .is_none());
    }

    #[test]
    fn hamming_corrects_any_single_flip() {
        for m in [5usize, 37, 100, 132] {
            let data: Vec<bool> = (0..m).map(|i| i % 3 == 0).collect();
            let clean = hamming_encode(&data);
            for flip in 0..clean.len() {
                let mut code = clean.clone();
                code[flip] = !code[flip];
                let (restored, outcome) = hamming_decode(&mut code);
                assert_eq!(restored, data, "m={m} flip={flip}");
                assert_eq!(outcome, Some(FaultOutcome::Corrected { bit: flip }));
            }
        }
    }

    #[test]
    fn parity_detects_any_single_flip() {
        let data: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        let clean = encode_word(Protection::Parity, &data);
        for flip in 0..clean.len() {
            let mut word = clean.clone();
            word[flip] = !word[flip];
            let (_, verdict) = decode_word(Protection::Parity, &mut word, data.len());
            assert_eq!(verdict, Some(FaultOutcome::Detected), "flip={flip}");
        }
    }

    #[test]
    fn scrub_is_a_no_op_on_clean_tables() {
        let (tt, bbit) = sample_tables(5);
        for protection in Protection::ALL {
            let mut store = ProtectedTables::new(&tt, &bbit, layout(5), protection).unwrap();
            assert!(store.scrub().is_empty(), "{protection}");
            assert_eq!(store.tt_entry(0), tt.get(0));
            assert_eq!(store.bbit_lookup(0x0040_0100), Some((0, 0)));
        }
    }

    #[test]
    fn sec_repairs_and_parity_quarantines_a_selector_flip() {
        let (tt, bbit) = sample_tables(5);
        let mut sec = ProtectedTables::new(&tt, &bbit, layout(5), Protection::Sec).unwrap();
        sec.flip_tt_bit(0, 17).unwrap();
        let events = sec.scrub();
        assert!(
            matches!(
                events.as_slice(),
                [FaultEvent {
                    table: TableKind::Tt,
                    index: 0,
                    outcome: FaultOutcome::Corrected { .. },
                }]
            ),
            "{events:?}"
        );
        assert_eq!(sec.tt_entry(0), tt.get(0));

        let mut par = ProtectedTables::new(&tt, &bbit, layout(5), Protection::Parity).unwrap();
        par.flip_tt_bit(0, 17).unwrap();
        let events = par.scrub();
        assert_eq!(
            events,
            vec![FaultEvent {
                table: TableKind::Tt,
                index: 0,
                outcome: FaultOutcome::Detected,
            }]
        );
        assert!(par.tt_quarantined(0));
        assert!(par.tt_entry(0).is_none());
    }

    #[test]
    fn unprotected_flip_silently_changes_the_view() {
        let (tt, bbit) = sample_tables(5);
        let mut store = ProtectedTables::new(&tt, &bbit, layout(5), Protection::None).unwrap();
        // Flip one selector bit: the decoded view changes, no event.
        store.flip_tt_bit(0, 0).unwrap();
        let events = store.scrub();
        assert!(events.is_empty());
        assert_ne!(store.tt_entry(0), tt.get(0));
    }

    #[test]
    fn unprotected_structural_damage_is_still_caught() {
        let (tt, bbit) = sample_tables(5);
        let mut store = ProtectedTables::new(&tt, &bbit, layout(5), Protection::None).unwrap();
        // Force CT out of range on the tail entry (covers=2 stored biased
        // as 0b001; set all three counter bits → stored 7 → covers 8 > k).
        let ct_at = store.layout().tt_data_bits() - 3;
        store.flip_tt_bit(1, ct_at + 1).unwrap();
        store.flip_tt_bit(1, ct_at + 2).unwrap();
        let events = store.scrub();
        assert_eq!(
            events,
            vec![FaultEvent {
                table: TableKind::Tt,
                index: 1,
                outcome: FaultOutcome::Structural,
            }]
        );
        assert!(store.tt_quarantined(1));
    }

    #[test]
    fn corrupted_bbit_tag_misses_and_corrupted_index_is_bounded() {
        let (tt, bbit) = sample_tables(5);
        let mut store = ProtectedTables::new(&tt, &bbit, layout(5), Protection::None).unwrap();
        // Flip a PC tag bit: the original pc no longer hits.
        store.flip_bbit_bit(0, 8).unwrap();
        store.scrub();
        assert_eq!(store.bbit_lookup(0x0040_0100), None);
        assert_eq!(store.bbit_lookup(0x0040_0000), Some((0, 0)));
    }

    #[test]
    fn check_bit_costs() {
        assert_eq!(Protection::None.check_bits(100), 0);
        assert_eq!(Protection::Parity.check_bits(100), 1);
        assert_eq!(Protection::Sec.check_bits(100), 7); // 2^7 ≥ 108
        assert_eq!(Protection::Sec.check_bits(36), 6);
    }

    #[test]
    fn flip_targets_are_bounds_checked() {
        let (tt, bbit) = sample_tables(5);
        let mut store = ProtectedTables::new(&tt, &bbit, layout(5), Protection::None).unwrap();
        assert!(store.flip_tt_bit(99, 0).is_err());
        assert!(store.flip_tt_bit(0, 9999).is_err());
        assert!(store.flip_bbit_bit(99, 0).is_err());
        assert!(!store.is_dirty());
        store.flip_tt_bit(0, 0).unwrap();
        assert!(store.is_dirty());
    }
}
